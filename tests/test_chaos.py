"""Chaos suite: injected faults must never change the answers.

The infrastructure analogue of the paper's ablation studies: perturb
the system with seeded :class:`~repro.resilience.FaultPlan` schedules
— connection resets, torn frames, corrupted payloads, delays, worker
crashes — and assert that study payloads stay **byte-identical** and
selections **index-identical** to the fault-free run, while the
resilience layer (retries, circuit breaker, graceful drain) absorbs
the damage.

Every plan here is deterministic: the same seed against the same
workload injects the same faults, so a failure replays exactly.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.figures.cache import JsonDirectoryStore, StudyKey, make_store
from repro.resilience import (
    CircuitBreaker,
    FAULTS_ENV,
    FaultPlan,
    RetryPolicy,
    faults,
)
from repro.runner.runner import StudyRunner, run_study
from repro.service import SelectionEngine, SelectionService
from repro.service.remote import RemoteStudyStore, StudyStoreServer

KEY = StudyKey(scale="quick", seed=0, expression="aatb", box="paper_box")
MATRIX = (
    StudyKey("quick", 0, "aatb"),
    StudyKey("quick", 1, "aatb"),
)
DIMS = [[100, 200, 300], [50, 60, 70], [1200, 1200, 1200]]


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    faults.set_plan(None)
    yield
    faults.set_plan(None)


@pytest.fixture(scope="module")
def baseline_bytes(tmp_path_factory):
    """The fault-free canonical payload bytes for KEY."""
    root = tmp_path_factory.mktemp("baseline")
    faults.set_plan(None)
    assert run_study(KEY, "json", str(root)).status == "computed"
    return JsonDirectoryStore(root).path_for(KEY).read_bytes()


@pytest.fixture()
def served_store(tmp_path):
    """A StudyStoreServer over a json backing, on a live thread."""
    backing = make_store("json", tmp_path / "backing")
    loop = asyncio.new_event_loop()
    server = StudyStoreServer(backing)
    ready = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(5)
    yield server, backing
    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(5)
    asyncio.run_coroutine_threadsafe(asyncio.sleep(0.05), loop).result(5)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(5)
    loop.close()


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


async def _http(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except OSError:
        pass
    head_text, _, body_text = raw.partition(b"\r\n\r\n")
    return int(head_text.split()[1]), json.loads(body_text)


# ----------------------------------------------------------------------
# Store chaos: payloads heal byte-identically
# ----------------------------------------------------------------------

#: Three distinct seeded plans over the local-store fault sites; each
#: damages loads and/or saves differently, and the store must end up
#: byte-identical to the fault-free baseline every time.
STORE_PLANS = (
    "seed=1;store.load=corrupt:2",
    "seed=2;store.save=corrupt:1;store.load=torn:1",
    "seed=3;delay=0.001;store.load=delay:2;store.save=torn:1",
)


@pytest.mark.parametrize("spec", STORE_PLANS)
def test_store_chaos_heals_byte_identically(tmp_path, spec, baseline_bytes):
    faults.set_plan(FaultPlan.parse(spec))
    outcomes = [run_study(KEY, "json", str(tmp_path)) for _ in range(4)]
    faults.set_plan(None)
    # No study failed, whatever the plan broke along the way...
    assert all(o.status in ("computed", "cached") for o in outcomes)
    # ...and once the plan is exhausted the stored payload is exactly
    # the fault-free one: corrupted entries became misses, recomputes
    # overwrote them with canonical bytes.
    path = JsonDirectoryStore(tmp_path).path_for(KEY)
    assert path.read_bytes() == baseline_bytes
    assert run_study(KEY, "json", str(tmp_path)).status == "cached"


def test_corrupt_load_is_a_miss_not_a_failure(tmp_path, baseline_bytes):
    assert run_study(KEY, "json", str(tmp_path)).status == "computed"
    faults.set_plan(FaultPlan.parse("seed=4;store.load=corrupt:1"))
    outcome = run_study(KEY, "json", str(tmp_path))
    faults.set_plan(None)
    # The entry on disk was fine; the injected corruption made the
    # load a miss, so the study recomputed instead of failing.
    assert outcome.status == "computed"
    path = JsonDirectoryStore(tmp_path).path_for(KEY)
    assert path.read_bytes() == baseline_bytes


def test_raising_store_load_surfaces_a_note(tmp_path):
    assert run_study(KEY, "json", str(tmp_path)).status == "computed"
    faults.set_plan(FaultPlan.parse("seed=5;store.load=error:1"))
    outcome = run_study(KEY, "json", str(tmp_path))
    faults.set_plan(None)
    assert outcome.status == "computed"
    assert "store load failed, recomputed" in outcome.error


# ----------------------------------------------------------------------
# Remote-store chaos: the wire under fire
# ----------------------------------------------------------------------

#: Three distinct seeded plans over the transport fault sites; the
#: client's retry policy must absorb each, and the payload that lands
#: on the server must match the fault-free bytes.
WIRE_PLANS = (
    "seed=11;remote.send=reset:2",
    "seed=12;remote.send=torn:1;remote.recv=reset:1",
    "seed=13;delay=0.001;server.respond=torn:1;remote.send=delay:2",
)


@pytest.mark.parametrize("spec", WIRE_PLANS)
def test_wire_chaos_payloads_stay_byte_identical(
    served_store, spec, baseline_bytes
):
    server, backing = served_store
    address = f"127.0.0.1:{server.port}"
    faults.set_plan(FaultPlan.parse(spec))
    outcome = run_study(KEY, "remote", address)
    faults.set_plan(None)
    assert outcome.status == "computed"
    # The payload that crossed the damaged wire is byte-identical to
    # the fault-free local one.
    assert backing.raw_payload(KEY) == baseline_bytes.decode()
    assert run_study(KEY, "remote", address).status == "cached"


def test_wire_chaos_counts_retries(served_store):
    server, _backing = served_store
    client = RemoteStudyStore(
        f"127.0.0.1:{server.port}",
        retry=RetryPolicy(attempts=3, base_delay=0.001, jitter=0.0),
    )
    faults.set_plan(FaultPlan.parse("seed=14;remote.send=reset:2"))
    try:
        assert client.ping()  # two resets absorbed by two retries
    finally:
        faults.set_plan(None)
        client.close()
    stats = client.resilience_stats()
    assert stats["retries"] == 2
    assert stats["transport_failures"] == 0
    assert stats["breaker"]["state"] == "closed"


def test_breaker_opens_then_recovers_via_half_open_probe(served_store):
    server, _backing = served_store
    clock = FakeClock()
    store = RemoteStudyStore(
        "127.0.0.1:1",  # nothing listens here
        timeout=0.5,
        retry=RetryPolicy(attempts=1, base_delay=0.0, jitter=0.0),
        breaker=CircuitBreaker(
            failure_threshold=2, recovery_seconds=30.0, clock=clock.now
        ),
    )
    try:
        assert store.load_text(KEY) is None
        assert store.load_text(KEY) is None
        assert store.breaker.state == "open"
        # While open, calls short-circuit: no new transport attempts.
        failures = store.transport_failures
        assert store.ping() is False
        assert store.transport_failures == failures
        assert store.breaker.short_circuited >= 1
        # The server "comes back" and the recovery window elapses: the
        # half-open probe succeeds and closes the circuit.
        store.host, store.port = "127.0.0.1", server.port
        clock.advance(30.0)
        assert store.ping()
        assert store.breaker.state == "closed"
        assert store.breaker.stats()["transitions"][-2:] == [
            "half-open",
            "closed",
        ]
    finally:
        store.close()


# ----------------------------------------------------------------------
# Runner chaos: worker crashes
# ----------------------------------------------------------------------


def test_worker_crash_chaos_salvages_byte_identically(
    tmp_path, monkeypatch, baseline_bytes
):
    # The plan reaches pool children through the environment; each
    # child's first study dies hard (os._exit), breaking the pool.
    # The salvage path must recompute sequentially — in the parent the
    # crash kind is inert — and leave fault-free bytes behind.
    monkeypatch.setenv(FAULTS_ENV, "seed=21;worker.run=crash:1")
    report = StudyRunner(
        cache_dir=tmp_path / "chaos", store="json", jobs=2
    ).run(MATRIX)
    monkeypatch.delenv(FAULTS_ENV)
    assert report.ok
    salvaged = [
        o for o in report.outcomes if "worker pool broke" in o.error
    ]
    assert salvaged  # at least one key went through the salvage path
    assert all(o.attempts >= 1 for o in report.outcomes)
    faults.set_plan(None)
    sequential = tmp_path / "plain"
    StudyRunner(cache_dir=sequential, store="json", jobs=1).run(MATRIX)
    chaos_store = JsonDirectoryStore(tmp_path / "chaos")
    plain_store = JsonDirectoryStore(sequential)
    for key in MATRIX:
        assert (
            chaos_store.path_for(key).read_bytes()
            == plain_store.path_for(key).read_bytes()
        )
    assert chaos_store.path_for(MATRIX[0]).read_bytes() == baseline_bytes


# ----------------------------------------------------------------------
# Selection chaos: answers stay index-identical
# ----------------------------------------------------------------------


def test_selections_stay_index_identical_under_store_corruption(tmp_path):
    store = JsonDirectoryStore(tmp_path)
    clean = SelectionEngine(scale="quick", seed=0, store=store)
    expected = [
        s.algorithm_index for s in clean.select_many("aatb", DIMS)
    ]
    # Every store load is corrupted: the engine sees only misses and
    # must compute locally — and pick identically.
    faults.set_plan(FaultPlan.parse("seed=31;store.load=corrupt:*"))
    chaotic = SelectionEngine(scale="quick", seed=0, store=store)
    got = [s.algorithm_index for s in chaotic.select_many("aatb", DIMS)]
    faults.set_plan(None)
    assert got == expected


def test_service_answers_identically_under_request_delays(tmp_path):
    engine = SelectionEngine(scale="quick", seed=0)
    expected = [s.algorithm_index for s in engine.select_many("aatb", DIMS)]

    async def run():
        service = SelectionService(engine, port=0)
        await service.start()
        faults.set_plan(
            FaultPlan.parse("seed=32;delay=0.02;service.request=delay:2")
        )
        results = await asyncio.gather(
            *(
                _http(
                    service.port,
                    "POST",
                    "/select",
                    {"expression": "aatb", "dims": dims},
                )
                for dims in DIMS
            )
        )
        faults.set_plan(None)
        await service.stop()
        return results

    results = asyncio.run(run())
    assert [status for status, _payload in results] == [200] * len(DIMS)
    assert [
        payload["algorithm"]["index"] for _status, payload in results
    ] == expected


# ----------------------------------------------------------------------
# Graceful drain: zero dropped responses
# ----------------------------------------------------------------------


def test_drain_finishes_inflight_requests_with_zero_drops():
    engine = SelectionEngine(scale="quick", seed=0)
    engine.warm(["aatb"])

    async def run():
        service = SelectionService(engine, port=0)
        await service.start()
        port = service.port
        # An in-flight request held open by an injected delay...
        faults.set_plan(
            FaultPlan.parse("seed=41;delay=0.3;service.request=delay:1")
        )
        inflight = asyncio.create_task(
            _http(
                port,
                "POST",
                "/select",
                {"expression": "aatb", "dims": [100, 200, 300]},
            )
        )
        await asyncio.sleep(0.1)
        assert service.stats()["resilience"]["inflight"] == 1
        # ...must still get its full answer through the drain.
        final = await service.drain()
        status, payload = await inflight
        refused = False
        try:
            await asyncio.open_connection("127.0.0.1", port)
        except OSError:
            refused = True
        faults.set_plan(None)
        return status, payload, final, refused

    status, payload, final, refused = asyncio.run(run())
    assert status == 200
    assert payload["algorithm"]["index"] >= 0  # a complete response
    assert final["resilience"]["draining"] is True
    assert final["resilience"]["inflight"] == 0
    assert final["requests"]["select"] == 1
    assert refused  # the listener closed before the wait, not after
