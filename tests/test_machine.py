"""Machine model: determinism, noise statelessness, ablation flags."""

import pytest

from repro.kernels.types import KernelCall, KernelName
from repro.machine.machine import MachineModel
from repro.machine.noise import NoiseModel
from repro.machine.presets import (
    no_cache_machine,
    no_variants_machine,
    paper_machine,
)
from repro.machine.spec import xeon_silver_4210_like


def test_peak_flops():
    spec = xeon_silver_4210_like()
    assert spec.peak_flops == 10 * 2.2e9 * 16


def test_noise_is_stateless_and_seed_dependent():
    noise = NoiseModel(sigma=0.05, spike_probability=0.1, seed=3)
    assert noise.factor("k", 0) == noise.factor("k", 0)
    assert noise.factor("k", 0) != noise.factor("k", 1)
    other_seed = NoiseModel(sigma=0.05, spike_probability=0.1, seed=4)
    assert noise.factor("k", 0) != other_seed.factor("k", 0)
    silent = NoiseModel(sigma=0.0, spike_probability=0.0, seed=3)
    assert silent.factor("anything", 0) == 1.0


def test_measurements_are_reproducible_and_order_independent():
    machine = paper_machine(seed=0)
    a = machine.measure_kernel(KernelName.GEMM, (300, 300, 300))
    machine.measure_kernel(KernelName.SYRK, (100, 700))
    b = machine.measure_kernel(KernelName.GEMM, (300, 300, 300))
    assert a == b


def test_efficiency_is_within_unit_interval():
    machine = paper_machine(seed=0)
    for kernel, dims in (
        (KernelName.GEMM, (20, 20, 20)),
        (KernelName.GEMM, (1200, 1200, 1200)),
        (KernelName.SYRK, (640, 1024)),
        (KernelName.SYMM, (333, 77)),
        (KernelName.ADD, (333, 77)),
        (KernelName.TRSM, (640, 1024)),
    ):
        assert 0.0 < machine.efficiency(kernel, dims) < 1.0


def test_add_is_memory_bound_and_trsm_collapses_at_few_rhs():
    machine = paper_machine(seed=0)
    # ADD plateaus at a few percent of peak: memory-bound.
    assert machine.efficiency(KernelName.ADD, (1200, 1200)) < 0.05
    # TRSM with few right-hand sides is *slower in absolute time*
    # than with moderately many — the superlinear small-n collapse
    # that makes solve<k>'s FLOP-cheapest plans anomaly-prone.
    few = machine.kernel_seconds(KernelName.TRSM, (800, 25))
    more = machine.kernel_seconds(KernelName.TRSM, (800, 100))
    assert few > more
    # At large n the collapse is over and time grows with work again.
    assert machine.kernel_seconds(KernelName.TRSM, (800, 900)) > few


def test_variant_dispatch_flag_removes_the_cliff():
    with_variants = paper_machine(seed=0)
    without = no_variants_machine(seed=0)
    below = (440, 500)  # just below the SYRK boundary at 448
    assert without.efficiency(KernelName.SYRK, below) > with_variants.efficiency(
        KernelName.SYRK, below
    )
    above = (456, 500)
    assert without.efficiency(
        KernelName.SYRK, above
    ) == pytest.approx(with_variants.efficiency(KernelName.SYRK, above))


def test_cache_effects_flag_gates_interference():
    producer = KernelCall(KernelName.SYRK, (400, 400))
    consumer = KernelCall(KernelName.SYMM, (400, 400), reads_previous=True)
    assert paper_machine(seed=0).interference_penalty(producer, consumer) > 0
    assert (
        no_cache_machine(seed=0).interference_penalty(producer, consumer)
        == 0.0
    )


def test_measured_algorithm_slower_than_prediction_with_cache_effects():
    machine = MachineModel(xeon_silver_4210_like(), reps=1)  # no noise
    calls = (
        KernelCall(KernelName.SYRK, (300, 900)),
        KernelCall(KernelName.SYMM, (300, 500), reads_previous=True),
    )
    measured = machine.measure_algorithm(calls, context="x")
    predicted = machine.predict_algorithm(calls, context="x")
    assert measured > predicted  # the inter-kernel penalty
    no_cache = MachineModel(
        xeon_silver_4210_like(), reps=1, cache_effects=False
    )
    assert no_cache.measure_algorithm(calls, context="x") == pytest.approx(
        no_cache.predict_algorithm(calls, context="x")
    )


def test_interference_scales_with_producer_residue():
    machine = paper_machine(seed=0)
    small_producer = KernelCall(KernelName.GEMM, (40, 40, 300))
    big_producer = KernelCall(KernelName.GEMM, (300, 300, 40))
    consumer = KernelCall(KernelName.GEMM, (40, 120, 40), reads_previous=True)
    assert machine.interference_penalty(
        big_producer, consumer
    ) > machine.interference_penalty(small_producer, consumer)


def test_machine_validates_input():
    with pytest.raises(ValueError):
        MachineModel(xeon_silver_4210_like(), reps=0)
    machine = paper_machine(seed=0)
    with pytest.raises(ValueError):
        machine.efficiency(KernelName.GEMM, (10, 10))
    with pytest.raises(ValueError):
        machine.efficiency(KernelName.SYRK, (0, 10))
