"""Concurrent store access: racing writers, torn-free readers.

Two processes race to write the same study key many times while the
parent reads continuously.  The contract for both backends: a reader
observes either a miss or one complete, valid payload — never a torn
file or partial row — and after the dust settles exactly one valid
payload remains.  (Real contention looks exactly like this: runner
workers recomputing the same deterministic study write identical
payloads.)
"""

import multiprocessing

import pytest

from repro.analysis.confusion import ConfusionMatrix
from repro.core.classify import Verdict
from repro.experiments.prediction import Prediction, PredictionRecord
from repro.experiments.random_search import Anomaly, SearchResult
from repro.experiments.regions import DimExtent, Region, RegionCell, Regions
from repro.figures.cache import LOCAL_STORE_KINDS, StudyKey, make_store

KEY = StudyKey(scale="quick", seed=0, expression="aatb")

_WRITES_PER_PROCESS = 40


def _tiny_study():
    verdict = Verdict(
        is_anomaly=True,
        time_score=0.4375,
        flop_score=0.3125,
        threshold=0.1,
        cheapest=("aatb-1-syrk",),
        fastest=("aatb-4-gemm",),
    )
    search = SearchResult(
        expression="aatb",
        threshold=0.1,
        anomalies=(Anomaly(instance=(92, 600, 600), verdict=verdict),),
        n_samples=64,
    )
    regions = Regions(
        expression="aatb",
        threshold=0.05,
        n_dims=3,
        regions=(
            Region(
                origin=(92, 600, 600),
                extents={0: DimExtent(dim=0, lo=20, hi=148)},
            ),
        ),
        cells=(
            RegionCell(
                instance=(92, 600, 600), time_score=0.4375, is_anomaly=True
            ),
        ),
    )
    prediction = Prediction(
        expression="aatb",
        threshold=0.05,
        records=(
            PredictionRecord(
                instance=(92, 600, 600),
                actual_anomaly=True,
                predicted_anomaly=True,
                actual_score=0.4375,
                predicted_score=0.40625,
            ),
        ),
    )
    confusion = ConfusionMatrix(
        true_positive=1, false_positive=0, false_negative=0, true_negative=0
    )
    return search, regions, prediction, confusion


def _writer(kind, root, barrier):
    study = _tiny_study()
    with make_store(kind, root) as store:
        barrier.wait(timeout=30)
        for _ in range(_WRITES_PER_PROCESS):
            store.save(KEY, *study)


@pytest.mark.parametrize("kind", LOCAL_STORE_KINDS)
def test_racing_writers_one_valid_payload_no_torn_reads(tmp_path, kind):
    search, regions, prediction, confusion = _tiny_study()
    # Reference payload: what any single writer would persist.
    with make_store(kind, tmp_path / "ref") as ref:
        ref.save(KEY, search, regions, prediction, confusion)
        expected = ref.load(KEY)
    assert expected is not None

    root = tmp_path / "race"
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(3)
    writers = [
        ctx.Process(target=_writer, args=(kind, root, barrier))
        for _ in range(2)
    ]
    for proc in writers:
        proc.start()
    try:
        with make_store(kind, root) as reader:
            barrier.wait(timeout=30)
            observations = 0
            hits = 0
            while any(proc.is_alive() for proc in writers):
                loaded = reader.load(KEY)
                observations += 1
                if loaded is not None:
                    hits += 1
                    # A visible payload is always complete and valid.
                    assert loaded == expected
    finally:
        for proc in writers:
            proc.join(timeout=60)
    assert all(proc.exitcode == 0 for proc in writers)
    assert observations > 0

    # The settled store holds exactly one valid payload for the key.
    with make_store(kind, root) as store:
        assert store.load(KEY) == expected
        assert store.load(StudyKey("quick", 1, "aatb")) is None
    if kind == "json":
        # Atomic replace leaves no temp litter and exactly one file.
        files = sorted(p.name for p in root.iterdir())
        assert files == [f"study-v2-{KEY.slug}.json"]


@pytest.mark.parametrize("kind", LOCAL_STORE_KINDS)
def test_concurrent_runner_workers_share_one_key(tmp_path, kind):
    """Two processes race compute-and-store on the SAME study key."""
    from repro.figures.cache import JsonDirectoryStore
    from repro.runner.runner import run_study

    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(target=run_study, args=(KEY, kind, str(tmp_path)))
        for _ in range(2)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    assert all(proc.exitcode == 0 for proc in procs)
    with make_store(kind, tmp_path) as store:
        loaded = store.load(KEY)
    assert loaded is not None
    # The racing writers agree: the payload equals a fresh sequential
    # computation's payload byte-for-byte.
    solo = run_study(KEY, "json", str(tmp_path / "solo"))
    assert solo.status == "computed"
    solo_text = (
        JsonDirectoryStore(tmp_path / "solo").path_for(KEY).read_text()
    )
    if kind == "json":
        raced_text = JsonDirectoryStore(tmp_path).path_for(KEY).read_text()
    else:
        with make_store(kind, tmp_path) as store:
            raced_text = store.raw_payload(KEY)
    assert raced_text == solo_text
