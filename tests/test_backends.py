"""Backends: simulated determinism and real-BLAS correctness."""

import pytest

from repro.backends.real import RealBlasBackend
from repro.backends.simulated import SimulatedBackend
from repro.core.classify import classify, evaluate_instance
from repro.expressions.registry import get_expression
from repro.machine.presets import paper_machine


def test_simulated_backend_is_deterministic_across_instances():
    aatb = get_expression("aatb")
    algorithms = aatb.algorithms()
    instance = (92, 1095, 323)
    a = evaluate_instance(
        SimulatedBackend(paper_machine(seed=0)), algorithms, instance
    )
    b = evaluate_instance(
        SimulatedBackend(paper_machine(seed=0)), algorithms, instance
    )
    assert a == b
    c = evaluate_instance(
        SimulatedBackend(paper_machine(seed=1)), algorithms, instance
    )
    assert a.seconds != c.seconds  # different noise stream
    assert a.flops == c.flops  # FLOPs are noise-free


def test_quickstart_instance_is_anomalous():
    # The instance examples/quickstart.py calls "deep in an anomalous
    # region" must classify as an anomaly at the paper threshold.
    backend = SimulatedBackend()
    aatb = get_expression("aatb")
    verdict = classify(
        evaluate_instance(backend, aatb.algorithms(), (92, 1095, 323)),
        threshold=0.10,
    )
    assert verdict.is_anomaly
    assert set(verdict.cheapest) == {
        "aatb-1:syrk+symm",
        "aatb-2:syrk+copy+gemm",
    }
    assert all("gemm" in name for name in verdict.fastest)


def test_total_efficiency_bounded_by_one():
    backend = SimulatedBackend(paper_machine(seed=0))
    chain = get_expression("chain4")
    evaluation = evaluate_instance(
        backend, chain.algorithms(), (600, 400, 500, 450, 550)
    )
    for flops, seconds in zip(evaluation.flops, evaluation.seconds):
        assert 0.0 < flops / (seconds * backend.peak_flops) < 1.0


def test_real_backend_verifies_all_aatb_algorithms():
    backend = RealBlasBackend(reps=1)
    aatb = get_expression("aatb")
    for algorithm in aatb.algorithms():
        assert backend.verify_algorithm(algorithm, (24, 17, 9)) < 1e-10


def test_real_backend_verifies_all_chain_plans():
    backend = RealBlasBackend(reps=1)
    chain = get_expression("chain4")
    for algorithm in chain.algorithms():
        assert backend.verify_algorithm(algorithm, (8, 13, 5, 9, 11)) < 1e-10


def test_real_backend_times_are_positive():
    backend = RealBlasBackend(reps=1)
    aatb = get_expression("aatb")
    algorithm = aatb.algorithms()[0]
    assert backend.time_algorithm(algorithm, (32, 32, 32)) > 0
    from repro.kernels.types import KernelName

    assert backend.time_kernel(KernelName.GEMM, (32, 32, 32)) > 0


def test_backends_reject_bad_reps():
    with pytest.raises(ValueError):
        RealBlasBackend(reps=0)
