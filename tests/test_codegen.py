"""Plan codegen equivalence: generated evaluators ≡ the interpreter.

For every registered family (plus ``sum6``, which compiles under the
cost-guided pruning pass), the per-plan generated functions must match
the interpreted paths **bit for bit** on randomized instance batches:

* the batch FLOP evaluator equals both the interpreted whole-column
  polynomial evaluation and the :func:`flop_polynomial` oracle;
* the generated :class:`KernelCallBatch` builder equals
  ``batch_kernel_calls`` over the interpreted call sequence;
* the generated NumPy executor equals ``Plan.execute`` on real
  operands (same BLAS wrappers replayed in the same order).

``REPRO_NO_CODEGEN=1`` must disable every generated path, falling back
to the interpreter with identical results.
"""

import random

import numpy as np
import pytest

from repro.core.symbolic import flop_polynomial
from repro.expressions.codegen import (
    clear_codegen_caches,
    codegen_enabled,
    codegen_stats,
    compiled_plan,
    plan_signature,
)
from repro.expressions.registry import get_expression
from repro.expressions.shapes import SizeExpr, dim_symbols
from repro.kernels.types import batch_kernel_calls

#: The registered families plus one pruned large family (sum6 runs the
#: compiler's cost-guided pruning pass, whose tree costs now evaluate
#: through the symbolic shape layer).
FAMILIES = (
    "aatb", "chain4", "gram3", "tri4", "sum3", "addchain3", "solve3",
    "sum6",
)


def _instance_batches(n_dims, seed=0):
    """Randomized batches including degenerate (all-1) and large dims."""
    rng = random.Random(seed)
    batches = [
        np.asarray(
            [
                tuple(rng.randint(1, 400) for _ in range(n_dims))
                for _ in range(17)
            ],
            dtype=np.int64,
        ),
        np.ones((3, n_dims), dtype=np.int64),
        np.full((2, n_dims), 1400, dtype=np.int64),
    ]
    return batches


def _interpreted_flops(algorithm, arr):
    columns = tuple(arr[:, i] for i in range(arr.shape[1]))
    return np.asarray(algorithm.flops(columns), dtype=np.int64)


def _interpreted_batches(algorithm, arr):
    columns = tuple(arr[:, i] for i in range(arr.shape[1]))
    return batch_kernel_calls(algorithm.kernel_calls(columns), arr.shape[0])


@pytest.mark.parametrize("family", FAMILIES)
def test_codegen_flops_match_interpreter_and_polynomial(family):
    expression = get_expression(family)
    polys = [
        flop_polynomial(a, expression.n_dims)
        for a in expression.algorithms()
    ]
    for arr in _instance_batches(expression.n_dims, seed=hash(family) % 997):
        columns = tuple(arr[:, i] for i in range(arr.shape[1]))
        for algorithm, poly in zip(expression.algorithms(), polys):
            fn = algorithm.flops_batch_function()
            assert fn is not None, algorithm.name
            got = fn(arr)
            assert got.dtype == np.int64
            assert got.tolist() == _interpreted_flops(algorithm, arr).tolist()
            assert got.tolist() == poly.evaluate(columns).tolist()
            # The convenience wrapper routes through the same function.
            assert algorithm.flops_batch(arr).tolist() == got.tolist()


@pytest.mark.parametrize("family", FAMILIES)
def test_codegen_call_batches_match_interpreter(family):
    expression = get_expression(family)
    for arr in _instance_batches(expression.n_dims, seed=len(family)):
        for algorithm in expression.algorithms():
            generated = algorithm.kernel_call_batches(arr)
            interpreted = _interpreted_batches(algorithm, arr)
            assert len(generated) == len(interpreted)
            for got, want in zip(generated, interpreted):
                assert got.kernel is want.kernel
                assert got.reads_previous == want.reads_previous
                assert got.dims.shape == want.dims.shape
                assert np.array_equal(got.dims, want.dims)


@pytest.mark.parametrize("family", FAMILIES)
def test_codegen_executor_bit_equal_to_plan_execute(family):
    expression = get_expression(family)
    rng_seed = 11
    instances = [
        tuple(random.Random(rng_seed + i).randint(2, 24)
              for _ in range(expression.n_dims))
        for i in range(3)
    ]
    for plan, algorithm in zip(expression.plans(), expression.algorithms()):
        code = compiled_plan(plan)
        for i, instance in enumerate(instances):
            operands = expression.make_operands(
                instance, np.random.default_rng(rng_seed + i)
            )
            interpreted = plan.execute(operands)
            generated = code.execute(operands)
            assert generated.dtype == interpreted.dtype
            assert np.array_equal(generated, interpreted)
            # The Algorithm's executor routes through the provider.
            assert np.array_equal(algorithm.execute(operands), interpreted)


def test_no_codegen_env_falls_back_to_interpreter(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
    assert not codegen_enabled()
    expression = get_expression("aatb")
    arr = _instance_batches(expression.n_dims)[0]
    for algorithm in expression.algorithms():
        # The provider answers None: batch paths use the interpreter.
        assert algorithm.flops_batch_function() is None
        assert (
            algorithm.flops_batch(arr).tolist()
            == _interpreted_flops(algorithm, arr).tolist()
        )
        generated = algorithm.kernel_call_batches(arr)
        interpreted = _interpreted_batches(algorithm, arr)
        for got, want in zip(generated, interpreted):
            assert got.kernel is want.kernel
            assert np.array_equal(got.dims, want.dims)
    # Executors still work (interpreted Plan.execute fallback).
    operands = expression.make_operands((4, 5, 6), np.random.default_rng(0))
    reference = expression.reference(operands)
    for algorithm in expression.algorithms():
        assert np.allclose(algorithm.execute(operands), reference)
    monkeypatch.delenv("REPRO_NO_CODEGEN")
    assert codegen_enabled()


def test_plan_cache_and_flops_sharing_stats():
    clear_codegen_caches()
    expression = get_expression("aatb")
    plans = expression.plans()
    codes = [compiled_plan(p) for p in plans]
    stats = codegen_stats()
    assert stats["plans_compiled"] == len(plans)
    assert stats["plan_cache_size"] == len(plans)
    # aatb's five plans hold only three distinct FLOP polynomials
    # (aatb-1/2 share one, aatb-3/4 share another): plans with equal
    # polynomials share one compiled function *object*.
    assert stats["flops_functions"] == 3
    assert stats["flops_fns_shared"] == 2
    assert codes[0].flops is codes[1].flops
    assert codes[2].flops is codes[3].flops
    assert codes[0].flops is not codes[2].flops
    # Re-compiling an identical plan is a cache hit, not a rebuild.
    before = codegen_stats()["plan_cache_hits"]
    again = compiled_plan(plans[0])
    assert again is codes[0]
    assert codegen_stats()["plan_cache_hits"] == before + 1


def test_plan_signature_distinguishes_schedules():
    chain = get_expression("chain4")
    names = [a.name for a in chain.algorithms()]
    left = names.index("chain4-3:(AB)(CD)/left-first")
    right = names.index("chain4-3:(AB)(CD)/right-first")
    signatures = [plan_signature(p) for p in chain.plans()]
    # Different schedules of one tree are distinct plans (their step
    # order differs), and all six chain4 algorithms are distinct.
    assert signatures[left] != signatures[right]
    assert len(set(signatures)) == len(signatures)


def test_size_expr_polynomial_identities():
    d0, d1, d2 = dim_symbols(3)
    expr = 2 * d0 * d1 + d0 * d1 + 3
    assert isinstance(expr, SizeExpr)
    assert expr.size_hint((5, 7, 11)) == 3 * 5 * 7 + 3
    assert expr.used_dims() == (0, 1)
    assert (d0 + 0) == d0 and (d0 * 1) == d0
    # Column evaluation is exact int64.
    arr = np.asarray([[2, 3, 4], [100, 200, 300]], dtype=np.int64)
    got = expr.evaluate_columns(arr)
    assert got.dtype == np.int64
    assert got.tolist() == [2 * 2 * 3 + 2 * 3 + 3, 3 * 100 * 200 + 3]
    # Rendered source round-trips through eval over the same columns.
    source = expr.render(lambda d: f"c{d}")
    namespace = {f"c{i}": arr[:, i] for i in range(3)}
    assert eval(source, {"__builtins__": {}}, namespace).tolist() == got.tolist()
