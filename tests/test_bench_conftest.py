"""The benchmark harness must reject malformed environment knobs."""

import importlib.util
from pathlib import Path

import pytest

_CONFTEST = Path(__file__).parent.parent / "benchmarks" / "conftest.py"
_spec = importlib.util.spec_from_file_location("bench_conftest", _CONFTEST)
bench_conftest = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_conftest)


def test_scale_accepts_known_values():
    assert bench_conftest.parse_bench_scale("quick") == "quick"
    assert bench_conftest.parse_bench_scale(" Full ") == "full"


@pytest.mark.parametrize("raw", ["", "fast", "qiuck", "1", "full scale"])
def test_scale_rejects_unknown_values_with_clear_error(raw):
    with pytest.raises(pytest.UsageError, match="REPRO_BENCH_SCALE"):
        bench_conftest.parse_bench_scale(raw)


def test_seed_accepts_integers():
    assert bench_conftest.parse_bench_seed("7") == 7
    assert bench_conftest.parse_bench_seed(" -3 ") == -3


@pytest.mark.parametrize("raw", ["", "0.5", "seven", "1e3"])
def test_seed_rejects_non_integers_with_clear_error(raw):
    with pytest.raises(pytest.UsageError, match="REPRO_BENCH_SEED"):
        bench_conftest.parse_bench_seed(raw)


def test_cache_store_accepts_valid_and_rejects_junk(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_STORE", raising=False)
    assert bench_conftest.parse_cache_store() == "json"
    monkeypatch.setenv("REPRO_CACHE_STORE", "sqlite")
    assert bench_conftest.parse_cache_store() == "sqlite"
    monkeypatch.setenv("REPRO_CACHE_STORE", "redis")
    with pytest.raises(pytest.UsageError, match="REPRO_CACHE_STORE"):
        bench_conftest.parse_cache_store()


def test_no_scheduler_accepts_the_tri_state_knob(monkeypatch):
    monkeypatch.delenv("REPRO_NO_SCHEDULER", raising=False)
    assert bench_conftest.parse_no_scheduler() == ""
    for value in ("", "0", "1"):
        monkeypatch.setenv("REPRO_NO_SCHEDULER", value)
        assert bench_conftest.parse_no_scheduler() == value


@pytest.mark.parametrize("raw", ["true", "yes", "on", "2", " 1"])
def test_no_scheduler_rejects_junk_with_clear_error(monkeypatch, raw):
    # "true" would silently mean "scheduler ON" to the lazy probe —
    # the exact inversion an ablation run must not hit quietly.
    monkeypatch.setenv("REPRO_NO_SCHEDULER", raw)
    with pytest.raises(pytest.UsageError, match="REPRO_NO_SCHEDULER"):
        bench_conftest.parse_no_scheduler()
