"""Cost-guided pruning invariants (ISSUE 5 spec).

Two properties pin the pruning pass:

* the pruned plan set is a *prefix* of the stable cost-ranked full
  enumeration (costs evaluated at the configured centroid, ties broken
  to enumeration order) — pruning may only cut the tail, never reorder
  or invent plans;
* with pruning off (the default), compilation is bit-for-bit the
  pre-pruning compiler — the sha256-pinned ``chain<k>``/``aatb`` study
  payloads in ``tests/test_compiled_equivalence.py`` stay valid, and a
  budget at or above the tree count is a no-op.
"""

import pytest

from repro.expressions.compiler import (
    PruneConfig,
    compile_product_plans,
    compile_sum_plans,
)
from repro.expressions.ir import ProductExpr, chain_leaves
from repro.expressions.registry import get_expression


def _plan_key(plan):
    """Identity of a plan: name-determining fields plus its steps."""
    return (plan.tree_index, plan.tree_label, plan.schedule, plan.steps)


def _cost_ranked(plans, centroid):
    """Stable cost rank of a full enumeration, grouped by tree.

    The budget counts trees/combinations, so ranking happens on tree
    groups: each group's cost is its plans' FLOPs at the centroid
    (identical across a GEMM-only tree's schedules), ties break to
    enumeration order.
    """
    groups = []
    for plan in plans:
        if groups and groups[-1][0] == plan.tree_index:
            groups[-1][1].append(plan)
        else:
            groups.append((plan.tree_index, [plan]))
    ranked = sorted(
        range(len(groups)),
        key=lambda g: (float(groups[g][1][0].flops(centroid)), g),
    )
    return [groups[g][1] for g in ranked]


#: A centroid with distinct per-dim sizes, so tree costs actually
#: differ (at the default all-equal centroid every chain tree ties).
CHAIN5_CENTROID = (400, 60, 900, 150, 700, 300)


def test_pruned_product_plans_are_a_prefix_of_the_cost_ranking():
    product = ProductExpr(chain_leaves(list(range(6))))  # chain5, 14 trees
    full = compile_product_plans("chain5", product)
    ranked_groups = _cost_ranked(full, CHAIN5_CENTROID)
    for budget in (1, 3, 7, 13):
        pruned = compile_product_plans(
            "chain5",
            product,
            prune=PruneConfig(budget=budget, centroid=CHAIN5_CENTROID),
        )
        expected = [
            plan for group in ranked_groups[:budget] for plan in group
        ]
        assert [_plan_key(p) for p in pruned] == [
            _plan_key(p) for p in expected
        ]


def test_pruned_sum_plans_are_a_prefix_of_the_cost_ranking():
    sum_ir = get_expression("sum4").ir  # 5 x 5 tree combinations
    centroid = (500, 80, 900, 200, 350, 60, 750, 130)
    full = compile_sum_plans("sum4", sum_ir)
    assert len(full) == 25
    ranked_groups = _cost_ranked(full, centroid)
    for budget in (1, 6, 24):
        pruned = compile_sum_plans(
            "sum4",
            sum_ir,
            prune=PruneConfig(budget=budget, centroid=centroid),
        )
        expected = [
            plan for group in ranked_groups[:budget] for plan in group
        ]
        assert [_plan_key(p) for p in pruned] == [
            _plan_key(p) for p in expected
        ]


def test_budget_at_or_above_tree_count_is_a_noop():
    product = ProductExpr(chain_leaves(list(range(5))))  # chain4, 5 trees
    full = compile_product_plans("chain4", product)
    for budget in (5, 50):
        same = compile_product_plans(
            "chain4", product, prune=PruneConfig(budget=budget)
        )
        assert [_plan_key(p) for p in same] == [_plan_key(p) for p in full]


def test_pruning_off_by_default_for_pinned_families():
    # The byte-identity of the chain4/aatb study payloads (sha256-
    # pinned in test_compiled_equivalence.py) rests on these families
    # never compiling under a prune budget.
    assert get_expression("chain4").prune is None
    assert get_expression("aatb").prune is None
    assert get_expression("sum5").prune is None  # previously reachable
    assert get_expression("sum6").prune is not None  # cap-lifting range


def test_pruned_names_keep_full_enumeration_indices():
    # Plan names embed the tree/combination index of the *full*
    # enumeration, so a plan keeps its identity whatever the budget.
    product = ProductExpr(chain_leaves(list(range(6))))
    pruned = compile_product_plans(
        "chain5",
        product,
        prune=PruneConfig(budget=2, centroid=CHAIN5_CENTROID),
    )
    full = compile_product_plans("chain5", product)
    full_keys = {_plan_key(p) for p in full}
    assert all(_plan_key(p) in full_keys for p in pruned)


def test_prune_config_validation():
    with pytest.raises(ValueError, match="budget"):
        PruneConfig(budget=0)
    with pytest.raises(ValueError, match="centroid"):
        PruneConfig(budget=2, centroid=(10, 20)).resolve_centroid(3)
    # Default probe: staggered across the paper box, every dim
    # distinct — at an all-equal point every chain tree would tie and
    # the "cost ranking" would collapse to enumeration order.
    probe = PruneConfig(budget=2).resolve_centroid(12)
    assert len(set(probe)) == 12
    assert all(20 <= value <= 1200 for value in probe)


def test_default_probe_ranking_is_not_an_enumeration_prefix():
    # The production use: sum<k> beyond the exact range.  With the
    # staggered default probe the kept combinations must differ from
    # the first-64 enumeration prefix (i.e. pruning actually ranks by
    # cost) and must vary the *first* term's association too.
    sum6 = get_expression("sum6")
    kept = [plan.tree_index for plan in sum6.plans()]
    assert len(kept) == len(set(kept)) == 64
    assert kept != list(range(64))  # not the degenerate all-ties prefix
    first_term_trees = {index // 42 for index in kept}  # 42 trees/term
    assert len(first_term_trees) > 2
