"""Plan scheduler equivalence and reordering contracts.

The scheduler (:mod:`repro.expressions.scheduler`) sits between the
compiler and codegen and must be a pure perf layer under the default
machine schedule:

* the scheduled executors (interpreted and generated) equal
  ``Plan.execute`` **bit for bit** on real operands for every family;
* FLOP evaluation and :class:`KernelCallBatch` construction are
  untouched by the scheduler state;
* the machine's fused measurement pass equals the per-call loop
  bit for bit;
* ``REPRO_NO_SCHEDULER=1`` disables every scheduled path with
  identical results.

Non-default schedules (``min-``/``max-interference``) are the new
scenario axis: deterministic, cache-backed, scalar/batch consistent.
"""

import random

import numpy as np
import pytest

from repro.backends.simulated import SimulatedBackend
from repro.envknobs import scheduler_enabled
from repro.expressions.codegen import compiled_plan
from repro.expressions.compiler import compile_add_plans
from repro.expressions.ir import AddExpr, Leaf
from repro.expressions.registry import get_expression
from repro.expressions.scheduler import (
    clear_scheduler_caches,
    last_uses,
    schedule_decisions,
    schedule_order,
    scheduled_call_batches,
    scheduled_calls,
    scheduled_execute,
    scheduler_stats,
    step_reads,
)
from repro.machine.machine import SCHEDULES
from repro.machine.presets import paper_machine

#: The registered families plus two pattern-compiled ones (sum6 runs
#: the cost-guided pruning pass and carries a GEMM accumulation;
#: addchain4 is a pure ADD chain).
FAMILIES = (
    "aatb", "chain4", "gram3", "tri4", "sum3", "addchain3", "solve3",
    "sum6", "addchain4",
)


def _instances(n_dims, seed=11, count=3):
    return [
        tuple(
            random.Random(seed + i).randint(2, 24) for _ in range(n_dims)
        )
        for i in range(count)
    ]


def _add_chain(n_leaves, rows=60, cols=50, seed=5):
    leaves = tuple(
        Leaf(operand=i, rows=0, cols=1, label=f"M{i}")
        for i in range(n_leaves)
    )
    (plan,) = compile_add_plans(f"addfuse{n_leaves}", AddExpr(leaves))
    rng = np.random.default_rng(seed)
    operands = [
        np.asfortranarray(rng.standard_normal((rows, cols)))
        for _ in range(n_leaves)
    ]
    return plan, operands


@pytest.mark.parametrize("family", FAMILIES)
def test_scheduled_executors_bit_equal_to_plan_execute(family):
    expression = get_expression(family)
    for plan in expression.plans():
        for i, instance in enumerate(_instances(expression.n_dims)):
            operands = expression.make_operands(
                instance, np.random.default_rng(23 + i)
            )
            reference = plan.execute(operands)
            interpreted = scheduled_execute(plan, operands)
            generated = compiled_plan(plan, scheduled=True).execute(operands)
            plain = compiled_plan(plan, scheduled=False).execute(operands)
            assert interpreted.dtype == reference.dtype
            assert np.array_equal(interpreted, reference)
            assert np.array_equal(generated, reference)
            assert np.array_equal(plain, reference)


def test_scheduler_state_leaves_flops_and_batches_untouched(monkeypatch):
    expression = get_expression("chain4")
    arr = np.asarray(
        [
            [2, 3, 5, 7, 11],
            [40, 1, 400, 7, 13],
            [1, 1, 1, 1, 1],
        ],
        dtype=np.int64,
    )
    with_scheduler = [
        (a.flops_batch(arr), a.kernel_call_batches(arr))
        for a in expression.algorithms()
    ]
    monkeypatch.setenv("REPRO_NO_SCHEDULER", "1")
    for algorithm, (flops, batches) in zip(
        expression.algorithms(), with_scheduler
    ):
        assert algorithm.flops_batch(arr).tolist() == flops.tolist()
        for got, want in zip(algorithm.kernel_call_batches(arr), batches):
            assert got.kernel is want.kernel
            assert got.reads_previous == want.reads_previous
            assert np.array_equal(got.dims, want.dims)


@pytest.mark.parametrize("family", ("sum3", "chain4", "aatb"))
def test_fused_measurement_bit_equal_to_per_call_loop(family, monkeypatch):
    monkeypatch.delenv("REPRO_NO_SCHEDULER", raising=False)
    expression = get_expression(family)
    rng = random.Random(7)
    box_rows = [
        tuple(rng.randint(5, 300) for _ in range(expression.n_dims))
        for _ in range(37)
    ]
    arr = np.asarray(box_rows, dtype=np.int64)
    machine = paper_machine(seed=3)
    fused = []
    for algorithm in expression.algorithms():
        batches = algorithm.kernel_call_batches(arr)
        fused.append(
            (
                machine.measure_algorithm_batch(batches, algorithm.name),
                machine.predict_algorithm_batch(batches, algorithm.name),
                machine.measure_algorithm(
                    algorithm.kernel_calls(box_rows[0]), algorithm.name
                ),
            )
        )
    monkeypatch.setenv("REPRO_NO_SCHEDULER", "1")
    assert not scheduler_enabled()
    for algorithm, (measured, predicted, scalar) in zip(
        expression.algorithms(), fused
    ):
        batches = algorithm.kernel_call_batches(arr)
        assert np.array_equal(
            machine.measure_algorithm_batch(batches, algorithm.name),
            measured,
        )
        assert np.array_equal(
            machine.predict_algorithm_batch(batches, algorithm.name),
            predicted,
        )
        assert (
            machine.measure_algorithm(
                algorithm.kernel_calls(box_rows[0]), algorithm.name
            )
            == scalar
        )


def test_add_chain_fuses_into_one_accumulator():
    plan, operands = _add_chain(6)
    decisions = schedule_decisions(plan)
    # Five ADD steps; every step after the first accumulates in place
    # into its dying step operand's buffer.
    assert decisions.fuse_into == (None, 0, 1, 2, 3)
    reference = plan.execute(operands)
    assert np.array_equal(scheduled_execute(plan, operands), reference)
    code = compiled_plan(plan, scheduled=True)
    assert np.array_equal(code.execute(operands), reference)
    # The emitted executor reuses one buffer through the whole chain.
    assert "out=t0" in code.source["execute"]
    assert ", out=" not in compiled_plan(plan, scheduled=False).source["execute"]


def test_dependency_graph_and_liveness_helpers():
    plan, _ = _add_chain(4)
    assert [step_reads(s) for s in plan.steps] == [(), (0,), (1,)]
    assert last_uses(plan.steps) == [1, 2, 3]


def test_syrk_copy_materialization_dropped_when_single_consumer():
    clear_scheduler_caches()
    expression = get_expression("aatb")
    plans = {a.name: p for p, a in zip(expression.plans(), expression.algorithms())}
    plan = plans["aatb-2:syrk+copy+gemm"]
    assert plan.steps[0].copy_to_full
    decisions = schedule_decisions(plan)
    assert decisions.inplace_fill[0]
    stats = scheduler_stats()
    assert stats["plans_scheduled"] >= 1
    assert stats["copies_dropped"] >= 1
    instance = (6, 9, 4)
    operands = expression.make_operands(instance, np.random.default_rng(1))
    assert np.array_equal(
        scheduled_execute(plan, operands), plan.execute(operands)
    )


def test_schedule_order_default_is_identity():
    machine = paper_machine(seed=0)
    expression = get_expression("sum3")
    for plan in expression.plans():
        order, flags = schedule_order(plan, machine)
        assert order == tuple(range(len(plan.steps)))
        assert flags == tuple(s.reads_previous for s in plan.steps)


def test_schedule_order_reorders_deterministically_with_cache(monkeypatch):
    # Reordering is the one transform that needs the scheduler live —
    # neutralize an ambient ablation env so the assertions stay
    # meaningful under `REPRO_NO_SCHEDULER=1 pytest` runs too.
    monkeypatch.delenv("REPRO_NO_SCHEDULER", raising=False)
    clear_scheduler_caches()
    minimize = paper_machine(seed=0, schedule="min-interference")
    maximize = paper_machine(seed=0, schedule="max-interference")
    expression = get_expression("sum3")
    identity_count = 0
    for plan in expression.plans():
        order_min, flags_min = schedule_order(plan, minimize)
        order_max, _ = schedule_order(plan, maximize)
        identity = tuple(range(len(plan.steps)))
        if order_min == identity and order_max == identity:
            identity_count += 1
        # Deterministic: a second call returns the cached choice.
        before = scheduler_stats()["schedule_cache_hits"]
        assert schedule_order(plan, minimize) == (order_min, flags_min)
        assert scheduler_stats()["schedule_cache_hits"] == before + 1
        # Flags describe producer/consumer adjacency in the new order.
        reads = [frozenset(step_reads(s)) for s in plan.steps]
        for p, index in enumerate(order_min):
            expected = p > 0 and order_min[p - 1] in reads[index]
            assert flags_min[p] == expected
    # The interference term separates the schedules on sum3: at least
    # one plan prefers a non-original order under each extreme.
    assert identity_count < len(expression.plans())
    assert scheduler_stats()["plans_reordered"] >= 2


def _probe(n_dims, start=20, stride=11):
    return tuple(start + stride * i for i in range(n_dims))


def _analytic_score(plan, machine, order):
    """The model aggregate schedule_order optimizes, recomputed here."""
    from repro.expressions.scheduler import _probe_instance

    reads = [frozenset(step_reads(s)) for s in plan.steps]
    calls = plan.kernel_calls(_probe_instance(plan.n_dims))
    score = 0.0
    previous = None
    for index in order:
        seconds = machine.kernel_seconds(
            calls[index].kernel, calls[index].dims
        )
        if previous is not None and previous in reads[index]:
            seconds *= 1.0 + machine.interference_penalty(
                calls[previous], calls[index]
            )
        score += seconds
        previous = index
    return score


def test_schedule_extremes_bracket_the_original_order():
    expression = get_expression("sum3")
    minimize = paper_machine(seed=0, schedule="min-interference")
    maximize = paper_machine(seed=0, schedule="max-interference")
    for plan in expression.plans():
        identity = tuple(range(len(plan.steps)))
        order_min, _ = schedule_order(plan, minimize)
        order_max, _ = schedule_order(plan, maximize)
        score_id = _analytic_score(plan, minimize, identity)
        assert _analytic_score(plan, minimize, order_min) <= score_id
        assert _analytic_score(plan, minimize, order_max) >= score_id


def test_scalar_and_batch_paths_agree_under_reordering():
    backend = SimulatedBackend(
        paper_machine(seed=1, schedule="min-interference")
    )
    expression = get_expression("sum3")
    instance = _probe(expression.n_dims, start=30)
    for algorithm in expression.algorithms():
        scalar = backend.time_algorithm(algorithm, instance)
        batch = backend.time_algorithms(algorithm, [instance])
        assert scalar == batch[0]
        assert backend.predict_time(algorithm, instance) == (
            backend.predict_times(algorithm, [instance])[0]
        )


def test_scheduled_calls_and_batches_are_consistent():
    machine = paper_machine(seed=0, schedule="max-interference")
    expression = get_expression("sum3")
    instance = _probe(expression.n_dims, start=25)
    arr = np.asarray([instance], dtype=np.int64)
    for algorithm in expression.algorithms():
        calls = scheduled_calls(
            algorithm, algorithm.kernel_calls(instance), machine
        )
        batches = scheduled_call_batches(
            algorithm, algorithm.kernel_call_batches(arr), machine
        )
        assert len(calls) == len(batches)
        for call, batch in zip(calls, batches):
            assert call.kernel is batch.kernel
            assert call.reads_previous == batch.reads_previous
            assert tuple(batch.dims[0]) == call.dims


def test_no_scheduler_env_disables_every_scheduled_path(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SCHEDULER", "1")
    assert not scheduler_enabled()
    assert not scheduler_stats()["enabled"]
    # Non-default schedules degrade to the original order.
    machine = paper_machine(seed=0, schedule="min-interference")
    expression = get_expression("sum3")
    for plan in expression.plans():
        order, flags = schedule_order(plan, machine)
        assert order == tuple(range(len(plan.steps)))
        assert flags == tuple(s.reads_previous for s in plan.steps)
    # Executors fall back with identical results.
    operands = expression.make_operands(
        _probe(expression.n_dims, start=5, stride=2), np.random.default_rng(2)
    )
    for plan, algorithm in zip(expression.plans(), expression.algorithms()):
        assert np.array_equal(
            algorithm.execute(operands), plan.execute(operands)
        )
    for value in ("", "0"):
        monkeypatch.setenv("REPRO_NO_SCHEDULER", value)
        assert scheduler_enabled()


def test_machine_rejects_unknown_schedule():
    assert SCHEDULES == ("default", "min-interference", "max-interference")
    with pytest.raises(ValueError, match="schedule"):
        paper_machine(seed=0, schedule="fastest")
    # Schedule names are exact (the CLI lowercases before they get
    # here): casing typos fail fast too.
    with pytest.raises(ValueError, match="schedule"):
        paper_machine(seed=0, schedule="Min-Interference")


def test_clear_scheduler_caches_resets_stats():
    schedule_decisions(get_expression("aatb").plans()[0])
    assert scheduler_stats()["plans_scheduled"] >= 1
    clear_scheduler_caches()
    stats = scheduler_stats()
    assert stats["plans_scheduled"] == 0
    assert stats["schedule_cache_hits"] == 0
    # Decisions recompute cleanly after the drop.
    schedule_decisions(get_expression("aatb").plans()[0])
    assert scheduler_stats()["plans_scheduled"] == 1
