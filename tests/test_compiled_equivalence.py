"""Compiler-generated chain4/aatb ≡ the PR-1 hand-coded algorithms.

The ISSUE-4 acceptance bar: regenerating the paper's two families
through the expression compiler must reproduce the hand-written
implementations *exactly* — same algorithm names in the same order,
same kernel-call sequences (dims, ``reads_previous``, notes), same
FLOP polynomials, and byte-identical quick-scale study payloads.

The payload digests below were recorded from the pre-refactor
implementation (PR 3 tree).  They pin the full deterministic pipeline;
if a later PR intentionally changes machine/experiment semantics it
must bump ``repro.figures.cache.SCHEMA_VERSION`` *and* refresh these
digests in the same commit.
"""

import hashlib

import pytest

from repro.core.symbolic import flop_polynomial
from repro.expressions.registry import get_expression
from repro.figures.cache import StudyKey, encode_study
from repro.figures.common import FigureConfig, compute_study_results
from repro.kernels.types import KernelName

#: The hand-coded chain4 call tables at dims (2, 3, 5, 7, 11):
#: (name, [(kernel, dims, reads_previous)]).
CHAIN4_EXPECTED = (
    ("chain4-1:A(B(CD))",
     [("gemm", (5, 11, 7), False), ("gemm", (3, 11, 5), True),
      ("gemm", (2, 11, 3), True)]),
    ("chain4-2:A((BC)D)",
     [("gemm", (3, 7, 5), False), ("gemm", (3, 11, 7), True),
      ("gemm", (2, 11, 3), True)]),
    ("chain4-3:(AB)(CD)/left-first",
     [("gemm", (2, 5, 3), False), ("gemm", (5, 11, 7), False),
      ("gemm", (2, 11, 5), True)]),
    ("chain4-3:(AB)(CD)/right-first",
     [("gemm", (5, 11, 7), False), ("gemm", (2, 5, 3), False),
      ("gemm", (2, 11, 5), True)]),
    ("chain4-4:(A(BC))D",
     [("gemm", (3, 7, 5), False), ("gemm", (2, 7, 3), True),
      ("gemm", (2, 11, 7), True)]),
    ("chain4-5:((AB)C)D",
     [("gemm", (2, 5, 3), False), ("gemm", (2, 7, 5), True),
      ("gemm", (2, 11, 7), True)]),
)

#: The hand-coded aatb call tables at dims (2, 3, 5).
AATB_EXPECTED = (
    ("aatb-1:syrk+symm",
     [("syrk", (2, 3), False), ("symm", (2, 5), True)]),
    ("aatb-2:syrk+copy+gemm",
     [("syrk", (2, 3), False), ("gemm", (2, 5, 2), True)]),
    ("aatb-3:gemm+gemm",
     [("gemm", (2, 2, 3), False), ("gemm", (2, 5, 2), True)]),
    ("aatb-4:gemm+symm",
     [("gemm", (2, 2, 3), False), ("symm", (2, 5), True)]),
    ("aatb-5:gemm+gemm-right",
     [("gemm", (3, 5, 2), False), ("gemm", (2, 5, 3), True)]),
)

#: Pre-refactor quick-scale study payload digests (seed 0, paper box).
PAYLOAD_SHA256 = {
    "chain4": "8b746c94b2bd6485177f980e500570ad939162b0db74a7dba77509e29465f9a7",
    "aatb": "e1cdf267c9add45efc29bc62fa13cec71c938521aec8f0a54b727c5ccd984049",
}

#: Hand-derived FLOP polynomials of the paper's five aatb algorithms.
AATB_POLYS = {
    "aatb-1:syrk+symm": "d0^2*d1 + 2*d0^2*d2 + d0*d1",
    "aatb-2:syrk+copy+gemm": "d0^2*d1 + 2*d0^2*d2 + d0*d1",
    "aatb-3:gemm+gemm": "2*d0^2*d1 + 2*d0^2*d2",
    "aatb-4:gemm+symm": "2*d0^2*d1 + 2*d0^2*d2",
    "aatb-5:gemm+gemm-right": "4*d0*d1*d2",
}


@pytest.mark.parametrize(
    "expression_name,dims,expected",
    [("chain4", (2, 3, 5, 7, 11), CHAIN4_EXPECTED),
     ("aatb", (2, 3, 5), AATB_EXPECTED)],
)
def test_generated_names_and_calls_match_hand_coded(
    expression_name, dims, expected
):
    algorithms = get_expression(expression_name).algorithms()
    assert [a.name for a in algorithms] == [name for name, _ in expected]
    for algorithm, (_, calls) in zip(algorithms, expected):
        got = [
            (call.kernel.value, call.dims, call.reads_previous)
            for call in algorithm.kernel_calls(dims)
        ]
        assert got == calls, algorithm.name


def test_aatb_copy_note_preserved():
    algorithms = {a.name: a for a in get_expression("aatb").algorithms()}
    calls = algorithms["aatb-2:syrk+copy+gemm"].kernel_calls((2, 3, 5))
    assert calls[0].kernel is KernelName.SYRK
    assert calls[0].note == "then copy to full"


def test_aatb_flop_polynomials_match_hand_derivation():
    for algorithm in get_expression("aatb").algorithms():
        poly = flop_polynomial(algorithm)
        assert poly.render(("d0", "d1", "d2")) == AATB_POLYS[algorithm.name]


@pytest.mark.parametrize("scheduler", ["scheduled", "unscheduled"])
@pytest.mark.parametrize("mode", ["codegen", "interpreter"])
@pytest.mark.parametrize("expression_name", sorted(PAYLOAD_SHA256))
def test_quick_study_payloads_byte_identical_to_pre_refactor(
    expression_name, mode, scheduler, monkeypatch
):
    # The generated batch evaluators (repro.expressions.codegen), the
    # plan scheduler (repro.expressions.scheduler), and their
    # interpreted/unscheduled fallbacks must all hit the *same*
    # pre-refactor digest: both layers are pure perf optimisations,
    # never a semantic change.  Under the default machine schedule the
    # scheduler only fuses/reuses buffers and collapses measurement
    # passes — all bit-preserving — so the payload stays byte-identical
    # with it on or off.
    if mode == "interpreter":
        monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
    else:
        monkeypatch.delenv("REPRO_NO_CODEGEN", raising=False)
    if scheduler == "unscheduled":
        monkeypatch.setenv("REPRO_NO_SCHEDULER", "1")
    else:
        monkeypatch.delenv("REPRO_NO_SCHEDULER", raising=False)
    key = StudyKey("quick", 0, expression_name)
    config = FigureConfig(scale="quick", seed=0)
    text = encode_study(key, *compute_study_results(config, expression_name))
    digest = hashlib.sha256(text.encode()).hexdigest()
    assert digest == PAYLOAD_SHA256[expression_name]
