"""Selection service: LRU, engine, micro-batching, HTTP front end.

The load-bearing promises: batched selection is index-identical to
per-request selection, the LRU is capacity-bounded with honest
counters, and the service keeps answering when its study store is
cold, corrupt, or unreachable.
"""

import asyncio
import json

import pytest

from repro.figures.cache import JsonDirectoryStore, StudyKey
from repro.service import (
    LruCache,
    SelectionBatcher,
    SelectionEngine,
    SelectionError,
    SelectionService,
)

DIMS = [
    [100, 200, 300],
    [50, 60, 70],
    [800, 100, 900],
    [1200, 1200, 1200],
    [24, 1400, 24],
]


@pytest.fixture(scope="module")
def engine():
    # Store-less: studies compute locally on first use, then sit in
    # the LRU for the rest of the module.
    return SelectionEngine(scale="quick", seed=0)


# ----------------------------------------------------------------------
# LRU
# ----------------------------------------------------------------------


def test_lru_evicts_least_recently_used_and_counts():
    lru = LruCache(2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # touch: "b" is now the coldest
    lru.put("c", 3)  # evicts "b"
    assert "b" not in lru and "a" in lru and "c" in lru
    assert lru.get("b") is None
    assert lru.keys() == ("a", "c")
    assert lru.stats() == {
        "capacity": 2,
        "size": 2,
        "hits": 1,
        "misses": 1,
        "evictions": 1,
    }
    lru.clear()
    assert len(lru) == 0


def test_lru_refresh_does_not_evict():
    lru = LruCache(2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("a", 10)  # refresh, not insert
    assert lru.stats()["evictions"] == 0
    assert lru.get("a") == 10 and lru.get("b") == 2


def test_lru_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        LruCache(0)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


def test_engine_selects_and_annotates(engine):
    selection = engine.select("aatb", [100, 200, 300])
    assert selection.expression == "aatb"
    assert 0 <= selection.algorithm_index < selection.n_algorithms
    assert selection.discriminant == "hybrid"
    assert selection.study_source in ("computed", "lru")
    assert selection.in_known_anomaly_region in (True, False)
    payload = selection.to_payload()
    assert payload["algorithm"]["name"] == selection.algorithm_name
    assert payload["dims"] == [100, 200, 300]


def test_engine_batch_is_index_identical_to_per_request(engine):
    for discriminant in ("min-flops", "profiled-time", "hybrid"):
        batched = engine.select_many("aatb", DIMS, discriminant=discriminant)
        singles = [
            engine.select("aatb", dims, discriminant=discriminant)
            for dims in DIMS
        ]
        assert [s.algorithm_index for s in batched] == [
            s.algorithm_index for s in singles
        ]


def test_engine_second_study_access_is_an_lru_hit(engine):
    engine.select("aatb", [100, 200, 300])
    assert engine.select("aatb", [90, 80, 70]).study_source == "lru"
    assert engine.stats()["lru"]["hits"] >= 1


def test_engine_annotate_false_skips_study_lookup(engine):
    selection = engine.select("aatb", [100, 200, 300], annotate=False)
    assert selection.study_source == "skipped"
    assert selection.in_known_anomaly_region is None


@pytest.mark.parametrize(
    "expression,dims,fragment",
    [
        ("not-an-expression", [1, 2, 3], "unknown expression"),
        ("aatb", [100, 200], "takes 3 dims"),
        ("aatb", [100, 200, "many"], "dims must be integers"),
        ("aatb", [100, 200, -1], "dims must be positive"),
        ("aatb", "100x200x300", "list of integers"),
        ("", [1, 2, 3], "needs an 'expression'"),
    ],
)
def test_engine_rejects_bad_requests(engine, expression, dims, fragment):
    with pytest.raises(SelectionError) as excinfo:
        engine.select(expression, dims)
    assert fragment in str(excinfo.value)


def test_engine_rejects_unknown_discriminant(engine):
    with pytest.raises(SelectionError) as excinfo:
        engine.select("aatb", [1, 2, 3], discriminant="oracle")
    assert "unknown discriminant" in str(excinfo.value)


def test_engine_reads_through_store_then_lru(tmp_path):
    store = JsonDirectoryStore(tmp_path)
    first = SelectionEngine(scale="quick", seed=0, store=store)
    selection = first.select("aatb", [100, 200, 300])
    assert selection.study_source == "computed"
    # The computed study was written back...
    assert store.load(StudyKey("quick", 0, "aatb")) is not None
    # ...so a fresh engine over the same store reads it instead of
    # recomputing, and picks identically.
    fresh = SelectionEngine(scale="quick", seed=0, store=store)
    again = fresh.select("aatb", [100, 200, 300])
    assert again.study_source == "store"
    assert again.algorithm_index == selection.algorithm_index
    assert fresh.select("aatb", [1, 2, 3]).study_source == "lru"


def test_engine_survives_a_broken_store():
    class BrokenStore:
        kind = "broken"

        def load(self, key):
            raise OSError("store down")

        def save(self, key, *results):
            raise OSError("store down")

    engine = SelectionEngine(scale="quick", seed=0, store=BrokenStore())
    selection = engine.select("aatb", [100, 200, 300])
    assert selection.study_source == "computed"
    assert selection.in_known_anomaly_region in (True, False)
    stats = engine.stats()
    assert stats["store"]["errors"] >= 2  # the load and the write-back
    # Selection itself never degrades with the store.
    assert engine.select("aatb", [1, 2, 3]).study_source == "lru"


def test_engine_warm_preloads_the_lru(tmp_path):
    engine = SelectionEngine(
        scale="quick", seed=0, store=JsonDirectoryStore(tmp_path)
    )
    assert engine.warm(["aatb"]) == ["computed"]
    assert engine.warm(["aatb"]) == ["lru"]


def test_engine_validates_configuration():
    with pytest.raises(ValueError):
        SelectionEngine(scale="warm")
    with pytest.raises(ValueError):
        SelectionEngine(box="narrow_box")
    with pytest.raises(ValueError):
        SelectionEngine(default_discriminant="oracle")


# ----------------------------------------------------------------------
# Micro-batching
# ----------------------------------------------------------------------


def test_batcher_coalesces_concurrent_requests(engine):
    batcher = SelectionBatcher(engine)

    async def run():
        return await asyncio.gather(
            *(batcher.select("aatb", dims) for dims in DIMS)
        )

    results = asyncio.run(run())
    singles = [engine.select("aatb", dims) for dims in DIMS]
    assert [r.algorithm_index for r in results] == [
        s.algorithm_index for s in singles
    ]
    # All five awaited concurrently → one select_batch call.
    assert batcher.batches == 1
    assert batcher.max_batch_seen == len(DIMS)
    assert batcher.stats()["coalesced"] == len(DIMS) - 1


def test_batcher_sequential_requests_run_alone(engine):
    batcher = SelectionBatcher(engine)

    async def run():
        out = []
        for dims in DIMS[:2]:
            out.append(await batcher.select("aatb", dims))
        return out

    results = asyncio.run(run())
    assert len(results) == 2
    assert batcher.batches == 2
    assert batcher.max_batch_seen == 1


def test_batcher_max_batch_drains_eagerly(engine):
    batcher = SelectionBatcher(engine, max_batch=2)

    async def run():
        return await asyncio.gather(
            *(batcher.select("aatb", dims) for dims in DIMS[:4])
        )

    results = asyncio.run(run())
    assert len(results) == 4
    assert batcher.batches >= 2
    assert batcher.max_batch_seen <= 2


def test_batcher_propagates_request_errors(engine):
    batcher = SelectionBatcher(engine)

    async def run():
        return await asyncio.gather(
            batcher.select("aatb", [100, 200, 300]),
            batcher.select("not-an-expression", [1, 2, 3]),
            return_exceptions=True,
        )

    good, bad = asyncio.run(run())
    assert good.algorithm_index >= 0
    assert isinstance(bad, SelectionError)


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------


async def _request(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except OSError:
        pass
    head_text, _, body_text = raw.partition(b"\r\n\r\n")
    return int(head_text.split()[1]), json.loads(body_text)


def test_http_service_end_to_end(engine):
    async def run():
        service = SelectionService(engine, port=0)
        await service.start()
        port = service.port
        out = {
            "health": await _request(port, "GET", "/healthz"),
            "select": await _request(
                port,
                "POST",
                "/select",
                {"expression": "aatb", "dims": [100, 200, 300]},
            ),
            "batch": await _request(
                port,
                "POST",
                "/select_batch",
                {"expression": "aatb", "dims": DIMS},
            ),
            "unknown_expr": await _request(
                port,
                "POST",
                "/select",
                {"expression": "not-an-expression", "dims": [1, 2, 3]},
            ),
            "bad_json": await _request(port, "POST", "/select", "not a dict"),
            "not_found": await _request(port, "GET", "/nope"),
            "wrong_method": await _request(port, "GET", "/select"),
            "stats": await _request(port, "GET", "/stats"),
        }
        await service.stop()
        return out

    out = asyncio.run(run())
    assert out["health"] == (200, {"ok": True})

    status, payload = out["select"]
    assert status == 200
    expected = engine.select("aatb", [100, 200, 300])
    assert payload["algorithm"]["index"] == expected.algorithm_index
    assert payload["algorithm"]["name"] == expected.algorithm_name

    status, payload = out["batch"]
    assert status == 200
    singles = [engine.select("aatb", dims) for dims in DIMS]
    assert [s["algorithm"]["index"] for s in payload["selections"]] == [
        s.algorithm_index for s in singles
    ]

    assert out["unknown_expr"][0] == 400
    assert "unknown expression" in out["unknown_expr"][1]["error"]
    assert out["bad_json"][0] == 400
    assert out["not_found"][0] == 404
    assert out["wrong_method"][0] == 405

    status, stats = out["stats"]
    assert status == 200
    assert stats["requests"]["select"] == 1
    assert stats["requests"]["select_batch"] == 1
    assert stats["requests"]["health"] == 1
    assert stats["requests"]["errors"] == 4
    assert stats["batch"]["requests"] >= 1
    assert stats["lru"]["capacity"] >= 1
    assert "selections_served" in stats


def test_http_concurrent_selects_coalesce_into_one_batch(engine):
    async def run():
        service = SelectionService(engine, port=0)
        await service.start()
        results = await asyncio.gather(
            *(
                _request(
                    service.port,
                    "POST",
                    "/select",
                    {"expression": "aatb", "dims": dims},
                )
                for dims in DIMS
            )
        )
        seen = service.batcher.max_batch_seen
        await service.stop()
        return results, seen

    results, max_batch_seen = asyncio.run(run())
    singles = [engine.select("aatb", dims) for dims in DIMS]
    assert [payload["algorithm"]["index"] for _status, payload in results] == [
        s.algorithm_index for s in singles
    ]
    # The concurrent requests actually shared select_batch calls.
    assert max_batch_seen > 1


def test_http_keep_alive_serves_multiple_requests(engine):
    async def run():
        service = SelectionService(engine, port=0)
        await service.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", service.port
        )
        statuses = []
        for _ in range(2):
            body = json.dumps(
                {"expression": "aatb", "dims": [100, 200, 300]}
            ).encode()
            writer.write(
                (
                    "POST /select HTTP/1.1\r\nHost: test\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
            status_line = await reader.readline()
            statuses.append(int(status_line.split()[1]))
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n"):
                    break
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":")[1])
            await reader.readexactly(length)
        writer.close()
        await service.stop()
        return statuses

    assert asyncio.run(run()) == [200, 200]


def test_http_stats_carries_a_resilience_section(engine):
    async def run():
        service = SelectionService(
            engine, port=0, deadline=2.5, max_inflight=8
        )
        await service.start()
        status, stats = await _request(service.port, "GET", "/stats")
        await service.stop()
        return status, stats

    status, stats = asyncio.run(run())
    assert status == 200
    resilience = stats["resilience"]
    assert resilience["deadline_seconds"] == 2.5
    assert resilience["max_inflight"] == 8
    assert resilience["draining"] is False
    assert resilience["shed"] == 0
    assert resilience["deadline_exceeded"] == 0
    assert resilience["faults"] == {}  # no active fault plan


def test_http_stats_schema_end_to_end(engine):
    """GET /stats exposes every subsystem's counters, typed.

    The response is the service's observability contract: the
    codegen, scheduler, resilience and ablation sections must all be
    present with the right shapes — a dashboard (or the chaos drill)
    reading one of these keys must never KeyError after a refactor.
    """

    async def run():
        service = SelectionService(engine, port=0)
        await service.start()
        status, stats = await _request(service.port, "GET", "/stats")
        await service.stop()
        return status, stats

    status, stats = asyncio.run(run())
    assert status == 200

    assert isinstance(stats["selections_served"], int)
    engine_section = stats["engine"]
    assert engine_section["scale"] in ("quick", "full")
    assert isinstance(engine_section["seed"], int)
    assert isinstance(engine_section["box"], str)
    assert isinstance(engine_section["discriminants"], list)

    codegen = stats["codegen"]
    assert isinstance(codegen["enabled"], bool)
    for counter in ("plans_compiled", "plan_cache_hits"):
        assert isinstance(codegen[counter], int)

    scheduler = stats["scheduler"]
    assert isinstance(scheduler["enabled"], bool)
    for counter in ("plans_scheduled", "fused_adds", "plans_reordered"):
        assert isinstance(scheduler[counter], int)

    ablation = stats["ablation"]
    assert isinstance(ablation["components"], int)
    assert ablation["components"] == len(ablation["component_names"])
    assert all(isinstance(n, str) for n in ablation["component_names"])
    assert set(ablation["inert_components"]) <= set(
        ablation["component_names"]
    )
    assert isinstance(ablation["study_variants"], list)
    assert "default" in ablation["study_variants"]
    assert isinstance(ablation["detectors"], list)
    assert isinstance(ablation["scheduler_enabled"], bool)
    assert isinstance(ablation["codegen_enabled"], bool)

    resilience = stats["resilience"]
    assert isinstance(resilience["draining"], bool)
    assert isinstance(resilience["shed"], int)

    assert isinstance(stats["lru"]["capacity"], int)
    assert "kind" in stats["store"]
    assert isinstance(stats["requests"]["errors"], int)


def test_engine_stats_surface_store_resilience_counters():
    class ResilientStore:
        kind = "remote"

        def load(self, key):
            return None

        def save(self, key, *results):
            pass

        def resilience_stats(self):
            return {"retries": 3, "breaker": {"state": "closed"}}

    engine = SelectionEngine(scale="quick", seed=0, store=ResilientStore())
    store_stats = engine.stats()["store"]
    assert store_stats["resilience"]["retries"] == 3
    assert store_stats["resilience"]["breaker"]["state"] == "closed"


def test_http_deadline_overrun_answers_503(engine):
    async def run():
        service = SelectionService(engine, port=0, deadline=0.05)
        await service.start()

        async def slow(*args, **kwargs):
            await asyncio.sleep(1.0)

        service.batcher.select = slow
        status, payload = await _request(
            service.port,
            "POST",
            "/select",
            {"expression": "aatb", "dims": [100, 200, 300]},
        )
        stats = service.stats()
        await service.stop()
        return status, payload, stats

    status, payload, stats = asyncio.run(run())
    assert status == 503
    assert "deadline exceeded" in payload["error"]
    assert "50 ms" in payload["error"]
    assert stats["requests"]["deadline_exceeded"] == 1
    assert stats["resilience"]["deadline_exceeded"] == 1


def test_http_deadline_spares_stats_and_healthz(engine):
    # Observability routes are exempt from the overload policy: they
    # must answer exactly when the service is struggling.
    async def run():
        service = SelectionService(
            engine, port=0, deadline=0.05, max_inflight=1
        )
        await service.start()
        health = await _request(service.port, "GET", "/healthz")
        stats = await _request(service.port, "GET", "/stats")
        await service.stop()
        return health, stats

    health, stats = asyncio.run(run())
    assert health == (200, {"ok": True})
    assert stats[0] == 200


def test_http_max_inflight_sheds_excess_load(engine):
    async def run():
        service = SelectionService(engine, port=0, max_inflight=1)
        await service.start()

        async def slow(*args, **kwargs):
            await asyncio.sleep(0.3)
            return engine.select("aatb", [100, 200, 300])

        service.batcher.select = slow
        results = await asyncio.gather(
            *(
                _request(
                    service.port,
                    "POST",
                    "/select",
                    {"expression": "aatb", "dims": [100, 200, 300]},
                )
                for _ in range(3)
            )
        )
        stats = service.stats()
        await service.stop()
        return results, stats

    results, stats = asyncio.run(run())
    statuses = sorted(status for status, _payload in results)
    # One slow request holds the slot; the others shed with 503.
    assert statuses == [200, 503, 503]
    shed_payloads = [p for s, p in results if s == 503]
    assert all("overloaded" in p["error"] for p in shed_payloads)
    assert stats["requests"]["shed"] == 2
    assert stats["resilience"]["shed"] == 2


def test_http_drain_stops_accepting_and_reports_final_stats(engine):
    async def run():
        service = SelectionService(engine, port=0)
        await service.start()
        port = service.port
        status, _payload = await _request(
            port,
            "POST",
            "/select",
            {"expression": "aatb", "dims": [100, 200, 300]},
        )
        final = await service.drain()
        refused = False
        try:
            await asyncio.open_connection("127.0.0.1", port)
        except OSError:
            refused = True
        return status, final, refused

    status, final, refused = asyncio.run(run())
    assert status == 200
    assert final["resilience"]["draining"] is True
    assert final["resilience"]["inflight"] == 0
    assert final["requests"]["select"] == 1
    assert refused


def test_service_validates_overload_configuration(engine):
    with pytest.raises(ValueError):
        SelectionService(engine, deadline=0.0)
    with pytest.raises(ValueError):
        SelectionService(engine, max_inflight=0)


def test_http_malformed_request_line_is_a_400(engine):
    async def run():
        service = SelectionService(engine, port=0)
        await service.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", service.port
        )
        writer.write(b"GARBAGE\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await service.stop()
        return raw

    raw = asyncio.run(run())
    assert raw.startswith(b"HTTP/1.1 400 ")
