"""Expression IR + compiler invariants (ISSUE 4 spec).

Two properties must hold for *every* registered expression, hand-coded
or generated:

* the symbolic FLOP count (``flops`` over Poly dims) equals the Poly
  sum of the individual kernel calls' FLOP formulas — the plan is the
  single source of truth for analysis and measurement alike;
* every generated executor agrees numerically with the expression's
  NumPy reference across random instances.
"""

import numpy as np
import pytest

from repro.core.symbolic import Poly, flop_polynomial
from repro.expressions import blas
from repro.expressions.compiler import (
    CompiledExpression,
    compile_product_plans,
    default_plan_namer,
)
from repro.expressions.ir import (
    AddExpr,
    Leaf,
    ProductExpr,
    SumExpr,
    chain_leaves,
    expr_n_dims,
    operand_table,
    transpose_signature,
)
from repro.expressions.registry import get_expression
from repro.kernels.flops import kernel_flops
from repro.kernels.types import KernelName

#: Every registered family (the compiler-generated ones included).
REGISTERED = (
    "chain4", "aatb", "gram3", "tri4", "sum3", "addchain3", "solve3"
)


# ----------------------------------------------------------------------
# IR validation
# ----------------------------------------------------------------------


def test_product_requires_chaining_dims():
    a = Leaf(operand=0, rows=0, cols=1, label="A")
    bad = Leaf(operand=1, rows=2, cols=3, label="B")
    with pytest.raises(ValueError, match="chain"):
        ProductExpr((a, bad))
    with pytest.raises(ValueError, match="two factors"):
        ProductExpr((a,))


def test_symmetric_leaf_must_be_square():
    with pytest.raises(ValueError, match="square"):
        Leaf(operand=0, rows=0, cols=1, symmetric=True)


def test_sum_terms_must_share_result_shape():
    term1 = ProductExpr(chain_leaves([0, 1, 2]))
    term2 = ProductExpr(chain_leaves([0, 3, 3], first_operand=2))
    with pytest.raises(ValueError, match="result shape"):
        SumExpr((term1, term2))


def test_operand_table_rejects_inconsistent_shared_leaves():
    # Operand 0 used as d0×d1 in one leaf and d0×d2 in another.
    a1 = Leaf(operand=0, rows=0, cols=1, label="A")
    a2 = Leaf(operand=0, rows=1, cols=2, label="A")
    with pytest.raises(ValueError, match="disagree"):
        operand_table(ProductExpr((a1, a2)))


def test_transpose_signature_round_trips():
    a = Leaf(operand=0, rows=0, cols=1)
    sig = ("prod", a.signature(), ("leaf", 1, True))
    assert transpose_signature(transpose_signature(sig)) == sig
    # A symmetric leaf is its own transpose.
    s = Leaf(operand=0, rows=0, cols=0, symmetric=True, transposed=True)
    assert s.signature() == ("leaf", 0, False)


# ----------------------------------------------------------------------
# Compiler invariants over every registered expression
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", REGISTERED)
def test_symbolic_flops_equal_poly_sum_of_kernel_calls(name):
    expression = get_expression(name)
    n = expression.n_dims
    variables = tuple(Poly.variable(i, n) for i in range(n))
    for algorithm in expression.algorithms():
        total = Poly.constant(0, n)
        for call in algorithm.kernel_calls(variables):
            total = total + kernel_flops(call.kernel, call.dims)
        assert flop_polynomial(algorithm) == total, algorithm.name


@pytest.mark.parametrize("name", REGISTERED)
def test_symbolic_flops_evaluate_to_concrete_flops(name):
    expression = get_expression(name)
    rng = np.random.default_rng(3)
    for _ in range(3):
        instance = tuple(int(v) for v in rng.integers(2, 60, expression.n_dims))
        for algorithm in expression.algorithms():
            poly = flop_polynomial(algorithm)
            assert poly.evaluate(instance) == int(algorithm.flops(instance))


@pytest.mark.parametrize("name", REGISTERED)
def test_executors_match_reference(name):
    expression = get_expression(name)
    rng = np.random.default_rng(7)
    for round_seed in range(3):
        instance = tuple(int(v) for v in rng.integers(3, 48, expression.n_dims))
        operands = expression.make_operands(
            instance, np.random.default_rng(round_seed)
        )
        reference = expression.reference(operands)
        scale = float(np.max(np.abs(reference))) or 1.0
        for algorithm in expression.algorithms():
            actual = algorithm.execute(operands)
            deviation = float(np.max(np.abs(actual - reference))) / scale
            assert deviation < 1e-10, (algorithm.name, instance, deviation)


@pytest.mark.parametrize("name", REGISTERED)
def test_algorithm_names_unique_and_prefixed(name):
    algorithms = get_expression(name).algorithms()
    names = [a.name for a in algorithms]
    assert len(names) == len(set(names))
    assert all(n.startswith(f"{name}-") for n in names)


# ----------------------------------------------------------------------
# Rewrite passes on targeted IRs
# ----------------------------------------------------------------------


def _compiled(name, expr, **kwargs):
    return CompiledExpression(name, expr, **kwargs)


def test_cse_compiles_repeated_subproduct_once():
    # (AB)(AB): the two AB subproducts are the same value, so the
    # square tree lowers to two GEMMs, not three.
    leaves = (
        Leaf(operand=0, rows=0, cols=1, label="A"),
        Leaf(operand=1, rows=1, cols=0, label="B"),
        Leaf(operand=0, rows=0, cols=1, label="A"),
        Leaf(operand=1, rows=1, cols=0, label="B"),
    )
    square = _compiled("sqr", ProductExpr(leaves))
    by_label = {a.name: a for a in square.algorithms()}
    cse_name = "sqr-3:(AB)(AB)"
    assert cse_name in by_label  # no /left-first: schedules collapsed
    calls = by_label[cse_name].kernel_calls((5, 7))
    assert [c.kernel for c in calls] == [KernelName.GEMM, KernelName.GEMM]
    assert calls[0].dims == (5, 5, 7)   # M = A B once
    assert calls[1].dims == (5, 5, 5)   # M·M reuses it
    assert calls[1].reads_previous
    # Non-CSE trees spend three GEMMs; the executor still agrees.
    other = by_label["sqr-1:A(B(AB))"]
    assert len(other.kernel_calls((5, 7))) == 3
    rng = np.random.default_rng(0)
    operands = square.make_operands((6, 4), rng)
    reference = square.reference(operands)
    for algorithm in square.algorithms():
        np.testing.assert_allclose(
            algorithm.execute(operands), reference, rtol=1e-10, atol=1e-9
        )


def test_symmetric_leaf_unlocks_symm_rewrite():
    # S B with S symmetric: the compiler offers SYMM first, GEMM as
    # the unrewritten variant.
    leaves = (
        Leaf(operand=0, rows=0, cols=0, symmetric=True, label="S"),
        Leaf(operand=1, rows=0, cols=1, label="B"),
    )
    expr = _compiled("symprod", ProductExpr(leaves))
    names = [a.name for a in expr.algorithms()]
    assert names == ["symprod-1:SB/symm", "symprod-1:SB/gemm"]
    kernels = [
        a.kernel_calls((4, 6))[0].kernel for a in expr.algorithms()
    ]
    assert kernels == [KernelName.SYMM, KernelName.GEMM]
    # Operand generation symmetrises S; both executors agree.
    operands = expr.make_operands((5, 3), np.random.default_rng(1))
    np.testing.assert_allclose(operands[0], operands[0].T)
    reference = expr.reference(operands)
    for algorithm in expr.algorithms():
        np.testing.assert_allclose(
            algorithm.execute(operands), reference, rtol=1e-10, atol=1e-9
        )


def test_syrk_rewrite_on_internal_product():
    # (AB)(BᵀAᵀ) = M Mᵀ with M = AB internal: SYRK applies to a
    # computed value, not just to leaves.
    leaves = (
        Leaf(operand=0, rows=0, cols=1, label="A"),
        Leaf(operand=1, rows=1, cols=2, label="B"),
        Leaf(operand=1, rows=2, cols=1, transposed=True, label="B"),
        Leaf(operand=0, rows=1, cols=0, transposed=True, label="A"),
    )
    plans = compile_product_plans(
        "mmt", ProductExpr(leaves), trees=[((0, 1), (2, 3))]
    )
    tokens = {plan.kernel_tokens for plan in plans}
    # M once, SYRK over it, and the root triangle copied to the full
    # result (the copy is FLOP-free); the dead BᵀAᵀ subtree is gone.
    assert ("gemm", "syrk", "copy") in tokens
    syrk_plan = next(p for p in plans if "syrk" in p.kernel_tokens)
    assert [s.kernel for s in syrk_plan.steps] == [
        KernelName.GEMM, KernelName.SYRK,
    ]
    expr = _compiled("mmt", ProductExpr(leaves), trees=[((0, 1), (2, 3))])
    operands = expr.make_operands((4, 5, 6), np.random.default_rng(2))
    reference = expr.reference(operands)
    for algorithm in expr.algorithms():
        np.testing.assert_allclose(
            algorithm.execute(operands), reference, rtol=1e-10, atol=1e-9
        )


def test_syrk_trans_blas_wrapper():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((5, 3))
    np.testing.assert_allclose(
        np.tril(blas.syrk_lower(a, trans=True)), np.tril(a.T @ a)
    )
    np.testing.assert_allclose(
        np.tril(blas.syrk_lower(a)), np.tril(a @ a.T)
    )


def test_sum_lowering_folds_accumulation():
    expression = get_expression("sum2")
    (algorithm,) = expression.algorithms()
    calls = algorithm.kernel_calls((3, 4, 5, 6))
    assert [c.kernel for c in calls] == [KernelName.GEMM, KernelName.GEMM]
    assert calls[0].dims == (3, 5, 4)
    assert calls[1].dims == (3, 5, 6)
    # The accumulating call reads the running sum left by call 1.
    assert calls[1].reads_previous
    assert "accumulates" in calls[1].note
    # All plans of a two-term 2-chain sum tie in FLOPs — degenerate,
    # which is why sum3 (association freedom) is the registered default.
    assert int(algorithm.flops((3, 4, 5, 6))) == 2 * 3 * 5 * 4 + 2 * 3 * 5 * 6


def test_sum_rejects_single_factor_terms():
    term = ProductExpr(chain_leaves([0, 1, 2]))
    with pytest.raises(ValueError, match="two factors"):
        SumExpr((term, ProductExpr(chain_leaves([0, 2], first_operand=2))))


def test_default_namer_shape():
    plans = compile_product_plans(
        "gram3",
        ProductExpr(
            (
                Leaf(operand=0, rows=1, cols=0, transposed=True, label="A"),
                Leaf(operand=0, rows=0, cols=1, label="A"),
                Leaf(operand=1, rows=1, cols=2, label="B"),
            )
        ),
    )
    names = [default_plan_namer(p, i) for i, p in enumerate(plans, 1)]
    assert names == [
        "gram3-1:A'(AB)",
        "gram3-2:(A'A)B/syrk+symm",
        "gram3-2:(A'A)B/syrk+copy+gemm",
        "gram3-2:(A'A)B/gemm+gemm",
        "gram3-2:(A'A)B/gemm+symm",
    ]


def test_gram3_mirrors_aatb_structure():
    gram = get_expression("gram3")
    calls = {
        a.name: a.kernel_calls((3, 5, 7)) for a in gram.algorithms()
    }
    syrk_symm = calls["gram3-2:(A'A)B/syrk+symm"]
    assert syrk_symm[0].kernel is KernelName.SYRK
    assert syrk_symm[0].dims == (5, 3)  # AᵀA is d1×d1, contracted over d0
    assert syrk_symm[1].kernel is KernelName.SYMM
    assert syrk_symm[1].dims == (5, 7)
    copied = calls["gram3-2:(A'A)B/syrk+copy+gemm"]
    assert copied[0].note == "then copy to full"


@pytest.mark.parametrize("name", ("gram3", "tri4", "sum3", "addchain3", "solve3"))
def test_new_families_classify_end_to_end(name):
    """ISSUE-4/5 acceptance: every generated family is classifiable and
    anomaly-bearing at quick scale (full pipeline, paper machine)."""
    from repro.figures.common import FigureConfig, compute_study_results

    search, regions, prediction, confusion = compute_study_results(
        FigureConfig(scale="quick", seed=0), name
    )
    assert search.anomalies
    assert regions.regions
    assert confusion.total > 0


def test_expr_n_dims_and_plan_dims_are_indices():
    expression = get_expression("sum3")
    assert expr_n_dims(expression.ir) == expression.n_dims == 6
    for plan in expression.plans():
        for step in plan.steps:
            assert all(0 <= i < 6 for i in step.dims)


# ----------------------------------------------------------------------
# ADD / TRSM lowering (ISSUE 5)
# ----------------------------------------------------------------------


def test_add_factor_materialises_before_its_consumer():
    # A (B + C): the ADD call lands immediately before the GEMM that
    # consumes it, and the GEMM reads its freshly-written output.
    expression = get_expression("addchain2")
    (algorithm,) = expression.algorithms()
    calls = algorithm.kernel_calls((3, 5, 7))
    assert [(c.kernel.value, c.dims) for c in calls] == [
        ("add", (5, 7)),
        ("gemm", (3, 7, 5)),
    ]
    assert not calls[0].reads_previous
    assert calls[1].reads_previous
    # FLOPs: one elementwise add + one GEMM, exactly.
    assert int(algorithm.flops((3, 5, 7))) == 5 * 7 + 2 * 3 * 7 * 5


def test_add_factor_repeated_across_terms_is_summed_once():
    # (B+C) appears in both terms: one ADD, two GEMM-consumers.
    add = AddExpr(
        (
            Leaf(operand=1, rows=1, cols=2, label="B"),
            Leaf(operand=2, rows=1, cols=2, label="C"),
        )
    )
    term1 = ProductExpr((Leaf(operand=0, rows=0, cols=1, label="A"), add))
    term2 = ProductExpr((Leaf(operand=3, rows=0, cols=1, label="D"), add))
    expr = _compiled("shared", SumExpr((term1, term2)))
    (algorithm,) = expr.algorithms()
    kernels = [c.kernel for c in algorithm.kernel_calls((3, 5, 7))]
    assert kernels == [KernelName.ADD, KernelName.GEMM, KernelName.GEMM]
    rng = np.random.default_rng(5)
    operands = expr.make_operands((4, 5, 6), rng)
    np.testing.assert_allclose(
        algorithm.execute(operands), expr.reference(operands),
        rtol=1e-10, atol=1e-9,
    )


def test_standalone_add_expression_lowers_to_add_chain():
    expr = _compiled(
        "matsum",
        AddExpr(
            tuple(
                Leaf(operand=i, rows=0, cols=1, label="ABC"[i])
                for i in range(3)
            )
        ),
    )
    (algorithm,) = expr.algorithms()
    calls = algorithm.kernel_calls((4, 6))
    assert [c.kernel for c in calls] == [KernelName.ADD, KernelName.ADD]
    assert calls[1].reads_previous
    assert int(algorithm.flops((4, 6))) == 2 * 4 * 6
    operands = expr.make_operands((5, 3), np.random.default_rng(1))
    np.testing.assert_allclose(
        algorithm.execute(operands), expr.reference(operands),
        rtol=1e-10, atol=1e-9,
    )


def test_add_expr_validation():
    a = Leaf(operand=0, rows=0, cols=1, label="A")
    with pytest.raises(ValueError, match="two leaves"):
        AddExpr((a,))
    with pytest.raises(ValueError, match="share a shape"):
        AddExpr((a, Leaf(operand=1, rows=1, cols=2, label="B")))
    with pytest.raises(ValueError, match="summand"):
        AddExpr(
            (
                Leaf(operand=0, rows=0, cols=0, triangular=True),
                Leaf(operand=1, rows=0, cols=0),
            )
        )


def test_triangular_leaf_validation():
    with pytest.raises(ValueError, match="square"):
        Leaf(operand=0, rows=0, cols=1, triangular=True)
    with pytest.raises(ValueError, match="transposed or symmetric"):
        Leaf(operand=0, rows=0, cols=0, triangular=True, transposed=True)
    # A triangular-inverse leaf must lead its product.
    with pytest.raises(ValueError, match="first factor"):
        ProductExpr(
            (
                Leaf(operand=0, rows=0, cols=0, label="A"),
                Leaf(operand=1, rows=0, cols=0, triangular=True, label="L"),
            )
        )


def test_solve_family_lowers_to_trsm_at_every_boundary():
    # solve3: the two trees solve at different boundaries, so the TRSM
    # right-hand-side count — and the FLOP count — differ per plan.
    expression = get_expression("solve3")
    calls = {
        a.name: [
            (c.kernel.value, c.dims) for c in a.kernel_calls((3, 5, 7))
        ]
        for a in expression.algorithms()
    }
    assert calls["solve3-1:inv(L)(AB)"] == [
        ("gemm", (3, 7, 5)), ("trsm", (3, 7)),
    ]
    assert calls["solve3-2:(inv(L)A)B"] == [
        ("trsm", (3, 5)), ("gemm", (3, 7, 5)),
    ]
    # TRSM has no kernel variant: one plan per tree.
    assert len(expression.algorithms()) == 2
