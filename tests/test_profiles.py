"""Profile interpolation and confusion-matrix arithmetic."""

import pytest

from repro.analysis.confusion import ConfusionMatrix
from repro.backends.simulated import SimulatedBackend
from repro.core.discriminants import (
    FlopsProfileHybrid,
    MinFlopsDiscriminant,
)
from repro.expressions.registry import get_expression
from repro.kernels.types import KernelName
from repro.machine.machine import MachineModel
from repro.machine.spec import xeon_silver_4210_like
from repro.profiles.benchmark import build_all_profiles, build_profile

GRID = (32, 64, 128, 256, 512, 1024)


def _noise_free_backend():
    return SimulatedBackend(MachineModel(xeon_silver_4210_like(), reps=1))


def test_profile_is_exact_on_grid_points():
    backend = _noise_free_backend()
    profile = build_profile(backend, KernelName.SYRK, (GRID, GRID))
    assert profile.n_points == len(GRID) ** 2
    for n in (32, 256, 1024):
        for k in (64, 512):
            assert profile.predict((n, k)) == pytest.approx(
                backend.time_kernel(KernelName.SYRK, (n, k))
            )


def test_profile_interpolates_between_grid_points():
    backend = _noise_free_backend()
    profile = build_profile(backend, KernelName.GEMM, (GRID,) * 3)
    dims = (96, 192, 384)  # off-grid everywhere
    predicted = profile.predict(dims)
    actual = backend.time_kernel(KernelName.GEMM, dims)
    assert predicted == pytest.approx(actual, rel=0.35)
    # And clamps outside the grid instead of extrapolating wildly.
    assert profile.predict((2000, 2000, 2000)) == pytest.approx(
        profile.predict((1024, 1024, 1024))
    )


def test_hybrid_discriminant_shortlists_by_flops():
    backend = _noise_free_backend()
    aatb = get_expression("aatb")
    profiles = build_all_profiles(
        backend,
        axes_by_kernel={
            KernelName.GEMM: (GRID,) * 3,
            KernelName.SYRK: (GRID,) * 2,
            KernelName.SYMM: (GRID,) * 2,
        },
    )
    algorithms = aatb.algorithms()
    # Inside the anomalous region with the GEMM pair within the 1.5x
    # FLOP margin: min-FLOPs picks a SYRK-based algorithm, the hybrid
    # escapes to a GEMM-based one.
    instance = (92, 600, 600)
    min_flops_pick = MinFlopsDiscriminant().select(algorithms, instance)
    hybrid_pick = FlopsProfileHybrid(profiles, margin=0.5).select(
        algorithms, instance
    )
    assert "syrk" in algorithms[min_flops_pick].name
    assert algorithms[hybrid_pick].name.startswith("aatb-4")
    # Outside the margin (FLOP ratio 1.62 > 1.5) the hybrid must stay
    # with the FLOP-cheapest pair — it never buys >margin extra FLOPs.
    narrow = FlopsProfileHybrid(profiles, margin=0.5).select(
        algorithms, (92, 1095, 323)
    )
    assert narrow in (0, 1)
    # With zero margin the hybrid degenerates to best-of-cheapest-set.
    strict = FlopsProfileHybrid(profiles, margin=0.0).select(
        algorithms, instance
    )
    assert strict in (0, 1)


def test_confusion_matrix_arithmetic():
    matrix = ConfusionMatrix(
        true_positive=9, false_positive=1, false_negative=3, true_negative=37
    )
    assert matrix.total == 50
    assert matrix.actual_yes == 12
    assert matrix.predicted_yes == 10
    assert matrix.recall == pytest.approx(0.75)
    assert matrix.precision == pytest.approx(0.9)
    empty = ConfusionMatrix(0, 0, 0, 5)
    assert empty.recall == 1.0 and empty.precision == 1.0
    table = matrix.format_table("title")
    assert "title" in table and "75.0%" in table


def test_profile_time_ties_break_to_lowest_algorithm_index():
    """Guaranteed tie rule: equal profiled times → lowest index wins."""
    import numpy as np

    from repro.core.discriminants import ProfiledTimeDiscriminant
    from repro.profiles.benchmark import Profile

    # Constant-time profiles make every algorithm's predicted time
    # identical, so every selection is a pure tie.
    flat = {
        kernel: Profile(
            kernel=kernel,
            axes=((GRID[0], GRID[-1]),) * {"gemm": 3}.get(kernel.value, 2),
            times=np.full((2,) * {"gemm": 3}.get(kernel.value, 2), 1e-3),
        )
        for kernel in KernelName
    }
    aatb = get_expression("aatb")
    algorithms = aatb.algorithms()
    instances = [(92, 600, 600), (30, 40, 50), (1200, 1200, 1200)]

    profiled = ProfiledTimeDiscriminant(flat)
    for instance in instances:
        assert profiled.select(algorithms, instance) == 0
    assert profiled.select_batch(algorithms, instances) == [0, 0, 0]

    # The hybrid's tie lands on the lowest index *of the shortlist*:
    # with a wide-open margin that is algorithm 0, with margin 0 it is
    # the first FLOP-cheapest algorithm — in both the scalar and the
    # batch path.
    wide = FlopsProfileHybrid(flat, margin=100.0)
    strict = FlopsProfileHybrid(flat, margin=0.0)
    for instance in instances:
        assert wide.select(algorithms, instance) == 0
        first_cheapest = min(
            range(len(algorithms)),
            key=lambda i: (int(algorithms[i].flops(instance)), i),
        )
        assert strict.select(algorithms, instance) == first_cheapest
        assert strict.select_batch(algorithms, [instance]) == [first_cheapest]
    assert wide.select_batch(algorithms, instances) == [0, 0, 0]
