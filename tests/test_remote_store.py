"""The ``remote`` study store: wire round-trips and degradation.

The load-bearing promises: a study that crossed the wire is
byte-identical to one written by a local store (the server relays
canonical payload text opaquely), and an unreachable server is a miss
or a no-op — never a pipeline error.
"""

import asyncio
import json
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.figures.cache import StudyKey, make_store
from repro.runner.runner import run_study
from repro.service.remote import (
    MAX_FRAME_BYTES,
    RemoteStudyStore,
    StudyStoreServer,
    encode_frame,
    parse_address,
)

KEY = StudyKey(scale="quick", seed=0, expression="aatb", box="paper_box")


@pytest.fixture()
def served_store(tmp_path):
    """A StudyStoreServer over a json backing, on a live thread."""
    backing = make_store("json", tmp_path / "backing")
    loop = asyncio.new_event_loop()
    server = StudyStoreServer(backing)
    ready = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(5)
    yield server, backing
    # Let open connection handlers drain before tearing the loop down.
    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(5)
    asyncio.run_coroutine_threadsafe(asyncio.sleep(0.05), loop).result(5)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(5)
    loop.close()


def test_parse_address():
    assert parse_address("localhost:8765") == ("localhost", 8765)
    assert parse_address("10.0.0.2:80") == ("10.0.0.2", 80)
    for bad in ("localhost", ":8765", "host:", "host:eight"):
        with pytest.raises(ValueError):
            parse_address(bad)


def test_remote_round_trip_is_byte_identical(served_store):
    server, backing = served_store
    address = f"127.0.0.1:{server.port}"
    # Warm the store straight through the runner's remote kind — the
    # same plumbing `--store remote --cache-dir host:port` uses.
    assert run_study(KEY, "remote", address).status == "computed"
    assert run_study(KEY, "remote", address).status == "cached"
    client = make_store("remote", address)
    try:
        assert client.ping()
        over_the_wire = client.raw_payload(KEY)
        local = backing.raw_payload(KEY)
        assert over_the_wire is not None
        assert over_the_wire == local
        # And a decoded load round-trips to a usable study.
        study = client.load(KEY)
        assert study is not None and "search" in study
    finally:
        client.close()
    assert server.loads >= 2 and server.saves == 1


def test_remote_save_then_local_load(served_store):
    server, backing = served_store
    client = make_store("remote", f"127.0.0.1:{server.port}")
    try:
        client.save_text(KEY, "payload-sent-over-the-wire")
        assert backing.load_text(KEY) == "payload-sent-over-the-wire"
        assert client.load_text(KEY) == "payload-sent-over-the-wire"
    finally:
        client.close()


def test_unreachable_server_degrades_to_misses():
    # Port 1 is never listening; every operation degrades, none raise.
    store = RemoteStudyStore("127.0.0.1:1", timeout=0.5)
    assert store.ping() is False
    assert store.load_text(KEY) is None
    assert store.load(KEY) is None
    store.save_text(KEY, "dropped on the floor")
    store.close()


def test_run_study_computes_when_server_is_unreachable():
    # The service-degradation contract end-to-end: a runner pointed at
    # a dead store server still computes its study (it just cannot
    # persist it).
    outcome = run_study(KEY, "remote", "127.0.0.1:1")
    assert outcome.status == "computed"
    assert outcome.error == ""


def test_server_rejects_bad_requests_but_keeps_serving(served_store):
    server, _backing = served_store
    client = make_store("remote", f"127.0.0.1:{server.port}")
    try:
        assert client._request({"op": "explode"}) is None
        assert client._request({"op": "save", "key": {}, "payload": 7}) is None
        # The connection (and server) survived both rejections.
        assert client.ping()
    finally:
        client.close()
    assert server.errors >= 1


def test_client_reconnects_after_server_side_drop(served_store):
    server, _backing = served_store
    client = make_store("remote", f"127.0.0.1:{server.port}")
    try:
        assert client.ping()
        # Kill the client's socket out from under it; the next call
        # must reconnect transparently (one retry), not fail.
        client._sock.close()
        assert client.ping()
    finally:
        client.close()


def test_oversized_frames_are_refused_client_side():
    store = RemoteStudyStore("127.0.0.1:1", timeout=0.5)
    with pytest.raises(ValueError):
        encode_frame({"payload": "x" * (70 << 20)})
    store.close()


def _raw_connection(server) -> socket.socket:
    return socket.create_connection(("127.0.0.1", server.port), timeout=2)


def _read_frame(sock: socket.socket) -> dict:
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        assert chunk, "server closed before a full header"
        header += chunk
    (length,) = struct.unpack(">I", header)
    data = b""
    while len(data) < length:
        chunk = sock.recv(length - len(data))
        assert chunk, "server closed mid-frame"
        data += chunk
    return json.loads(data)


def _wait_for(predicate, timeout=2.0):
    """Poll for a server-side counter the loop updates asynchronously."""
    deadline = time.monotonic() + timeout
    while not predicate() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert predicate()


def test_server_survives_truncated_length_prefix(served_store):
    server, _backing = served_store
    with _raw_connection(server) as sock:
        sock.sendall(b"\x00\x01")  # 2 of the 4 header bytes, then gone
    _wait_for(lambda: server.malformed >= 1)
    # The accept loop survived: a well-behaved client still gets through.
    client = make_store("remote", f"127.0.0.1:{server.port}")
    try:
        assert client.ping()
    finally:
        client.close()


def test_server_survives_mid_frame_disconnect(served_store):
    server, _backing = served_store
    with _raw_connection(server) as sock:
        sock.sendall(struct.pack(">I", 100) + b"only ten b")
    _wait_for(lambda: server.malformed >= 1)
    client = make_store("remote", f"127.0.0.1:{server.port}")
    try:
        assert client.ping()
    finally:
        client.close()


def test_server_refuses_oversized_length_prefix_with_a_clear_error(
    served_store,
):
    server, _backing = served_store
    with _raw_connection(server) as sock:
        sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        response = _read_frame(sock)
        assert response["ok"] is False
        assert "exceeds" in response["error"]
        assert str(MAX_FRAME_BYTES) in response["error"]
        # The stream offset is unrecoverable: the server drops us.
        assert sock.recv(1) == b""
    assert server.oversized == 1
    client = make_store("remote", f"127.0.0.1:{server.port}")
    try:
        assert client.ping()
    finally:
        client.close()


def test_server_answers_non_json_and_non_object_payloads(served_store):
    server, _backing = served_store
    with _raw_connection(server) as sock:
        payload = b"this is not json"
        sock.sendall(struct.pack(">I", len(payload)) + payload)
        response = _read_frame(sock)
        assert response["ok"] is False
        # The connection survived the garbage: a JSON array is also
        # rejected (requests must be objects), on the same socket...
        payload = b"[1,2,3]"
        sock.sendall(struct.pack(">I", len(payload)) + payload)
        response = _read_frame(sock)
        assert response["ok"] is False
        assert "JSON object" in response["error"]
        # ...and a valid ping still works on it afterwards.
        sock.sendall(encode_frame({"op": "ping"}))
        assert _read_frame(sock)["ok"] is True
    assert server.errors >= 2
    assert server.stats()["errors"] >= 2


def test_remote_kind_registers_lazily():
    # make_store("remote", ...) must work in a process that never
    # imported repro.service — the factory table lazy-imports it.
    code = (
        "from repro.figures.cache import make_store; "
        "import sys; "
        "assert 'repro.service.remote' not in sys.modules; "
        "store = make_store('remote', '127.0.0.1:1'); "
        "print(store.kind, store.address)"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=".",
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "remote 127.0.0.1:1"


def test_make_store_rejects_unknown_kind(tmp_path):
    with pytest.raises(ValueError) as excinfo:
        make_store("postgres", tmp_path)
    assert "json/sqlite/remote" in str(excinfo.value)
