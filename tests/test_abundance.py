"""Anomaly-abundance-vs-search-volume figure (ISSUE 4 satellite)."""

import numpy as np

from repro.figures import abundance
from repro.figures.common import FigureConfig, clear_study_cache


def test_generate_covers_expressions_times_boxes():
    clear_study_cache()
    try:
        config = FigureConfig(scale="quick", seed=0)
        data = abundance.generate(config, expressions=("aatb", "gram3"))
    finally:
        clear_study_cache()
    assert data.boxes == ("paper_box", "wide_box", "huge_box")
    assert len(data.points) == 6
    for name in ("aatb", "gram3"):
        points = data.for_expression(name)
        assert [p.box for p in points] == list(abundance.BOX_ORDER)
        # The anomalous regions sit at small dims: the paper box is
        # the densest, and every box still finds anomalies.
        assert all(p.n_anomalies > 0 for p in points)
        assert points[0].abundance > points[-1].abundance
        # Volumes grow monotonically along the box order.
        volumes = [p.log10_volume for p in points]
        assert volumes == sorted(volumes)
    assert np.isclose(
        data.for_expression("aatb")[0].abundance,
        data.for_expression("aatb")[0].n_anomalies
        / data.for_expression("aatb")[0].n_samples,
    )


def test_render_lists_every_point():
    clear_study_cache()
    try:
        config = FigureConfig(scale="quick", seed=0)
        data = abundance.generate(config, expressions=("aatb",))
    finally:
        clear_study_cache()
    text = abundance.render(data)
    assert "Anomaly abundance vs search volume" in text
    for box in abundance.BOX_ORDER:
        assert box in text
    assert "#" in text  # bars render


def test_point_from_search_uses_named_box_span():
    from repro.experiments.random_search import SearchResult

    search = SearchResult(
        expression="aatb", threshold=0.1, anomalies=(), n_samples=50
    )
    point = abundance.point_from_search("aatb", "wide_box", search)
    assert point.span == 2 * 1200 - 20 + 1
    assert point.n_dims == 3
    assert point.abundance == 0.0
