"""Parallel multi-study runner: matrix, equivalence, CLI.

The load-bearing promise: a parallel run and a sequential run of the
same study matrix leave **byte-identical** payloads in the store —
the pipeline is deterministic per key, and workers communicate only
through the store.
"""

from pathlib import Path

import pytest

from repro.figures.cache import (
    JsonDirectoryStore,
    SqliteStudyStore,
    StudyKey,
)
from repro.runner import StudyRunner, study_matrix
from repro.runner.__main__ import main as runner_main
from repro.runner.runner import run_study

MATRIX = (
    StudyKey("quick", 0, "aatb"),
    StudyKey("quick", 1, "aatb"),
    StudyKey("quick", 0, "chain4"),
    StudyKey("quick", 1, "chain4"),
)


def test_study_matrix_enumerates_registered_expressions_plus_extras():
    keys = study_matrix(seeds=(0, 1))
    assert StudyKey("quick", 0, "aatb") in keys
    assert StudyKey("quick", 1, "chain4") in keys
    extra = StudyKey("quick", 7, "chain5", box="wide_box")
    extended = study_matrix(seeds=(0,), extras=(extra,))
    assert extended[-1] == extra
    # Duplicates collapse, first occurrence wins the position.
    deduped = study_matrix(seeds=(0, 0), extras=(StudyKey("quick", 0, "aatb"),))
    assert len(deduped) == len(set(deduped))


def _json_bytes(root: Path) -> dict:
    store = JsonDirectoryStore(root)
    return {key.slug: store.path_for(key).read_bytes() for key in MATRIX}


def test_parallel_and_sequential_json_payloads_are_byte_identical(tmp_path):
    sequential = StudyRunner(cache_dir=tmp_path / "seq", store="json", jobs=1)
    parallel = StudyRunner(cache_dir=tmp_path / "par", store="json", jobs=2)
    seq_report = sequential.run(MATRIX)
    par_report = parallel.run(MATRIX)
    assert seq_report.ok and par_report.ok
    assert seq_report.count("computed") == len(MATRIX)
    assert par_report.count("computed") == len(MATRIX)
    assert _json_bytes(tmp_path / "seq") == _json_bytes(tmp_path / "par")


def test_parallel_sqlite_matches_sequential_json_payloads(tmp_path):
    StudyRunner(cache_dir=tmp_path / "seq", store="json", jobs=1).run(MATRIX)
    report = StudyRunner(
        cache_dir=tmp_path / "sq", store="sqlite", jobs=2
    ).run(MATRIX)
    assert report.ok
    json_texts = {
        slug: data.decode() for slug, data in _json_bytes(tmp_path / "seq").items()
    }
    with SqliteStudyStore(tmp_path / "sq") as store:
        for key in MATRIX:
            assert store.raw_payload(key) == json_texts[key.slug]


def test_second_run_is_all_cache_hits_and_failures_are_contained(tmp_path):
    runner = StudyRunner(cache_dir=tmp_path, store="sqlite", jobs=1)
    assert runner.run(MATRIX).count("computed") == len(MATRIX)
    rerun = runner.run(MATRIX)
    assert rerun.count("cached") == len(MATRIX)
    # An unknown expression fails its own study, not the run.
    bad = runner.run((StudyKey("quick", 0, "not-an-expression"),) + MATRIX[:1])
    assert not bad.ok
    assert bad.outcomes[0].status == "failed"
    assert "not-an-expression" in bad.outcomes[0].error
    assert bad.outcomes[1].status == "cached"
    assert "failed" in bad.summary()


def test_run_study_respects_box_in_key(tmp_path):
    key = StudyKey("quick", 0, "aatb", box="wide_box")
    outcome = run_study(key, "json", str(tmp_path))
    assert outcome.status == "computed"
    store = JsonDirectoryStore(tmp_path)
    loaded = store.load(key)
    assert loaded is not None
    # The wider box admits dims beyond the paper's 1200 cap.
    celled = [
        max(anomaly.instance) for anomaly in loaded["search"].anomalies
    ]
    assert max(celled, default=0) > 1200
    # And it is keyed apart from the paper-box study.
    assert store.load(StudyKey("quick", 0, "aatb")) is None


def test_cli_runs_matrix_and_lists(tmp_path, capsys):
    cache_dir = str(tmp_path / "cli")
    assert (
        runner_main(
            [
                "--scale", "quick",
                "--seeds", "0",
                "--expressions", "aatb",
                "--jobs", "1",
                "--store", "sqlite",
                "--cache-dir", cache_dir,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "computed" in out and "quick-seed0-aatb-paper_box" in out
    assert runner_main(["--list", "--cache-dir", cache_dir]) == 0
    listed = capsys.readouterr().out.strip().splitlines()
    assert "quick-seed0-aatb-paper_box" in listed
    assert "quick-seed0-chain4-paper_box" in listed
    # Compiler-generated families are part of the default matrix.
    assert "quick-seed0-gram3-paper_box" in listed
    assert "quick-seed0-tri4-paper_box" in listed
    assert "quick-seed0-sum3-paper_box" in listed
    # Extras ride along, pattern names validate without registration.
    assert (
        runner_main(
            [
                "--list",
                "--extra", "quick:7:gram4:wide_box",
                "--cache-dir", cache_dir,
            ]
        )
        == 0
    )
    assert "quick-seed7-gram4-wide_box" in capsys.readouterr().out


def test_cli_requires_a_cache_dir(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert runner_main(["--list"]) == 2
    assert "cache-dir" in capsys.readouterr().err


def test_cli_rejects_unknown_extra_expression_upfront(tmp_path, capsys):
    # A typo is a usage error at parse time, not a KeyError traceback
    # from a worker process.
    with pytest.raises(SystemExit) as excinfo:
        runner_main(
            [
                "--extra", "quick:0:not-an-expression",
                "--cache-dir", str(tmp_path),
            ]
        )
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown expression 'not-an-expression'" in err
    assert "gram<k>" in err  # the error teaches the valid patterns


@pytest.mark.parametrize(
    "extra,fragment",
    [
        ("quick:0", "scale:seed:expression"),
        ("warm:0:aatb", "scale must be one of"),
        ("quick:x:aatb", "seed must be an integer"),
        ("quick:0:aatb:narrow_box", "box must be one of"),
    ],
)
def test_cli_rejects_malformed_extras(tmp_path, capsys, extra, fragment):
    with pytest.raises(SystemExit) as excinfo:
        runner_main(["--extra", extra, "--cache-dir", str(tmp_path)])
    assert excinfo.value.code == 2
    assert fragment in capsys.readouterr().err


def test_cli_rejects_unknown_store_upfront(tmp_path, capsys):
    # Same validation style as expression/scale/box names: a bad
    # backend name is a usage error at parse time, never a per-study
    # failure inside a worker.
    with pytest.raises(SystemExit) as excinfo:
        runner_main(
            ["--store", "postgres", "--cache-dir", str(tmp_path)]
        )
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown store 'postgres'" in err
    assert "json/sqlite" in err  # the error teaches the valid kinds


def test_cli_store_names_are_case_insensitive(tmp_path, capsys):
    assert (
        runner_main(
            [
                "--list",
                "--store", "SQLite",
                "--cache-dir", str(tmp_path),
            ]
        )
        == 0
    )


def test_cli_rejects_unknown_schedule_upfront(tmp_path, capsys):
    # Same validation style as store names: a bad schedule is a usage
    # error at parse time, not a ValueError traceback from MachineModel
    # inside a worker process.
    with pytest.raises(SystemExit) as excinfo:
        runner_main(
            ["--schedule", "fastest", "--cache-dir", str(tmp_path)]
        )
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown schedule 'fastest'" in err
    assert "default/min-interference/max-interference" in err


def test_cli_schedule_names_are_case_insensitive_and_slugged(
    tmp_path, capsys
):
    assert (
        runner_main(
            [
                "--list",
                "--schedule", "Min-Interference",
                "--expressions", "aatb",
                "--cache-dir", str(tmp_path),
            ]
        )
        == 0
    )
    listed = capsys.readouterr().out.strip().splitlines()
    # Non-default schedules are distinct store scenarios: the slug
    # carries the schedule name (default-schedule slugs stay bare).
    assert "quick-seed0-aatb-paper_box-min-interference" in listed


def test_cli_rejects_unknown_expressions_option(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        runner_main(
            [
                "--expressions", "aatb,chan4",
                "--cache-dir", str(tmp_path),
            ]
        )
    assert excinfo.value.code == 2
    assert "chan4" in capsys.readouterr().err


def test_cli_exit_code_reflects_failed_studies(tmp_path, capsys, monkeypatch):
    # A valid-name study whose pipeline fails must turn into exit
    # code 1 (the outcome line carries the error), not a crash.
    def boom(config, expression_name, backend=None):
        raise RuntimeError("pipeline exploded")

    monkeypatch.setattr(
        "repro.runner.runner.compute_study_results", boom
    )
    exit_code = runner_main(
        [
            "--expressions", "aatb",
            "--jobs", "1",
            "--cache-dir", str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "failed" in out and "pipeline exploded" in out


def test_cli_abundance_survives_mid_run_pattern_registration(
    tmp_path, capsys, monkeypatch
):
    # An in-process --extra of a pattern family registers it into the
    # registry *during* the run; the abundance figure must still cover
    # exactly the names that were warmed (the snapshot taken before
    # the run), not the grown registry — and exit 0.
    from repro.expressions import registry

    monkeypatch.setattr(
        registry, "_REGISTRY", {"aatb": registry._REGISTRY["aatb"]}
    )
    exit_code = runner_main(
        [
            "--extra", "quick:0:tri3",
            "--abundance",
            "--jobs", "1",
            "--cache-dir", str(tmp_path / "mid"),
        ]
    )
    out = capsys.readouterr().out
    assert "tri3" in registry.known_expressions()  # registered mid-run
    assert exit_code == 0
    assert "quick-seed0-tri3-paper_box" in out
    assert "Anomaly abundance vs search volume" in out
    assert "skipped" not in out


@pytest.mark.parametrize("raw", ["", "   ", ",", " , ,"])
def test_cli_rejects_blank_seeds(tmp_path, capsys, raw):
    # An all-blank --seeds used to produce an empty matrix and a
    # successful "0 studies" run; it is a usage error.
    with pytest.raises(SystemExit) as excinfo:
        runner_main(["--seeds", raw, "--cache-dir", str(tmp_path)])
    assert excinfo.value.code == 2
    assert "at least one integer" in capsys.readouterr().err


@pytest.mark.parametrize("raw", ["0", "-3", "two"])
def test_cli_rejects_non_positive_jobs(tmp_path, capsys, raw):
    # --jobs 0 used to escape argparse and surface as a raw ValueError
    # traceback from StudyRunner; it is a usage error.
    with pytest.raises(SystemExit) as excinfo:
        runner_main(["--jobs", raw, "--cache-dir", str(tmp_path)])
    assert excinfo.value.code == 2
    assert "--jobs" in capsys.readouterr().err


def test_run_study_recomputes_when_store_entry_is_corrupt(tmp_path):
    # A corrupted store entry is a miss, not a failed study: run_study
    # recomputes and heals the entry byte-identically (the pipeline is
    # deterministic per key).
    key = MATRIX[0]
    assert run_study(key, "json", str(tmp_path)).status == "computed"
    path = JsonDirectoryStore(tmp_path).path_for(key)
    good = path.read_bytes()
    path.write_text("{corrupted", encoding="utf-8")
    outcome = run_study(key, "json", str(tmp_path))
    assert outcome.status == "computed"
    assert path.read_bytes() == good


def test_run_study_surfaces_a_raising_store_load(tmp_path, monkeypatch):
    # A store whose load *raises* (as opposed to degrading to a miss)
    # used to fail the study; now it falls back to recomputation with
    # the load error surfaced in the outcome.
    def explode(self, key):
        raise OSError("disk on fire")

    monkeypatch.setattr(JsonDirectoryStore, "load", explode)
    outcome = run_study(MATRIX[0], "json", str(tmp_path))
    assert outcome.status == "computed"
    assert "store load failed, recomputed" in outcome.error
    assert "disk on fire" in outcome.error
    monkeypatch.undo()
    assert JsonDirectoryStore(tmp_path).load(MATRIX[0]) is not None


def test_runner_salvages_a_broken_process_pool(tmp_path, monkeypatch):
    # When a worker dies the pool poisons every pending future with
    # BrokenProcessPool.  The runner must keep the studies that
    # finished (visible through the store) and retry the rest
    # sequentially, not crash the whole run.
    from concurrent.futures.process import BrokenProcessPool

    from repro.runner import runner as runner_module

    class FakeFuture:
        def __init__(self, args, broken):
            self._args = args
            self._broken = broken

        def result(self):
            if self._broken:
                raise BrokenProcessPool("a child process terminated abruptly")
            return runner_module._run_study_args(self._args)

    class FakePool:
        # Completes the first submitted study, then "dies".
        def __init__(self, max_workers=None):
            self._submitted = 0

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def submit(self, fn, args):
            self._submitted += 1
            return FakeFuture(args, broken=self._submitted > 1)

    monkeypatch.setattr(runner_module, "ProcessPoolExecutor", FakePool)
    # One key already in the store: a worker that finished before the
    # pool broke; its retry must report "cached", not recompute.
    assert run_study(MATRIX[1], "json", str(tmp_path)).status == "computed"
    report = StudyRunner(cache_dir=tmp_path, store="json", jobs=2).run(
        MATRIX[:3]
    )
    assert report.ok
    assert report.outcomes[0].status == "computed"
    assert report.outcomes[0].error == ""
    assert report.outcomes[1].status == "cached"
    assert report.outcomes[2].status == "computed"
    for outcome in report.outcomes[1:]:
        assert "retried sequentially after worker pool broke" in outcome.error
    store = JsonDirectoryStore(tmp_path)
    for key in MATRIX[:3]:
        assert store.load(key) is not None


def test_salvage_retries_failed_keys_and_records_attempts(
    tmp_path, monkeypatch
):
    # First in-process attempt of the salvage path fails (injected
    # worker.run error); the retry policy gives the key a second
    # attempt, which succeeds, and the outcome records both.
    from concurrent.futures.process import BrokenProcessPool

    from repro.resilience import FaultPlan, faults
    from repro.runner import runner as runner_module

    class ExplodingPool:
        def __init__(self, max_workers=None):
            pass

        def __enter__(self):
            raise BrokenProcessPool("fork failed")

        def __exit__(self, *exc):
            return False

    monkeypatch.setattr(runner_module, "ProcessPoolExecutor", ExplodingPool)
    faults.set_plan(FaultPlan.parse("seed=1;worker.run=error:1"))
    try:
        report = StudyRunner(
            cache_dir=tmp_path, store="json", jobs=2, retries=2
        ).run(MATRIX[:2])
    finally:
        faults.set_plan(None)
    assert report.ok
    first, second = report.outcomes
    assert first.status == "computed" and first.attempts == 2
    assert "attempt 2/2" in first.error
    assert second.status == "computed" and second.attempts == 1
    assert "attempt 1/2" in second.error


def test_salvage_exhausting_retries_reports_the_failure(
    tmp_path, monkeypatch
):
    from concurrent.futures.process import BrokenProcessPool

    from repro.resilience import FaultPlan, faults
    from repro.runner import runner as runner_module

    class ExplodingPool:
        def __init__(self, max_workers=None):
            pass

        def __enter__(self):
            raise BrokenProcessPool("fork failed")

        def __exit__(self, *exc):
            return False

    monkeypatch.setattr(runner_module, "ProcessPoolExecutor", ExplodingPool)
    # Every worker.run attempt fails: both retries burn, the key fails.
    faults.set_plan(FaultPlan.parse("seed=2;worker.run=error:*"))
    try:
        report = StudyRunner(
            cache_dir=tmp_path, store="json", jobs=2, retries=2
        ).run(MATRIX[:2])
    finally:
        faults.set_plan(None)
    assert not report.ok
    for outcome in report.outcomes:
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert "injected fault: worker.run error" in outcome.error
        assert "attempt 2/2" in outcome.error


def test_runner_rejects_non_positive_retries(tmp_path):
    with pytest.raises(ValueError):
        StudyRunner(cache_dir=tmp_path, retries=0)


@pytest.mark.parametrize("raw", ["0", "-1", "two"])
def test_cli_rejects_non_positive_retries(tmp_path, capsys, raw):
    with pytest.raises(SystemExit) as excinfo:
        runner_main(["--retries", raw, "--cache-dir", str(tmp_path)])
    assert excinfo.value.code == 2
    assert "--retries" in capsys.readouterr().err


def test_runner_survives_pool_breaking_at_construction(tmp_path, monkeypatch):
    # BrokenProcessPool out of the pool itself (not a future) — e.g.
    # during submission — must also degrade to a sequential run.
    from concurrent.futures.process import BrokenProcessPool

    from repro.runner import runner as runner_module

    class ExplodingPool:
        def __init__(self, max_workers=None):
            pass

        def __enter__(self):
            raise BrokenProcessPool("fork failed")

        def __exit__(self, *exc):
            return False

    monkeypatch.setattr(runner_module, "ProcessPoolExecutor", ExplodingPool)
    report = StudyRunner(cache_dir=tmp_path, store="json", jobs=2).run(
        MATRIX[:2]
    )
    assert report.ok
    assert all(o.status == "computed" for o in report.outcomes)
    assert all(
        "retried sequentially after worker pool broke" in o.error
        for o in report.outcomes
    )


def test_cli_abundance_runs_boxes_and_prints_figure(tmp_path, capsys):
    exit_code = runner_main(
        [
            "--expressions", "aatb",
            "--abundance",
            "--jobs", "1",
            "--cache-dir", str(tmp_path / "ab"),
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    # All three boxes were warmed through the store...
    for box in ("paper_box", "wide_box", "huge_box"):
        assert f"quick-seed0-aatb-{box}" in out
    # ...and the figure rendered from it.
    assert "Anomaly abundance vs search volume" in out
    assert "huge_box" in out.split("Anomaly abundance")[1]
