"""On-disk study stores: exact round-trip and graceful degradation."""

import json
import os

import pytest

from repro.figures import cache
from repro.figures.cache import JsonDirectoryStore, SqliteStudyStore, StudyKey
from repro.figures.common import FigureConfig, clear_study_cache, study_for

KEY = StudyKey(scale="quick", seed=0, expression="aatb")


@pytest.fixture
def computed_study():
    clear_study_cache()
    try:
        yield study_for(FigureConfig(scale="quick", seed=0), "aatb")
    finally:
        clear_study_cache()


def _save(store, study, key=KEY):
    store.save(
        key, study.search, study.regions, study.prediction, study.confusion
    )


@pytest.mark.parametrize("kind", cache.LOCAL_STORE_KINDS)
def test_payload_round_trip_is_exact(tmp_path, computed_study, kind):
    study = computed_study
    with cache.make_store(kind, tmp_path) as store:
        _save(store, study)
        loaded = store.load(KEY)
    assert loaded is not None
    # Dataclass equality is deep and includes every float bit-for-bit:
    # JSON uses shortest-repr floats, which round-trip exactly.
    assert loaded["search"] == study.search
    assert loaded["regions"] == study.regions
    assert loaded["prediction"] == study.prediction
    assert loaded["confusion"] == study.confusion


@pytest.mark.parametrize("kind", cache.LOCAL_STORE_KINDS)
def test_study_for_uses_disk_store_across_process_caches(
    tmp_path, computed_study, monkeypatch, kind
):
    study = computed_study
    with cache.make_store(kind, tmp_path) as store:
        _save(store, study)
    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
    monkeypatch.setenv(cache.CACHE_STORE_ENV, kind)
    clear_study_cache()  # simulate a fresh process
    try:
        reloaded = study_for(FigureConfig(scale="quick", seed=0), "aatb")
    finally:
        clear_study_cache()
    assert reloaded.search == study.search
    assert reloaded.regions == study.regions
    assert reloaded.prediction == study.prediction
    assert reloaded.confusion == study.confusion


def test_key_mismatch_and_corruption_fall_back_to_none(
    tmp_path, computed_study
):
    study = computed_study
    store = JsonDirectoryStore(tmp_path)
    _save(store, study)
    # Wrong key coordinates → miss, not a crash.
    assert store.load(StudyKey("quick", 1, "aatb")) is None
    assert store.load(StudyKey("full", 0, "aatb")) is None
    assert store.load(StudyKey("quick", 0, "aatb", box="wide_box")) is None
    # Tampered schema field → rejected.
    path = store.path_for(KEY)
    payload = json.loads(path.read_text())
    payload["schema"] = cache.SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    assert store.load(KEY) is None
    # Truncated file → rejected.
    path.write_text(path.read_text()[:40])
    assert store.load(KEY) is None
    # Non-UTF-8 bytes (disk corruption) → rejected, not raised.
    path.write_bytes(b"\xff\xfe not json \x80")
    assert store.load(KEY) is None
    # Unreadable directory → save is best-effort, load misses.
    missing = JsonDirectoryStore(tmp_path / "does-not-exist-file" / "nested")
    assert missing.load(KEY) is None


def test_sqlite_store_rejects_mismatched_and_tampered_rows(
    tmp_path, computed_study
):
    study = computed_study
    with SqliteStudyStore(tmp_path) as store:
        _save(store, study)
        assert store.load(StudyKey("quick", 1, "aatb")) is None
        assert (
            store.load(StudyKey("quick", 0, "aatb", box="wide_box")) is None
        )
        # Tamper the stored payload text → rejected, not crashed.
        conn = store._connect()
        with conn:
            conn.execute(
                "UPDATE studies SET payload = ? WHERE skey = ?",
                (store.raw_payload(KEY)[:40], KEY.slug),
            )
        assert store.load(KEY) is None
    # A store over an unwritable root degrades to a no-op.
    broken = SqliteStudyStore(tmp_path / "file-not-dir" / "nested")
    (tmp_path / "file-not-dir").write_text("in the way")
    _save(broken, study)
    assert broken.load(KEY) is None


def test_env_knobs_control_disk_layer(monkeypatch):
    monkeypatch.delenv(cache.CACHE_DIR_ENV, raising=False)
    monkeypatch.delenv(cache.CACHE_STORE_ENV, raising=False)
    assert cache.cache_dir_from_env() is None
    assert cache.store_from_env() is None
    monkeypatch.setenv(cache.CACHE_DIR_ENV, "  ")
    assert cache.cache_dir_from_env() is None
    monkeypatch.setenv(cache.CACHE_DIR_ENV, "/tmp/somewhere")
    assert str(cache.cache_dir_from_env()) == "/tmp/somewhere"
    key = StudyKey("quick", 3, "aatb")
    assert os.path.basename(
        str(cache.study_path(cache.cache_dir_from_env(), key))
    ) == f"study-v{cache.SCHEMA_VERSION}-quick-seed3-aatb-paper_box.json"
    # Store-kind selection: default json, explicit sqlite, junk rejected.
    assert isinstance(cache.store_from_env(), JsonDirectoryStore)
    monkeypatch.setenv(cache.CACHE_STORE_ENV, "SQLite")
    assert isinstance(cache.store_from_env(), SqliteStudyStore)
    monkeypatch.setenv(cache.CACHE_STORE_ENV, "mongodb")
    with pytest.raises(ValueError, match=cache.CACHE_STORE_ENV):
        cache.store_from_env()
    with pytest.raises(ValueError, match="unknown store kind"):
        cache.make_store("mongodb", "/tmp/somewhere")


def test_box_knob_is_part_of_config_and_key():
    config = FigureConfig(scale="quick", seed=2, box="wide_box")
    key = config.study_key("chain4")
    assert key == StudyKey("quick", 2, "chain4", box="wide_box")
    assert key.slug == "quick-seed2-chain4-wide_box"
    with pytest.raises(ValueError, match="box"):
        FigureConfig(box="bathtub")
