"""On-disk study cache: exact round-trip and graceful degradation."""

import json
import os

import pytest

from repro.figures import cache
from repro.figures.common import FigureConfig, clear_study_cache, study_for


@pytest.fixture
def computed_study():
    clear_study_cache()
    try:
        yield study_for(FigureConfig(scale="quick", seed=0), "aatb")
    finally:
        clear_study_cache()


def test_payload_round_trip_is_exact(tmp_path, computed_study):
    study = computed_study
    cache.save_study_payload(
        tmp_path, "quick", 0, "aatb",
        study.search, study.regions, study.prediction, study.confusion,
    )
    loaded = cache.load_study_payload(tmp_path, "quick", 0, "aatb")
    assert loaded is not None
    # Dataclass equality is deep and includes every float bit-for-bit:
    # JSON uses shortest-repr floats, which round-trip exactly.
    assert loaded["search"] == study.search
    assert loaded["regions"] == study.regions
    assert loaded["prediction"] == study.prediction
    assert loaded["confusion"] == study.confusion


def test_study_for_uses_disk_cache_across_process_caches(
    tmp_path, computed_study, monkeypatch
):
    study = computed_study
    cache.save_study_payload(
        tmp_path, "quick", 0, "aatb",
        study.search, study.regions, study.prediction, study.confusion,
    )
    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
    clear_study_cache()  # simulate a fresh process
    reloaded = study_for(FigureConfig(scale="quick", seed=0), "aatb")
    assert reloaded.search == study.search
    assert reloaded.regions == study.regions
    assert reloaded.prediction == study.prediction
    assert reloaded.confusion == study.confusion


def test_key_mismatch_and_corruption_fall_back_to_none(
    tmp_path, computed_study
):
    study = computed_study
    cache.save_study_payload(
        tmp_path, "quick", 0, "aatb",
        study.search, study.regions, study.prediction, study.confusion,
    )
    # Wrong key coordinates → miss, not a crash.
    assert cache.load_study_payload(tmp_path, "quick", 1, "aatb") is None
    assert cache.load_study_payload(tmp_path, "full", 0, "aatb") is None
    # Tampered schema field → rejected.
    path = cache.study_path(tmp_path, "quick", 0, "aatb")
    payload = json.loads(path.read_text())
    payload["schema"] = cache.SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    assert cache.load_study_payload(tmp_path, "quick", 0, "aatb") is None
    # Truncated file → rejected.
    path.write_text(path.read_text()[:40])
    assert cache.load_study_payload(tmp_path, "quick", 0, "aatb") is None
    # Unreadable directory → save is best-effort, load misses.
    missing = tmp_path / "does-not-exist-file" / "nested"
    assert cache.load_study_payload(missing, "quick", 0, "aatb") is None


def test_env_knob_controls_disk_layer(monkeypatch):
    monkeypatch.delenv(cache.CACHE_DIR_ENV, raising=False)
    assert cache.cache_dir_from_env() is None
    monkeypatch.setenv(cache.CACHE_DIR_ENV, "  ")
    assert cache.cache_dir_from_env() is None
    monkeypatch.setenv(cache.CACHE_DIR_ENV, "/tmp/somewhere")
    assert str(cache.cache_dir_from_env()) == "/tmp/somewhere"
    assert os.path.basename(
        str(cache.study_path(cache.cache_dir_from_env(), "quick", 3, "aatb"))
    ) == f"study-v{cache.SCHEMA_VERSION}-quick-seed3-aatb.json"
