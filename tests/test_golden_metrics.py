"""Golden science metrics: quick-scale studies pinned to exact numbers.

The whole stack below a study — kernel FLOP/efficiency models, noise
streams, cache interference, plan compilation, pruning, scheduling,
codegen — is deterministic for a given study key, so the headline
statistics of the golden expression trio (``chain4``, ``aatb``,
``gram3`` at quick scale, seed 0, paper box) are *constants*.  These
tests pin them as explicit numeric assertions: any change anywhere in
the stack that moves Experiment 1's abundance or Experiment 3's
recall/precision fails here with the exact before/after values, which
is the fastest possible "did this PR change the science?" signal —
the ablation harness (:mod:`repro.ablation`) then tells you *which*
component moved it.

Integer counts are asserted with ``==``; the derived ratios with
``pytest.approx`` at tight tolerance (they are exact quotients of the
pinned integers, so this is belt and braces, not slack).
"""

import pytest

from repro.figures.common import FigureConfig, study_for

#: (expression → the pinned quick-scale, seed-0, paper_box numbers).
GOLDEN = {
    "chain4": {
        "n_samples": 1173,
        "n_anomalies": 6,
        "abundance": 6 / 1173,
        "n_regions": 5,
        "n_cells": 739,
        "tp": 619,
        "fp": 2,
        "fn": 1,
        "tn": 117,
        "recall": 619 / 620,
        "precision": 619 / 621,
    },
    "aatb": {
        "n_samples": 279,
        "n_anomalies": 25,
        "abundance": 25 / 279,
        "n_regions": 5,
        "n_cells": 788,
        "tp": 689,
        "fp": 1,
        "fn": 75,
        "tn": 23,
        "recall": 689 / 764,
        "precision": 689 / 690,
    },
    "gram3": {
        "n_samples": 328,
        "n_anomalies": 25,
        "abundance": 25 / 328,
        "n_regions": 5,
        "n_cells": 677,
        "tp": 610,
        "fp": 0,
        "fn": 28,
        "tn": 39,
        "recall": 610 / 638,
        "precision": 1.0,
    },
}


@pytest.fixture(scope="module")
def studies():
    config = FigureConfig(scale="quick", seed=0, box="paper_box")
    return {name: study_for(config, name) for name in GOLDEN}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_search_abundance_pinned(studies, name):
    study, golden = studies[name], GOLDEN[name]
    assert study.search.n_samples == golden["n_samples"]
    assert len(study.search.anomalies) == golden["n_anomalies"]
    assert study.search.abundance == pytest.approx(
        golden["abundance"], abs=1e-12
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_region_traversal_pinned(studies, name):
    study, golden = studies[name], GOLDEN[name]
    assert len(study.regions.regions) == golden["n_regions"]
    assert len(study.regions.cells) == golden["n_cells"]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_prediction_confusion_pinned(studies, name):
    study, golden = studies[name], GOLDEN[name]
    confusion = study.confusion
    assert confusion.true_positive == golden["tp"]
    assert confusion.false_positive == golden["fp"]
    assert confusion.false_negative == golden["fn"]
    assert confusion.true_negative == golden["tn"]
    assert confusion.recall == pytest.approx(golden["recall"], abs=1e-12)
    assert confusion.precision == pytest.approx(
        golden["precision"], abs=1e-12
    )


def test_golden_counts_are_consistent():
    """The pinned integers cross-check: confusion totals = cell counts.

    Guards the table itself against a typo'd update — every confusion
    quadrant sum must equal the pinned region cell count, because
    Experiment 3 predicts exactly the traversed cells.
    """
    for name, golden in GOLDEN.items():
        total = golden["tp"] + golden["fp"] + golden["fn"] + golden["tn"]
        assert total == golden["n_cells"], name
