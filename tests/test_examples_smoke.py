"""Every example must run end-to-end (ISSUE 1 satellite task)."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted(
    path.name for path in (REPO_ROOT / "examples").glob("*.py")
)


def test_all_six_examples_are_covered():
    assert len(EXAMPLES) == 6


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_end_to_end(example):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / example)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{example} failed\nstdout:\n{result.stdout}\n"
        f"stderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example} produced no output"
