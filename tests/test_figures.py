"""Figure config and study cache behaviour."""

import pytest

from repro.figures.common import FigureConfig, clear_study_cache, study_for


def test_figure_config_validates_scale():
    assert FigureConfig(scale="quick", seed=0).fig1_sizes()[0] == 20
    assert FigureConfig(scale="full").is_full
    with pytest.raises(ValueError):
        FigureConfig(scale="huge")


def test_study_cache_returns_same_object():
    clear_study_cache()
    config = FigureConfig(scale="quick", seed=0)
    try:
        study_a = study_for(config, "aatb")
        study_b = study_for(config, "aatb")
        assert study_a is study_b
        assert study_a.search.anomalies
        assert study_a.confusion.total > 0
        # A different seed is a different cache entry.
        study_c = study_for(FigureConfig(scale="quick", seed=1), "aatb")
        assert study_c is not study_a
    finally:
        clear_study_cache()


def test_trace_figures_respect_the_box_knob():
    """Figures 8/11 must trace inside the configured box, not paper_box."""
    from repro.figures import fig11, fig8

    clear_study_cache()
    try:
        config = FigureConfig(scale="quick", seed=0, box="wide_box")
        chain_data = fig8.generate(config)
        aatb_data = fig11.generate(config)
    finally:
        clear_study_cache()
    for data in (chain_data, aatb_data):
        for line in data.lines:
            assert max(line.positions) <= 2400
