"""classify() edge cases at/below/above the 10% threshold."""

import pytest

from repro.core.classify import Evaluation, classify


def _evaluation(flops, seconds):
    names = tuple(f"a{i}" for i in range(len(flops)))
    return Evaluation(
        instance=(1,),
        algorithm_names=names,
        flops=tuple(flops),
        seconds=tuple(seconds),
    )


def test_below_threshold_is_not_anomaly():
    # Cheapest is 9.0909..% slower than fastest: below a 10% threshold.
    ev = _evaluation([100, 200], [1.10, 1.00])
    verdict = classify(ev, threshold=0.10)
    assert not verdict.is_anomaly
    assert verdict.time_score == pytest.approx(1 - 1.00 / 1.10)


def test_exactly_at_threshold_is_not_anomaly():
    # time score exactly 0.2 -- the rule is strictly greater-than.
    ev = _evaluation([100, 200], [1.25, 1.00])
    verdict = classify(ev, threshold=0.2)
    assert verdict.time_score == pytest.approx(0.2)
    assert not verdict.is_anomaly


def test_above_threshold_is_anomaly():
    ev = _evaluation([100, 200], [1.50, 1.00])
    verdict = classify(ev, threshold=0.10)
    assert verdict.is_anomaly
    assert verdict.time_score == pytest.approx(1 / 3)
    assert verdict.cheapest == ("a0",)
    assert verdict.fastest == ("a1",)
    # The fastest spends 100% more FLOPs -> flop score 1 - 100/200.
    assert verdict.flop_score == pytest.approx(0.5)


def test_cheapest_set_gets_benefit_of_the_doubt():
    # Two FLOP-minimal algorithms; the better one is the fastest
    # overall, so the instance cannot be anomalous (paper §3.3).
    ev = _evaluation([100, 100, 300], [2.0, 1.0, 1.5])
    verdict = classify(ev, threshold=0.0)
    assert verdict.time_score == 0.0
    assert not verdict.is_anomaly
    assert set(verdict.cheapest) == {"a0", "a1"}


def test_flop_ties_are_exact_and_time_ties_tolerant():
    ev = _evaluation([100, 100, 101], [1.0, 1.0 + 1e-12, 0.9])
    assert ev.cheapest_indices() == [0, 1]
    ev2 = _evaluation([100, 100], [1.0, 1.0 + 1e-12])
    assert ev2.fastest_indices() == [0, 1]


def test_classify_rejects_negative_threshold():
    ev = _evaluation([1], [1.0])
    with pytest.raises(ValueError):
        classify(ev, threshold=-0.1)


def test_evaluation_rejects_ragged_input():
    with pytest.raises(ValueError):
        Evaluation(
            instance=(1,),
            algorithm_names=("a",),
            flops=(1, 2),
            seconds=(1.0,),
        )
