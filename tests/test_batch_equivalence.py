"""Scalar/batch equivalence: the batched paths must be bit-for-bit.

The vectorized engine (machine ``*_batch`` methods, backend batch API,
``classify_batch``, and the batched experiment drivers) promises
results *identical* to point-by-point evaluation — not approximately
equal: every comparison here is ``==`` on floats.  Parametrized over
all three machine presets and the seeds the benchmark suite uses.
"""

import random

import numpy as np
import pytest

from repro.backends.base import Backend
from repro.backends.simulated import SimulatedBackend
from repro.core.classify import (
    classify,
    classify_batch,
    evaluate_instance,
    evaluate_instances,
)
from repro.core.searchspace import paper_box
from repro.experiments.prediction import predict_from_benchmarks
from repro.experiments.random_search import random_search
from repro.experiments.regions import (
    RegionCell,
    explore_regions,
)
from repro.expressions.registry import get_expression
from repro.kernels.types import KernelName, batch_kernel_calls
from repro.machine.presets import (
    no_cache_machine,
    no_variants_machine,
    paper_machine,
)

PRESETS = {
    "paper": paper_machine,
    "no_cache": no_cache_machine,
    "no_variants": no_variants_machine,
}
SEEDS = (0, 1, 2, 7)

CASES = [
    pytest.param(name, seed, id=f"{name}-seed{seed}")
    for name in PRESETS
    for seed in SEEDS
]


def _instances(n_dims, count, seed=123):
    rng = random.Random(seed)
    box = paper_box(n_dims)
    return [box.sample(rng) for _ in range(count)]


@pytest.fixture(scope="module")
def aatb():
    return get_expression("aatb")


@pytest.fixture(scope="module")
def chain():
    return get_expression("chain4")


# ----------------------------------------------------------------------
# Machine layer
# ----------------------------------------------------------------------


@pytest.mark.parametrize("preset,seed", CASES)
def test_measure_kernel_batch_matches_scalar(preset, seed):
    machine = PRESETS[preset](seed=seed)
    rng = random.Random(seed)
    for kernel, arity in (
        (KernelName.GEMM, 3),
        (KernelName.SYRK, 2),
        (KernelName.SYMM, 2),
    ):
        dims = [
            tuple(rng.randint(20, 1200) for _ in range(arity))
            for _ in range(10)
        ]
        batch = machine.measure_kernel_batch(kernel, dims)
        scalar = [machine.measure_kernel(kernel, d) for d in dims]
        assert batch.tolist() == scalar
        eff_batch = machine.efficiency_batch(kernel, dims)
        assert eff_batch.tolist() == [
            machine.efficiency(kernel, d) for d in dims
        ]


@pytest.mark.parametrize("preset,seed", CASES)
def test_algorithm_batches_match_scalar(preset, seed, aatb, chain):
    machine = PRESETS[preset](seed=seed)
    for expression, count in ((aatb, 12), (chain, 8)):
        instances = _instances(expression.n_dims, count, seed=seed)
        arr = np.asarray(instances, dtype=np.int64)
        columns = tuple(arr[:, i] for i in range(arr.shape[1]))
        for algorithm in expression.algorithms():
            calls = batch_kernel_calls(
                algorithm.kernel_calls(columns), len(instances)
            )
            measured = machine.measure_algorithm_batch(
                calls, context=algorithm.name
            )
            predicted = machine.predict_algorithm_batch(
                calls, context=algorithm.name
            )
            assert measured.tolist() == [
                machine.measure_algorithm(
                    algorithm.kernel_calls(inst), context=algorithm.name
                )
                for inst in instances
            ]
            assert predicted.tolist() == [
                machine.predict_algorithm(
                    algorithm.kernel_calls(inst), context=algorithm.name
                )
                for inst in instances
            ]


# ----------------------------------------------------------------------
# Backend layer: vectorized overrides vs the scalar-loop defaults
# ----------------------------------------------------------------------


@pytest.mark.parametrize("preset,seed", CASES)
def test_backend_batch_api_matches_default_loops(preset, seed, aatb):
    instances = _instances(3, 15, seed=seed)
    algorithm = aatb.algorithms()[0]
    fast = SimulatedBackend(PRESETS[preset](seed=seed))
    slow = SimulatedBackend(PRESETS[preset](seed=seed))
    assert (
        fast.time_algorithms(algorithm, instances).tolist()
        == Backend.time_algorithms(slow, algorithm, instances).tolist()
    )
    assert (
        fast.predict_times(algorithm, instances).tolist()
        == [slow.predict_time(algorithm, inst) for inst in instances]
    )
    dims = [inst[:2] for inst in instances]
    assert (
        fast.time_kernels(KernelName.SYRK, dims).tolist()
        == Backend.time_kernels(slow, KernelName.SYRK, dims).tolist()
    )


# ----------------------------------------------------------------------
# Classification layer
# ----------------------------------------------------------------------


@pytest.mark.parametrize("preset,seed", CASES)
def test_classify_batch_matches_scalar(preset, seed, aatb):
    instances = _instances(3, 20, seed=seed)
    algorithms = aatb.algorithms()
    batch_backend = SimulatedBackend(PRESETS[preset](seed=seed))
    scalar_backend = SimulatedBackend(PRESETS[preset](seed=seed))
    batch = evaluate_instances(batch_backend, algorithms, instances)
    for threshold in (0.05, 0.10):
        batched = classify_batch(batch, threshold=threshold)
        for i, instance in enumerate(instances):
            evaluation = evaluate_instance(
                scalar_backend, algorithms, instance
            )
            assert batch.evaluation(i) == evaluation
            assert batched[i] == classify(evaluation, threshold=threshold)


# ----------------------------------------------------------------------
# Experiment layer
# ----------------------------------------------------------------------


@pytest.mark.parametrize("preset,seed", CASES)
def test_random_search_identical_for_any_batch_size(preset, seed, aatb):
    box = paper_box(3)
    results = [
        random_search(
            SimulatedBackend(PRESETS[preset](seed=seed)),
            aatb,
            box,
            threshold=0.10,
            target_anomalies=3,
            max_samples=150,
            seed=seed,
            batch_size=batch_size,
        )
        for batch_size in (1, 7, 64, None)
    ]
    for other in results[1:]:
        assert other == results[0]


def _reference_explore_regions(
    backend, expression, origins, box, threshold, dims, step, hole_tolerance
):
    """Point-by-point region traversal (the pre-batching algorithm),
    with the origin recorded once per region and cells deduplicated by
    instance — the semantics ``explore_regions`` must reproduce."""
    from repro.experiments.regions import DimExtent, Region, Regions

    algorithms = expression.algorithms()
    cells, seen, regions = [], set(), []

    def record(instance, verdict):
        if instance not in seen:
            seen.add(instance)
            cells.append(
                RegionCell(
                    instance=instance,
                    time_score=verdict.time_score,
                    is_anomaly=verdict.is_anomaly,
                )
            )

    def walk(origin, dim, direction):
        extreme = position = origin[dim]
        holes = 0
        while True:
            position += direction * step
            if not box.lows[dim] <= position <= box.highs[dim]:
                break
            instance = tuple(
                position if i == dim else v for i, v in enumerate(origin)
            )
            verdict = classify(
                evaluate_instance(backend, algorithms, instance),
                threshold=threshold,
            )
            record(instance, verdict)
            if verdict.is_anomaly:
                extreme = position
                holes = 0
            else:
                holes += 1
                if holes > hole_tolerance:
                    break
        return extreme

    for origin in origins:
        origin = tuple(int(v) for v in origin)
        verdict = classify(
            evaluate_instance(backend, algorithms, origin),
            threshold=threshold,
        )
        record(origin, verdict)
        extents = {}
        if verdict.is_anomaly:
            for dim in dims:
                lo = walk(origin, dim, -1)
                hi = walk(origin, dim, +1)
                extents[dim] = DimExtent(dim=dim, lo=lo, hi=hi)
        regions.append(Region(origin=origin, extents=extents))
    return Regions(
        expression=expression.name,
        threshold=threshold,
        n_dims=expression.n_dims,
        regions=tuple(regions),
        cells=tuple(cells),
    )


@pytest.mark.parametrize("preset,seed", CASES)
def test_explore_regions_matches_scalar_reference(preset, seed, aatb):
    box = paper_box(3)
    search = random_search(
        SimulatedBackend(PRESETS[preset](seed=seed)),
        aatb,
        box,
        threshold=0.10,
        target_anomalies=2,
        max_samples=150,
        seed=seed,
    )
    origins = [anomaly.instance for anomaly in search.anomalies]
    kwargs = dict(
        box=box, threshold=0.05, dims=(0, 2), step=48, hole_tolerance=2
    )
    batched = explore_regions(
        SimulatedBackend(PRESETS[preset](seed=seed)), aatb, origins, **kwargs
    )
    reference = _reference_explore_regions(
        SimulatedBackend(PRESETS[preset](seed=seed)), aatb, origins, **kwargs
    )
    assert batched == reference


@pytest.mark.parametrize("preset,seed", CASES)
def test_prediction_matches_scalar_reference(preset, seed, aatb):
    from repro.core.classify import Evaluation
    from repro.experiments.prediction import PredictionRecord

    box = paper_box(3)
    backend = SimulatedBackend(PRESETS[preset](seed=seed))
    search = random_search(
        backend, aatb, box, threshold=0.10,
        target_anomalies=1, max_samples=150, seed=seed,
    )
    regions = explore_regions(
        backend, aatb,
        [a.instance for a in search.anomalies],
        box, threshold=0.05, dims=(0,), step=96,
    )
    batched = predict_from_benchmarks(backend, aatb, regions)

    scalar_backend = SimulatedBackend(PRESETS[preset](seed=seed))
    algorithms = aatb.algorithms()
    for cell, record in zip(regions.cells, batched.records):
        evaluation = Evaluation(
            instance=cell.instance,
            algorithm_names=tuple(a.name for a in algorithms),
            flops=tuple(int(a.flops(cell.instance)) for a in algorithms),
            seconds=tuple(
                float(scalar_backend.predict_time(a, cell.instance))
                for a in algorithms
            ),
        )
        verdict = classify(evaluation, threshold=regions.threshold)
        assert record == PredictionRecord(
            instance=cell.instance,
            actual_anomaly=cell.is_anomaly,
            predicted_anomaly=verdict.is_anomaly,
            actual_score=cell.time_score,
            predicted_score=verdict.time_score,
        )


def test_region_cells_are_unique_and_include_origins(aatb):
    box = paper_box(3)
    backend = SimulatedBackend(paper_machine(seed=0))
    search = random_search(
        backend, aatb, box, threshold=0.10,
        target_anomalies=2, max_samples=300, seed=0,
    )
    origins = [a.instance for a in search.anomalies]
    # Duplicate an origin on purpose: its verdict must be recorded once.
    regions = explore_regions(
        backend, aatb, origins + origins[:1], box,
        threshold=0.05, dims=(0, 1),
    )
    instances = [cell.instance for cell in regions.cells]
    assert len(instances) == len(set(instances))
    recorded = set(instances)
    for origin in origins:
        assert origin in recorded
    assert len(regions.regions) == len(origins) + 1


def test_base_predict_time_dedupes_kernel_timings(aatb):
    class CountingBackend(Backend):
        def __init__(self):
            self.kernel_calls = []

        @property
        def peak_flops(self):
            return 1.0

        def time_algorithm(self, algorithm, instance):
            raise NotImplementedError

        def time_kernel(self, kernel, dims):
            self.kernel_calls.append((kernel, tuple(dims)))
            return 1.0

    # aatb-3 at d1 == d2 issues GEMM(d0, d0, d1) and GEMM(d0, d2, d0)
    # which collide when all dims are equal.
    algorithm = aatb.algorithms()[2]
    backend = CountingBackend()
    total = backend.predict_time(algorithm, (64, 64, 64))
    assert total == 2.0  # both occurrences contribute
    assert len(backend.kernel_calls) == 1  # but only one benchmark ran
    backend.kernel_calls.clear()
    out = backend.predict_times(algorithm, [(64, 64, 64), (64, 64, 64), (32, 64, 64)])
    assert out.tolist() == [2.0, 2.0, 2.0]
    # one distinct call for the first two instances + two for the third
    assert len(backend.kernel_calls) == 3


def test_predict_times_matrix_dedupes_across_plans(aatb):
    """One benchmark memo spans all the plans of an evaluation batch."""

    class CountingBackend(Backend):
        def __init__(self):
            self.kernel_calls = []

        @property
        def peak_flops(self):
            return 1.0

        def time_algorithm(self, algorithm, instance):
            raise NotImplementedError

        def time_kernel(self, kernel, dims):
            self.kernel_calls.append((kernel, tuple(dims)))
            return 1.0

    # aatb-1 = SYRK(d0,d1) + SYMM(d0,d2); aatb-2 = SYRK(d0,d1) +
    # GEMM(d0,d2,d0): the SYRK call is shared, so a matrix prediction
    # benchmarks 3 distinct kernels where per-plan calls would run 4.
    algorithms = aatb.algorithms()[:2]
    backend = CountingBackend()
    out = backend.predict_times_matrix(algorithms, [(64, 96, 128)])
    assert out.shape == (1, 2)
    assert out.tolist() == [[2.0, 2.0]]
    assert len(backend.kernel_calls) == 3  # memo hit for aatb-2's SYRK

    # Without the shared memo, each plan re-times its own calls.
    backend.kernel_calls.clear()
    for algorithm in algorithms:
        backend.predict_times(algorithm, [(64, 96, 128)])
    assert len(backend.kernel_calls) == 4


def test_machine_base_seconds_memo_hits_across_plans(aatb):
    """The noise-free base-seconds cache is hit across plan contexts
    without perturbing a single bit of any prediction."""
    instances = _instances(3, 10, seed=5)
    algorithms = aatb.algorithms()
    shared = SimulatedBackend(paper_machine(seed=0))
    assert shared.machine.base_seconds_cache_hits == 0
    got = [
        shared.predict_times(a, instances).tolist() for a in algorithms
    ]
    # Every plan starts with SYRK or GEMM over overlapping dim columns.
    assert shared.machine.base_seconds_cache_hits > 0
    for algorithm, expected in zip(algorithms, got):
        # A fresh machine per algorithm sees every column cold.
        fresh = SimulatedBackend(paper_machine(seed=0))
        assert fresh.predict_times(algorithm, instances).tolist() == expected


# ----------------------------------------------------------------------
# Profiles and profile-based discriminants
# ----------------------------------------------------------------------

_PROFILE_GRID = (24, 64, 160, 400, 800, 1400)


def _profiles_for(seed):
    from repro.profiles.benchmark import build_all_profiles

    backend = SimulatedBackend(paper_machine(seed=seed))
    return backend, build_all_profiles(
        backend,
        axes_by_kernel={
            KernelName.GEMM: (_PROFILE_GRID,) * 3,
            KernelName.SYRK: (_PROFILE_GRID,) * 2,
            KernelName.SYMM: (_PROFILE_GRID,) * 2,
        },
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_profile_predict_batch_matches_scalar(seed):
    _, profiles = _profiles_for(seed)
    rng = random.Random(seed)
    for profile in profiles.values():
        arity = len(profile.axes)
        # On-grid, off-grid, and out-of-range (clamped) dims.
        dims = [tuple(rng.randint(1, 2000) for _ in range(arity))
                for _ in range(50)]
        dims += [
            tuple(_PROFILE_GRID[0] for _ in range(arity)),
            tuple(_PROFILE_GRID[-1] for _ in range(arity)),
            tuple(3000 for _ in range(arity)),
        ]
        batch = profile.predict_batch(np.asarray(dims, dtype=np.int64))
        scalar = [profile.predict(d) for d in dims]
        # Bit-for-bit: the scalar path IS a one-row batch.
        assert batch.tolist() == scalar
        with pytest.raises(ValueError):
            profile.predict_batch(np.zeros((4, arity + 1), dtype=np.int64))


@pytest.mark.parametrize("seed", SEEDS)
def test_profiled_discriminant_select_batch_matches_scalar(
    seed, aatb, chain
):
    from repro.core.discriminants import (
        FlopsProfileHybrid,
        ProfiledTimeDiscriminant,
    )

    _, profiles = _profiles_for(seed)
    for expression in (aatb, chain):
        algorithms = expression.algorithms()
        instances = _instances(expression.n_dims, 200, seed=seed)
        for discriminant in (
            ProfiledTimeDiscriminant(profiles),
            FlopsProfileHybrid(profiles, margin=0.5),
            FlopsProfileHybrid(profiles, margin=0.0),
            FlopsProfileHybrid(profiles, margin=5.0),
        ):
            scalar = [
                discriminant.select(algorithms, inst) for inst in instances
            ]
            assert discriminant.select_batch(algorithms, instances) == scalar
            assert discriminant.select_batch(algorithms, []) == []


@pytest.mark.parametrize("seed", SEEDS)
def test_predicted_times_batch_matches_scalar_sum(seed, aatb):
    from repro.core.discriminants import ProfiledTimeDiscriminant

    _, profiles = _profiles_for(seed)
    discriminant = ProfiledTimeDiscriminant(profiles)
    instances = _instances(aatb.n_dims, 60, seed=seed)
    arr = np.asarray(instances, dtype=np.int64)
    for algorithm in aatb.algorithms():
        batch = discriminant.predicted_times_batch(algorithm, arr)
        assert batch.tolist() == [
            discriminant.predicted_time(algorithm, inst)
            for inst in instances
        ]
