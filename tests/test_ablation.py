"""Ablation harness: registry, enumeration, deltas, determinism, CLI.

Fast coverage strategy: the components/enumeration/delta layers are
pure functions tested against hand-built fixtures; the two end-to-end
tests that actually run studies use a single-expression,
few-component config on the quick scale (sub-second each) with a
shared warm store.
"""

import json

import pytest

from repro.ablation.cli import main as ablation_main
from repro.ablation.components import (
    COMPONENTS,
    DEFAULT_VARIANT,
    DETECTORS,
    STUDY_VARIANTS,
    component_names,
    get_component,
    get_variant,
)
from repro.ablation.harness import (
    METRIC_NAMES,
    AblationConfig,
    ScienceMetrics,
    compute_deltas,
    find_inert_violations,
    importance_of,
    metric_deltas,
    run_ablation,
)
from repro.ablation.report import report_json, report_markdown, write_report
from repro.runner.__main__ import main as runner_main


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_registry_covers_every_load_bearing_axis():
    kinds = {c.kind for c in COMPONENTS.values()}
    assert kinds == {"machine", "env", "pruning", "schedule", "detector"}
    assert len(COMPONENTS) >= 8
    # Every referenced variant/detector exists.
    for component in COMPONENTS.values():
        assert component.variant in STUDY_VARIANTS
        if component.dropped_detector is not None:
            assert component.dropped_detector in DETECTORS


def test_inert_components_are_the_bit_preserving_layers():
    inert = {name for name, c in COMPONENTS.items() if c.inert}
    assert inert == {"no-scheduler", "no-codegen"}


def test_get_component_lists_names_on_unknown():
    with pytest.raises(KeyError) as excinfo:
        get_component("bogus")
    message = str(excinfo.value)
    for name in component_names():
        assert name in message


def test_unknown_variant_lists_names():
    with pytest.raises(ValueError) as excinfo:
        get_variant("bogus")
    assert "no-noise" in str(excinfo.value)


def test_variant_env_is_applied_and_restored(monkeypatch):
    monkeypatch.delenv("REPRO_NO_SCHEDULER", raising=False)
    import os

    variant = get_variant("no-scheduler")
    with variant.applied_env():
        assert os.environ["REPRO_NO_SCHEDULER"] == "1"
    assert "REPRO_NO_SCHEDULER" not in os.environ


def test_prune_variant_recompiles_with_fewer_algorithms():
    baseline = get_variant(DEFAULT_VARIANT).expression_for("chain4")
    pruned = get_variant("prune-budget-1").expression_for("chain4")
    assert len(baseline.algorithms()) > 1
    assert len(pruned.algorithms()) == 1
    # The registry instance itself is untouched.
    assert len(
        get_variant(DEFAULT_VARIANT).expression_for("chain4").algorithms()
    ) == len(baseline.algorithms())


# ----------------------------------------------------------------------
# Enumeration: exactly baseline plus one
# ----------------------------------------------------------------------


def test_enumeration_is_exactly_baseline_plus_one_off():
    config = AblationConfig(expressions=("aatb",))
    entries = config.enumerate_configs()
    assert entries[0][0] is None  # baseline first
    assert len(entries) == 1 + len(config.components)
    baseline = entries[0][1]
    assert (baseline.schedule, baseline.variant) == ("default", "default")
    for component, figure_config in entries[1:]:
        # Each one-off config differs from baseline in at most the one
        # axis its component owns — never two at once.
        changed = []
        if figure_config.variant != baseline.variant:
            changed.append("variant")
        if figure_config.schedule != baseline.schedule:
            changed.append("schedule")
        assert len(changed) <= 1, component.name
        assert figure_config.scale == baseline.scale
        assert figure_config.seed == baseline.seed
        assert figure_config.box == baseline.box
        if component.kind == "detector":
            # Detector drops reuse the baseline study untouched.
            assert changed == []
        else:
            assert changed, component.name


def test_study_keys_are_deduplicated_and_baseline_first():
    config = AblationConfig(
        expressions=("aatb", "gram3"),
        components=(
            "drop-detector-benchmark-sum",  # baseline key, no new study
            "no-noise",
            "schedule-min-interference",
        ),
    )
    keys = config.study_keys()
    assert len(keys) == len(set(keys))
    # 2 expressions x (baseline + no-noise + min-interference).
    assert len(keys) == 6
    assert keys[0].variant == "default"
    assert keys[0].schedule == "default"
    slugs = [key.slug for key in keys]
    assert "quick-seed0-aatb-paper_box-ablate-no-noise" in slugs


def test_config_rejects_unknown_component_upfront():
    with pytest.raises(KeyError) as excinfo:
        AblationConfig(components=("no-noise", "bogus"))
    assert "bogus" in str(excinfo.value)


def test_config_rejects_empty_axes():
    with pytest.raises(ValueError):
        AblationConfig(expressions=())
    with pytest.raises(ValueError):
        AblationConfig(components=())


# ----------------------------------------------------------------------
# Delta math on a hand-built two-study fixture
# ----------------------------------------------------------------------


def _metrics(n_samples, n_anomalies, tp, fp, fn, tn):
    cells = tp + fp + fn + tn
    actual_yes = tp + fn
    predicted_yes = tp + fp
    return ScienceMetrics(
        n_samples=n_samples,
        n_anomalies=n_anomalies,
        abundance=n_anomalies / n_samples,
        n_cells=cells,
        true_positive=tp,
        false_positive=fp,
        false_negative=fn,
        true_negative=tn,
        recall=tp / actual_yes if actual_yes else 1.0,
        precision=tp / predicted_yes if predicted_yes else 1.0,
    )


def test_metric_deltas_match_hand_computation():
    baseline = _metrics(200, 20, tp=16, fp=2, fn=4, tn=10)
    variant = _metrics(200, 10, tp=10, fp=0, fn=10, tn=12)
    deltas = metric_deltas(baseline, variant)
    assert deltas["abundance"] == pytest.approx(10 / 200 - 20 / 200)
    assert deltas["recall"] == pytest.approx(10 / 20 - 16 / 20)
    assert deltas["precision"] == pytest.approx(10 / 10 - 16 / 18)
    assert set(deltas) == set(METRIC_NAMES)


def test_importance_is_max_absolute_delta():
    deltas = {
        "aatb": {"abundance": -0.05, "recall": 0.02, "precision": 0.0},
        "gram3": {"abundance": 0.01, "recall": -0.30, "precision": 0.1},
    }
    assert importance_of(deltas) == pytest.approx(0.30)
    assert importance_of({}) == 0.0


def test_compute_deltas_ranks_by_importance_then_name():
    baseline = {"aatb": _metrics(100, 10, tp=8, fp=1, fn=2, tn=5)}
    big = _metrics(100, 40, tp=8, fp=1, fn=2, tn=5)  # |Δabundance|=0.3
    same = _metrics(100, 10, tp=8, fp=1, fn=2, tn=5)  # all-zero deltas
    results = compute_deltas(
        baseline,
        [get_component("no-noise"), get_component("no-scheduler")],
        {"no-noise": {"aatb": big}, "no-scheduler": {"aatb": same}},
    )
    assert [r.component.name for r in results] == [
        "no-noise",
        "no-scheduler",
    ]
    assert results[0].importance == pytest.approx(0.30)
    assert results[1].importance == 0.0
    # Tied importances fall back to name order.
    tied = compute_deltas(
        baseline,
        [get_component("no-scheduler"), get_component("no-codegen")],
        {"no-scheduler": {"aatb": same}, "no-codegen": {"aatb": same}},
    )
    assert [r.component.name for r in tied] == [
        "no-codegen",
        "no-scheduler",
    ]


def test_inert_gate_flags_nonzero_inert_deltas():
    baseline = {"aatb": _metrics(100, 10, tp=8, fp=1, fn=2, tn=5)}
    moved = _metrics(100, 12, tp=8, fp=1, fn=2, tn=5)
    results = compute_deltas(
        baseline,
        [get_component("no-codegen"), get_component("no-noise")],
        {"no-codegen": {"aatb": moved}, "no-noise": {"aatb": moved}},
    )
    violations = find_inert_violations(results)
    # Only the inert component's movement is a violation.
    assert [v.component for v in violations] == ["no-codegen"]
    assert violations[0].metric == "abundance"
    assert violations[0].delta == pytest.approx(0.02)


# ----------------------------------------------------------------------
# End-to-end: a small real ablation, reruns byte-identical
# ----------------------------------------------------------------------

E2E_COMPONENTS = (
    "no-noise",
    "no-scheduler",
    "no-codegen",
    "drop-detector-benchmark-sum",
)


@pytest.fixture(scope="module")
def small_report(tmp_path_factory):
    config = AblationConfig(
        expressions=("aatb",), components=E2E_COMPONENTS
    )
    cache_dir = tmp_path_factory.mktemp("ablation-store")
    return config, cache_dir, run_ablation(config, cache_dir)


def test_e2e_report_shape_and_inert_zero(small_report):
    _config, _cache_dir, report = small_report
    assert report.ok
    assert set(report.baseline) == {"aatb"}
    assert [r.component.name for r in report.results] != []
    by_name = {r.component.name: r for r in report.results}
    for inert_name in ("no-scheduler", "no-codegen"):
        for per_metric in by_name[inert_name].deltas.values():
            assert all(v == 0.0 for v in per_metric.values())
    # Dropping the strongest detector must not *improve* recall.
    drop = by_name["drop-detector-benchmark-sum"]
    assert drop.deltas["aatb"]["recall"] <= 0.0


def test_e2e_rerun_is_byte_identical(small_report, tmp_path):
    config, cache_dir, report = small_report
    # Warm-store rerun in the same process...
    again = run_ablation(config, cache_dir)
    assert report_json(again) == report_json(report)
    assert report_markdown(again) == report_markdown(report)
    # ...and a cold-store rerun recomputing everything.
    cold = run_ablation(config, tmp_path / "cold")
    assert report_json(cold) == report_json(report)


def test_e2e_written_report_parses_and_matches(small_report, tmp_path):
    _config, _cache_dir, report = small_report
    json_path, markdown_path = write_report(report, tmp_path / "out")
    payload = json.loads(json_path.read_text())
    assert payload["kind"] == "ablation-report"
    assert payload["scale"] == "quick"
    assert payload["inert_violations"] == []
    assert len(payload["components"]) == len(E2E_COMPONENTS)
    ranks = [c["rank"] for c in payload["components"]]
    assert ranks == sorted(ranks)
    importances = [c["importance"] for c in payload["components"]]
    assert importances == sorted(importances, reverse=True)
    assert markdown_path.read_text().startswith("# Ablation report")


# ----------------------------------------------------------------------
# CLIs
# ----------------------------------------------------------------------


def test_cli_rejects_unknown_component_with_usage_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        ablation_main(
            ["--components", "no-noise,bogus", "--cache-dir", str(tmp_path)]
        )
    assert excinfo.value.code == 2  # argparse usage error
    err = capsys.readouterr().err
    assert "unknown component 'bogus'" in err
    for name in component_names():
        assert name in err


def test_cli_rejects_empty_component_list(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        ablation_main(["--components", ",", "--cache-dir", str(tmp_path)])
    assert excinfo.value.code == 2
    assert "at least one component" in capsys.readouterr().err


def test_cli_rejects_unknown_expression(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        ablation_main(
            ["--expressions", "nope", "--cache-dir", str(tmp_path)]
        )
    assert excinfo.value.code == 2
    assert "unknown expression" in capsys.readouterr().err


def test_cli_requires_a_cache_dir(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert ablation_main(["--components", "no-noise"]) == 2
    assert "cache-dir" in capsys.readouterr().err


def test_cli_list_components(capsys):
    assert ablation_main(["--list-components"]) == 0
    out = capsys.readouterr().out
    for name in component_names():
        assert name in out
    assert "[inert]" in out


def test_cli_runs_and_writes_reports(tmp_path, capsys):
    report_dir = tmp_path / "reports"
    code = ablation_main(
        [
            "--expressions",
            "aatb",
            "--components",
            "no-scheduler",
            "--cache-dir",
            str(tmp_path / "store"),
            "--report-dir",
            str(report_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Ablation report" in out
    assert (report_dir / "ablation-report.json").exists()
    assert (report_dir / "ablation-report.md").exists()


def test_runner_cli_ablation_delegates(tmp_path, capsys):
    code = runner_main(
        [
            "--ablation",
            "--expressions",
            "aatb",
            "--ablation-components",
            "no-codegen",
            "--cache-dir",
            str(tmp_path),
        ]
    )
    assert code == 0
    assert "Ablation report" in capsys.readouterr().out


def test_runner_cli_ablation_flag_conflicts(tmp_path, capsys):
    for argv, fragment in [
        (["--ablation", "--abundance"], "--abundance"),
        (["--ablation", "--schedule", "min-interference"], "schedule"),
        (["--ablation", "--seeds", "0,1"], "one seed"),
        (
            ["--ablation", "--scale", "quick", "--scale", "full"],
            "one --scale",
        ),
        (["--ablation-components", "no-noise"], "--ablation"),
        (["--report-dir", "x"], "--ablation"),
    ]:
        with pytest.raises(SystemExit) as excinfo:
            runner_main(argv + ["--cache-dir", str(tmp_path)])
        assert excinfo.value.code == 2, argv
        assert fragment in capsys.readouterr().err, argv
