"""find_abrupt_changes on synthetic series; scans on the model."""

from repro.backends.simulated import SimulatedBackend
from repro.kernels.types import KernelName
from repro.machine.presets import no_variants_machine, paper_machine
from repro.profiles.abrupt import find_abrupt_changes, scan_efficiency


def test_find_abrupt_changes_on_synthetic_step():
    series = [(100, 0.50), (110, 0.51), (120, 0.62), (130, 0.63)]
    changes = find_abrupt_changes(
        series, kernel=KernelName.GEMM, axis=0, threshold=0.08
    )
    assert len(changes) == 1
    change = changes[0]
    assert change.position == 120
    assert change.before == 0.51
    assert change.after == 0.62
    assert change.magnitude > 0.08


def test_find_abrupt_changes_ignores_gradual_ramp():
    series = [(i, 0.3 + 0.01 * i) for i in range(10)]
    assert (
        find_abrupt_changes(
            series, kernel=KernelName.SYRK, axis=0, threshold=0.08
        )
        == []
    )


def test_scan_crosses_the_syrk_variant_boundary():
    backend = SimulatedBackend(paper_machine(seed=0))
    series = scan_efficiency(
        backend, KernelName.SYRK, (0, 500), axis=0,
        positions=range(400, 500, 10),
    )
    changes = find_abrupt_changes(
        series, kernel=KernelName.SYRK, axis=0, threshold=0.08
    )
    assert len(changes) == 1
    assert changes[0].position == 450  # boundary at n = 448
    assert changes[0].after > changes[0].before


def test_no_variants_machine_scans_are_gradual():
    backend = SimulatedBackend(no_variants_machine(seed=0))
    for kernel, base in (
        (KernelName.SYRK, (0, 500)),
        (KernelName.SYMM, (0, 500)),
        (KernelName.GEMM, (0, 500, 500)),
    ):
        series = scan_efficiency(
            backend, kernel, base, axis=0, positions=range(200, 1100, 10)
        )
        assert (
            find_abrupt_changes(
                series, kernel=kernel, axis=0, threshold=0.08
            )
            == []
        )
