"""Exact FLOP counts against hand-computed values (ISSUE 1 spec)."""

import pytest

from repro.expressions.chain import optimal_parenthesisation
from repro.expressions.registry import get_expression
from repro.expressions.trees import tree_name
from repro.kernels.flops import (
    add_flops,
    gemm_flops,
    kernel_flops,
    symm_flops,
    syrk_flops,
    trsm_flops,
)
from repro.kernels.types import KernelName

# Chain boundary dims (A: 2x3, B: 3x5, C: 5x7, D: 7x11) — small primes
# so every product below is hand-checkable.
CHAIN_DIMS = (2, 3, 5, 7, 11)

#: Hand-computed 2mnk totals for every parenthesisation of A B C D.
CHAIN_EXPECTED = {
    "A(B(CD))": 770 + 330 + 132,  # 1232
    "A((BC)D)": 210 + 462 + 132,  # 804
    "(AB)(CD)": 60 + 770 + 220,  # 1050
    "(A(BC))D": 210 + 84 + 308,  # 602
    "((AB)C)D": 60 + 140 + 308,  # 508
}


def _plan_label(name: str) -> str:
    """chain4-3:(AB)(CD)/left-first -> (AB)(CD)"""
    return name.split(":", 1)[1].split("/", 1)[0]


def test_kernel_flop_formulas():
    assert gemm_flops(2, 5, 3) == 60
    assert syrk_flops(3, 5) == 3 * 4 * 5 == 60
    assert symm_flops(3, 7) == 2 * 9 * 7 == 126
    assert add_flops(3, 7) == 21
    assert trsm_flops(3, 7) == 9 * 7 == 63
    assert kernel_flops(KernelName.GEMM, (4, 4, 4)) == 128
    assert kernel_flops(KernelName.ADD, (4, 4)) == 16
    assert kernel_flops(KernelName.TRSM, (4, 5)) == 80


def test_add_trsm_batch_flops_match_scalar():
    import numpy as np

    from repro.kernels.flops import kernel_flops_batch

    dims = np.array([[3, 7], [20, 1200], [555, 123]], dtype=np.int64)
    for kernel in (KernelName.ADD, KernelName.TRSM):
        batch = kernel_flops_batch(kernel, dims)
        scalar = [kernel_flops(kernel, tuple(row)) for row in dims]
        assert batch.tolist() == scalar


def test_chain4_has_six_plans_over_five_trees():
    algorithms = get_expression("chain4").algorithms()
    assert len(algorithms) == 6
    assert len({_plan_label(a.name) for a in algorithms}) == 5


def test_chain4_flops_match_hand_computed_values():
    algorithms = get_expression("chain4").algorithms()
    seen = {}
    for algorithm in algorithms:
        label = _plan_label(algorithm.name)
        assert label in CHAIN_EXPECTED, label
        seen[label] = int(algorithm.flops(CHAIN_DIMS))
        assert seen[label] == CHAIN_EXPECTED[label]
    assert set(seen) == set(CHAIN_EXPECTED)


def test_chain4_schedules_tie_in_flops():
    algorithms = get_expression("chain4").algorithms()
    split_plans = [
        a for a in algorithms if _plan_label(a.name) == "(AB)(CD)"
    ]
    assert len(split_plans) == 2
    a, b = split_plans
    assert int(a.flops(CHAIN_DIMS)) == int(b.flops(CHAIN_DIMS))


def test_optimal_parenthesisation_picks_cheapest_tree():
    tree, flops = optimal_parenthesisation(CHAIN_DIMS)
    assert flops == min(CHAIN_EXPECTED.values()) == 508
    assert tree_name(tree, "ABCD") == "((AB)C)D"


def test_optimal_parenthesisation_classic_textbook_case():
    # CLRS example: dims (10, 100, 5, 50) -> ((A B) C), 2*7500 FLOPs.
    tree, flops = optimal_parenthesisation((10, 100, 5, 50))
    assert tree_name(tree, "ABC") == "(AB)C"
    assert flops == 2 * (10 * 100 * 5 + 10 * 5 * 50)


AATB_INSTANCE = (3, 5, 7)

AATB_EXPECTED = {
    "aatb-1:syrk+symm": 60 + 126,  # 186
    "aatb-2:syrk+copy+gemm": 60 + 126,  # 186 (copy is FLOP-free)
    "aatb-3:gemm+gemm": 90 + 126,  # 216
    "aatb-4:gemm+symm": 90 + 126,  # 216
    "aatb-5:gemm+gemm-right": 210 + 210,  # 420
}


def test_aatb_flops_match_hand_computed_values():
    algorithms = get_expression("aatb").algorithms()
    assert {a.name for a in algorithms} == set(AATB_EXPECTED)
    for algorithm in algorithms:
        assert int(algorithm.flops(AATB_INSTANCE)) == AATB_EXPECTED[
            algorithm.name
        ], algorithm.name


def test_aatb_algorithm_pairs_tie_exactly_everywhere():
    algorithms = {a.name: a for a in get_expression("aatb").algorithms()}
    for instance in [(3, 5, 7), (20, 1200, 20), (555, 123, 999)]:
        assert algorithms["aatb-1:syrk+symm"].flops(instance) == algorithms[
            "aatb-2:syrk+copy+gemm"
        ].flops(instance)
        assert algorithms["aatb-3:gemm+gemm"].flops(instance) == algorithms[
            "aatb-4:gemm+symm"
        ].flops(instance)


def test_kernel_call_rejects_wrong_arity():
    from repro.kernels.types import KernelCall

    with pytest.raises(ValueError):
        KernelCall(KernelName.SYRK, (1, 2, 3))
