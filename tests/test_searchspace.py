"""Box sampling determinism and bounds (ISSUE 1 spec)."""

import random

import pytest

from repro.core.searchspace import Box, paper_box


def test_paper_box_shape():
    box = paper_box(3)
    assert box.n_dims == 3
    assert box.lows == (20, 20, 20)
    assert box.highs == (1200, 1200, 1200)
    assert box.span(0) == 1180


def test_paper_box_sampling_is_deterministic_under_fixed_seed():
    samples_a = [paper_box(5).sample(random.Random(123)) for _ in range(1)]
    rng_b = random.Random(123)
    samples_b = [paper_box(5).sample(rng_b)]
    assert samples_a == samples_b

    rng1, rng2 = random.Random(7), random.Random(7)
    box = paper_box(3)
    seq1 = [box.sample(rng1) for _ in range(50)]
    seq2 = [box.sample(rng2) for _ in range(50)]
    assert seq1 == seq2
    # A different seed must give a different sequence.
    rng3 = random.Random(8)
    assert seq1 != [box.sample(rng3) for _ in range(50)]


def test_samples_stay_inside_bounds():
    box = Box((5, 100), (9, 110))
    rng = random.Random(0)
    for _ in range(200):
        sample = box.sample(rng)
        assert box.contains(sample)


def test_clamp_and_contains():
    box = Box((10, 10), (20, 20))
    assert box.clamp((5, 25)) == (10, 20)
    assert not box.contains((5, 15))
    assert not box.contains((15,))


def test_invalid_boxes_are_rejected():
    with pytest.raises(ValueError):
        Box((10,), (5,))
    with pytest.raises(ValueError):
        Box((0,), (5,))
    with pytest.raises(ValueError):
        Box((1, 2), (3,))
