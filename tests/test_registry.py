"""Expression registry round-trip (ISSUE 1 spec, extended by ISSUE 4)."""

import pytest

from repro.expressions.registry import (
    get_expression,
    is_known_expression,
    known_expressions,
)


def test_round_trip_known_names():
    for name in (
        "chain4", "aatb", "gram3", "tri4", "sum3", "addchain3", "solve3"
    ):
        expression = get_expression(name)
        assert expression.name == name
        assert expression.algorithms()
    assert get_expression("aatb") is get_expression("aatb")


def test_expected_dimensionalities():
    assert get_expression("chain4").n_dims == 5
    assert get_expression("aatb").n_dims == 3
    assert get_expression("gram3").n_dims == 3
    assert get_expression("tri4").n_dims == 5
    assert get_expression("sum3").n_dims == 6
    assert get_expression("addchain3").n_dims == 4
    assert get_expression("solve3").n_dims == 3


def test_unknown_name_raises_with_known_list():
    with pytest.raises(KeyError) as excinfo:
        get_expression("nope")
    message = str(excinfo.value)
    assert "nope" in message
    assert "aatb" in message


def test_chain_names_materialise_on_demand():
    chain3 = get_expression("chain3")
    assert chain3.n_dims == 4
    assert "chain3" in known_expressions()
    # Catalan(2) = 2 trees, no dual-schedule roots for 3 matrices.
    assert len(chain3.algorithms()) == 2
    with pytest.raises(KeyError):
        get_expression("chain1")


def test_algorithm_names_are_unique_per_expression():
    for name in (
        "chain4", "aatb", "chain5", "gram4", "tri5", "sum2",
        "addchain4", "solve4",
    ):
        algorithms = get_expression(name).algorithms()
        names = [a.name for a in algorithms]
        assert len(names) == len(set(names))


def test_pattern_families_materialise_on_demand():
    gram4 = get_expression("gram4")
    assert gram4.n_dims == 4
    assert "gram4" in known_expressions()
    tri2 = get_expression("tri2")
    assert len(tri2.algorithms()) == 1  # single product, one tree
    # sum<k>: two k-chains, Catalan(k-1)^2 tree combinations.
    assert len(get_expression("sum2").algorithms()) == 1
    assert len(get_expression("sum3").algorithms()) == 4
    # addchain/solve<k> are chain-shaped: Catalan(k-1) trees.
    assert len(get_expression("addchain2").algorithms()) == 1
    assert len(get_expression("solve2").algorithms()) == 1
    assert len(get_expression("solve4").algorithms()) == 6


def test_sum_cap_lifted_by_pruning():
    # sum6..8 exceeded the old k <= 5 cap; cost-guided pruning caps
    # the lowered cross-product at the configured budget.
    from repro.expressions.families import SUM_PRUNE_BUDGET

    sum6 = get_expression("sum6")
    assert len(sum6.algorithms()) == SUM_PRUNE_BUDGET
    assert sum6.prune is not None
    # Previously-reachable k still enumerate exactly (no pruning).
    assert get_expression("sum5").prune is None
    assert len(get_expression("sum5").algorithms()) == 14 * 14


def test_is_known_expression_answers_without_materialising():
    before = known_expressions()
    assert is_known_expression("gram8")
    assert is_known_expression("chain4")
    assert is_known_expression("sum8")      # cap lifted via pruning
    assert is_known_expression("addchain5")
    assert is_known_expression("solve8")
    assert not is_known_expression("gram2")   # below the family's floor
    assert not is_known_expression("sum9")    # beyond the lifted cap
    assert not is_known_expression("solve1")
    assert not is_known_expression("nope")
    assert known_expressions() == before  # nothing was registered


def test_pattern_caps_raise_key_errors():
    for name in ("gram2", "sum9", "tri1", "chain9", "addchain1", "solve9"):
        with pytest.raises(KeyError):
            get_expression(name)
