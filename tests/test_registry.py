"""Expression registry round-trip (ISSUE 1 spec)."""

import pytest

from repro.expressions.registry import get_expression, known_expressions


def test_round_trip_known_names():
    for name in ("chain4", "aatb"):
        expression = get_expression(name)
        assert expression.name == name
        assert expression.algorithms()
    assert get_expression("aatb") is get_expression("aatb")


def test_expected_dimensionalities():
    assert get_expression("chain4").n_dims == 5
    assert get_expression("aatb").n_dims == 3


def test_unknown_name_raises_with_known_list():
    with pytest.raises(KeyError) as excinfo:
        get_expression("nope")
    message = str(excinfo.value)
    assert "nope" in message
    assert "aatb" in message


def test_chain_names_materialise_on_demand():
    chain3 = get_expression("chain3")
    assert chain3.n_dims == 4
    assert "chain3" in known_expressions()
    # Catalan(2) = 2 trees, no dual-schedule roots for 3 matrices.
    assert len(chain3.algorithms()) == 2
    with pytest.raises(KeyError):
        get_expression("chain1")


def test_algorithm_names_are_unique_per_expression():
    for name in ("chain4", "aatb", "chain5"):
        algorithms = get_expression(name).algorithms()
        names = [a.name for a in algorithms]
        assert len(names) == len(set(names))
