"""Symbolic FLOP polynomials and compile-time shortlisting."""

import pytest

from repro.core.symbolic import Poly, flop_polynomial, possibly_cheapest
from repro.expressions.registry import get_expression


def test_poly_arithmetic_and_evaluate():
    n = Poly.variable(0, 2)
    k = Poly.variable(1, 2)
    p = n * (n + 1) * k  # the SYRK FLOP formula
    assert p.evaluate((3, 5)) == 60
    assert p.degree == 3


def test_poly_render_orders_terms_by_degree():
    d0 = Poly.variable(0, 3)
    d1 = Poly.variable(1, 3)
    p = 2 * d0 * d0 * d1 + 3 * d1 + 1
    assert p.render(("d0", "d1", "d2")) == "2*d0^2*d1 + 3*d1 + 1"


def test_flop_polynomial_matches_concrete_flops():
    algorithms = get_expression("aatb").algorithms()
    instance = (31, 57, 83)
    for algorithm in algorithms:
        poly = flop_polynomial(algorithm)
        assert poly.evaluate(instance) == int(algorithm.flops(instance))


def test_possibly_cheapest_finds_known_crossover():
    # With d1 = d2 = 400: f(syrk-based) = 1200 d0^2 + 400 d0 and
    # f(right-assoc) = 640000 d0, equal exactly at d0 = 533; gemm+gemm
    # variants (1600 d0^2) can never win.
    algorithms = get_expression("aatb").algorithms()
    result = possibly_cheapest(
        algorithms, {1: 400, 2: 400}, (20, 20, 20), (1200, 1200, 1200)
    )
    assert result.exact
    names = [algorithms[i].name for i in result.certain]
    assert names == [
        "aatb-1:syrk+symm",
        "aatb-2:syrk+copy+gemm",
        "aatb-5:gemm+gemm-right",
    ]
    assert result.candidates == result.certain
    # Below the crossover the SYRK pair wins, above it the right-assoc.
    below = possibly_cheapest(
        algorithms, {1: 400, 2: 400}, (20, 20, 20), (532, 1200, 1200)
    )
    assert [algorithms[i].name for i in below.certain] == [
        "aatb-1:syrk+symm",
        "aatb-2:syrk+copy+gemm",
    ]
    above = possibly_cheapest(
        algorithms, {1: 400, 2: 400}, (534, 20, 20), (1200, 1200, 1200)
    )
    assert [algorithms[i].name for i in above.certain] == [
        "aatb-5:gemm+gemm-right"
    ]


def test_possibly_cheapest_tie_at_exact_crossover():
    algorithms = get_expression("aatb").algorithms()
    result = possibly_cheapest(
        algorithms, {1: 400, 2: 400}, (533, 20, 20), (533, 1200, 1200)
    )
    # All three tie at exactly d0 = 533.
    assert [algorithms[i].name for i in result.certain] == [
        "aatb-1:syrk+symm",
        "aatb-2:syrk+copy+gemm",
        "aatb-5:gemm+gemm-right",
    ]


def test_possibly_cheapest_handles_degenerate_axis_in_sampled_mode():
    # One free dim pinned via equal bounds (not `fixed`) while the
    # remaining space is large enough to force the sampled path.
    algorithms = get_expression("aatb").algorithms()
    result = possibly_cheapest(
        algorithms, {}, (92, 20, 20), (92, 1200, 1200)
    )
    assert not result.exact
    assert result.certain  # and, regression: no ZeroDivisionError


def test_possibly_cheapest_validates_input():
    algorithms = get_expression("aatb").algorithms()
    with pytest.raises(ValueError):
        possibly_cheapest(algorithms, {9: 4}, (20,) * 3, (30,) * 3)
    with pytest.raises(ValueError):
        possibly_cheapest([], {}, (20,), (30,))
