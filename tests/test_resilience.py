"""The resilience layer: retry policy, circuit breaker, fault plans.

The load-bearing promises: every schedule is a deterministic function
of its seed (two runs sleep and inject identically), the breaker's
state machine follows closed → open → half-open → closed exactly, and
an invalid fault spec disables injection instead of taking the
pipeline down.
"""

import pytest

from repro.resilience import (
    BreakerOpen,
    CircuitBreaker,
    FAULTS_ENV,
    FaultPlan,
    FaultRule,
    RetryError,
    RetryPolicy,
    faults,
)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    faults.set_plan(None)
    yield
    faults.set_plan(None)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


def test_retry_delays_are_deterministic_and_grow():
    policy = RetryPolicy(attempts=4, base_delay=0.01, multiplier=2.0)
    first = policy.delays("remote.send")
    assert first == policy.delays("remote.send")  # pure function
    assert len(first) == 3
    # Exponential growth shines through the bounded jitter
    # (each delay is base * 2^i * [1, 1.5)).
    assert first[0] < first[1] < first[2]
    # Different sites and seeds draw different jitter streams.
    assert first != policy.delays("store.load")
    reseeded = RetryPolicy(attempts=4, base_delay=0.01, seed=7)
    assert first != reseeded.delays("remote.send")


def test_retry_backoff_respects_max_delay():
    policy = RetryPolicy(
        attempts=8, base_delay=0.1, multiplier=10.0, max_delay=0.5, jitter=0.0
    )
    assert policy.backoff("x", 5) == 0.5


def test_retry_run_retries_then_succeeds():
    calls = []
    sleeps = []
    retried = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise OSError("transient")
        return "ok"

    policy = RetryPolicy(attempts=3, base_delay=0.01)
    result = policy.run(
        flaky,
        site="t",
        sleep=sleeps.append,
        on_retry=lambda attempt, exc: retried.append((attempt, str(exc))),
    )
    assert result == "ok"
    assert len(calls) == 3
    assert sleeps == list(policy.delays("t"))[:2]
    assert [a for a, _ in retried] == [1, 2]


def test_retry_run_raises_retry_error_with_the_last_cause():
    policy = RetryPolicy(attempts=2, base_delay=0.0)

    def always():
        raise ValueError("still broken")

    with pytest.raises(RetryError) as excinfo:
        policy.run(always, site="remote.send", sleep=lambda _s: None)
    err = excinfo.value
    assert err.site == "remote.send"
    assert err.attempts == 2
    assert isinstance(err.last, ValueError)
    assert "still broken" in str(err)


def test_retry_run_propagates_non_retriable_immediately():
    calls = []

    def boom():
        calls.append(1)
        raise KeyError("not transport")

    policy = RetryPolicy(attempts=5, base_delay=0.0)
    with pytest.raises(KeyError):
        policy.run(boom, retriable=(OSError,), sleep=lambda _s: None)
    assert len(calls) == 1


def test_retry_deadline_refuses_attempts_that_do_not_fit():
    clock = FakeClock()

    def failing():
        clock.advance(0.4)  # each attempt burns 0.4s of the 0.5s budget
        raise OSError("slow failure")

    policy = RetryPolicy(attempts=10, base_delay=0.05, deadline=0.5)
    with pytest.raises(RetryError) as excinfo:
        policy.run(
            failing, site="d", sleep=lambda _s: None, clock=clock.now
        )
    # The budget fit one attempt, not ten.
    assert excinfo.value.attempts < 10


def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------


def test_breaker_opens_after_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=3, recovery_seconds=5.0, clock=clock.now
    )
    for _ in range(2):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_success()  # a success resets the streak
    for _ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.short_circuited == 1
    with pytest.raises(BreakerOpen):
        breaker.acquire()


def test_breaker_half_open_probe_closes_on_success():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, recovery_seconds=5.0, clock=clock.now
    )
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance(5.0)
    assert breaker.allow()  # the probe
    assert breaker.state == "half-open"
    assert not breaker.allow()  # one probe at a time
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.stats()["transitions"] == ["open", "half-open", "closed"]


def test_breaker_half_open_probe_failure_reopens_fresh_window():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, recovery_seconds=5.0, clock=clock.now
    )
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_failure()  # the probe failed
    assert breaker.state == "open"
    clock.advance(4.9)  # the window restarted at the probe failure
    assert not breaker.allow()
    clock.advance(0.1)
    assert breaker.allow()


def test_breaker_validates():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(recovery_seconds=-1.0)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------


def test_fault_plan_parses_the_full_clause_syntax():
    plan = FaultPlan.parse(
        "seed=7;delay=0.05;remote.send=reset:2;store.load=corrupt:*@0.5"
    )
    assert plan.seed == 7
    assert plan.delay == 0.05
    send = plan.rules["remote.send"]
    assert (send.kind, send.times, send.rate) == ("reset", 2, 1.0)
    load = plan.rules["store.load"]
    assert (load.kind, load.times, load.rate) == ("corrupt", None, 0.5)
    # Comma is an accepted clause separator too.
    assert "worker.run" in FaultPlan.parse("seed=1,worker.run=crash").rules


@pytest.mark.parametrize(
    "spec",
    [
        "gibberish",
        "seed=x",
        "delay=fast",
        "nowhere.site=reset",
        "remote.send=meltdown",
        "remote.send=reset:zero",
        "remote.send=reset:0",
        "remote.send=reset@2.0",
        "remote.send=reset;remote.send=torn",
    ],
)
def test_fault_plan_rejects_malformed_specs(spec):
    with pytest.raises(ValueError):
        FaultPlan.parse(spec)


def test_fault_rule_validates_site_and_kind():
    with pytest.raises(ValueError):
        FaultRule(site="nowhere", kind="reset")
    with pytest.raises(ValueError):
        FaultRule(site="remote.send", kind="meltdown")


def test_fault_plan_times_bound_injection():
    plan = FaultPlan.parse("store.load=corrupt:2")
    decisions = [plan.decide("store.load") for _ in range(5)]
    assert decisions == ["corrupt", "corrupt", None, None, None]
    assert plan.decide("store.save") is None  # no rule, counter untouched
    stats = plan.stats()
    assert stats["calls"]["store.load"] == 5
    assert stats["injected"]["store.load"] == 2


def test_fault_plan_rate_schedule_is_seeded_and_deterministic():
    spec = "seed=3;worker.run=error:*@0.5"
    first = [FaultPlan.parse(spec).decide("worker.run") for _ in range(1)]
    a = FaultPlan.parse(spec)
    b = FaultPlan.parse(spec)
    seq_a = [a.decide("worker.run") for _ in range(40)]
    seq_b = [b.decide("worker.run") for _ in range(40)]
    assert seq_a == seq_b  # same plan → same schedule
    assert 0 < seq_a.count("error") < 40  # the rate actually gates
    reseeded = FaultPlan.parse("seed=4;worker.run=error:*@0.5")
    seq_c = [reseeded.decide("worker.run") for _ in range(40)]
    assert seq_a != seq_c
    del first


def test_env_activation_and_explicit_override(monkeypatch):
    assert faults.active_plan() is None
    assert faults.inject("remote.send") is None
    monkeypatch.setenv(FAULTS_ENV, "seed=2;delay=0.2;remote.send=reset")
    plan = faults.active_plan()
    assert plan is not None and plan.seed == 2
    assert faults.delay_seconds() == 0.2
    assert faults.inject("remote.send") == "reset"
    assert faults.inject("remote.send") is None  # times=1 exhausted
    assert faults.injected_stats()["injected"] == {"remote.send": 1}
    # set_plan overrides the environment; None restores it.
    explicit = FaultPlan.parse("seed=9;store.load=corrupt")
    faults.set_plan(explicit)
    assert faults.active_plan() is explicit
    faults.set_plan(None)
    assert faults.active_plan() is plan


def test_invalid_env_spec_disables_injection(monkeypatch, caplog):
    monkeypatch.setenv(FAULTS_ENV, "not a plan at all")
    with caplog.at_level("ERROR", logger="repro.resilience"):
        assert faults.active_plan() is None
        assert faults.inject("remote.send") is None
    assert any("ignoring invalid" in r.message for r in caplog.records)
    assert faults.injected_stats() == {}
