"""Docs can't rot: fenced examples in README/docs must execute.

Runs ``tools/docs_smoke.py`` — the same entry point CI's ``docs`` job
uses — plus unit checks of the block extractor itself.  The end-to-end
run skips under ``REPRO_SKIP_DOCS_E2E=1`` so CI's test job doesn't
execute every block a second time alongside the dedicated docs job.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "docs_smoke.py"

sys.path.insert(0, str(REPO_ROOT / "tools"))

from docs_smoke import extract_blocks, runnable  # noqa: E402


def test_extractor_finds_languages_and_line_numbers(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "intro\n"
        "```python\nprint('hi')\n```\n"
        "prose\n"
        "```sh\necho illustrative\n```\n"
        "```bash\necho run me\n```\n"
        "```python no-run\nraise SystemExit(1)\n```\n"
    )
    blocks = extract_blocks(doc)
    assert [(b.language, b.line) for b in blocks] == [
        ("python", 2),
        ("sh", 6),
        ("bash", 9),
        ("python no-run", 12),
    ]
    assert [runnable(b) for b in blocks] == [True, False, True, False]


def test_docs_have_runnable_blocks():
    # The docs tree must keep executable examples: at least one
    # runnable block in the compiler walkthrough and the CLI guide.
    for name in ("compiler.md", "cli.md", "adding-a-kernel.md"):
        blocks = extract_blocks(REPO_ROOT / "docs" / name)
        assert any(runnable(b) for b in blocks), name


def test_unclosed_fence_is_an_error(tmp_path):
    # A stray ``` would otherwise flip open/closed parity and silently
    # swallow every later block.
    doc = tmp_path / "doc.md"
    doc.write_text("```python\nprint('never closed')\n")
    with pytest.raises(ValueError, match="never closed"):
        extract_blocks(doc)
    result = subprocess.run(
        [sys.executable, str(TOOL), str(doc)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 1
    assert "never closed" in result.stdout


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_DOCS_E2E") == "1",
    reason="covered by the dedicated docs-smoke CI job",
)
def test_docs_smoke_tool_passes_end_to_end():
    result = subprocess.run(
        [sys.executable, str(TOOL)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 failure(s)" in result.stdout


def test_docs_smoke_tool_catches_a_broken_block(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("```python\nraise RuntimeError('rotted example')\n```\n")
    result = subprocess.run(
        [sys.executable, str(TOOL), str(bad)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 1
    assert "FAILED" in result.stdout
    assert "rotted example" in result.stdout
