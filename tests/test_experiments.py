"""Experiment pipelines on the simulated machine (fast smoke-level)."""

import pytest

from repro.analysis.confusion import confusion_from_prediction
from repro.analysis.traces import trace_line
from repro.backends.simulated import SimulatedBackend
from repro.core.searchspace import Box, paper_box
from repro.experiments.prediction import predict_from_benchmarks
from repro.experiments.random_search import random_search
from repro.experiments.regions import explore_regions
from repro.expressions.registry import get_expression
from repro.machine.presets import paper_machine


@pytest.fixture(scope="module")
def backend():
    return SimulatedBackend(paper_machine(seed=0))


@pytest.fixture(scope="module")
def aatb():
    return get_expression("aatb")


def test_random_search_finds_aatb_anomalies(backend, aatb):
    result = random_search(
        backend,
        aatb,
        paper_box(3),
        threshold=0.10,
        target_anomalies=5,
        max_samples=600,
        seed=0,
    )
    assert len(result.anomalies) == 5
    assert 0 < result.abundance < 0.5
    for anomaly in result.anomalies:
        assert anomaly.verdict.time_score > 0.10


def test_regions_prediction_confusion_roundtrip(backend, aatb):
    box = paper_box(3)
    search = random_search(
        backend, aatb, box, threshold=0.10,
        target_anomalies=2, max_samples=600, seed=1,
    )
    regions = explore_regions(
        backend,
        aatb,
        [a.instance for a in search.anomalies],
        box,
        threshold=0.05,
        dims=(0,),
    )
    assert len(regions.regions) == 2
    assert regions.cells
    for region in regions.regions:
        assert 0 in region.extents
        assert region.extents[0].thickness >= 0
    prediction = predict_from_benchmarks(backend, aatb, regions)
    assert len(prediction.records) == len(regions.cells)
    matrix = confusion_from_prediction(prediction)
    assert matrix.total == len(regions.cells)
    assert matrix.actual_yes > 0


def test_trace_line_statuses_are_consistent(backend, aatb):
    box = paper_box(3)
    traces = trace_line(
        backend, aatb, (92, 1095, 323), 0, box, half_points=4,
        threshold=0.05,
    )
    assert len(traces.traces) == 5
    assert traces.anomalous_positions
    assert 92 in traces.positions
    for i, position in enumerate(traces.positions):
        statuses = [t.points[i].status for t in traces.traces]
        if position in traces.anomalous_positions:
            assert "both" not in statuses
        assert any(t.points[i].is_fastest for t in traces.traces)
        assert any(t.points[i].is_cheapest for t in traces.traces)


def test_search_validates_box_dimensionality(backend, aatb):
    with pytest.raises(ValueError):
        random_search(backend, aatb, Box((20,) * 5, (30,) * 5))
