#!/usr/bin/env python
"""The paper's proposed fix: combine FLOP counts with kernel profiles.

The paper concludes (§5) that FLOPs alone are not a dependable
discriminant and conjectures that *combining FLOP counts with
performance profiles of kernels* will significantly improve algorithm
selection.  This example implements that pipeline end to end:

1. benchmark GEMM/SYRK/SYMM once on a grid (per machine, not per
   instance) and build interpolated performance profiles;
2. assemble the :class:`~repro.core.discriminants.FlopsProfileHybrid`
   discriminant — shortlist by FLOPs, re-rank the shortlist by
   profile-predicted time;
3. compare selection quality against plain min-FLOPs on random
   ``A Aᵀ B`` instances.

Run:  python examples/discriminant_upgrade.py
"""

from __future__ import annotations

from repro import (
    FlopsProfileHybrid,
    MinFlopsDiscriminant,
    ProfiledTimeDiscriminant,
    SimulatedBackend,
    get_expression,
    paper_box,
)
from repro.analysis.selection import selection_quality
from repro.kernels.types import KernelName
from repro.profiles.benchmark import build_all_profiles

GRID = (24, 48, 96, 192, 384, 768, 1400)


def main() -> None:
    backend = SimulatedBackend()
    aatb = get_expression("aatb")
    box = paper_box(3)

    print("benchmarking kernel profiles on a "
          f"{len(GRID)}-point-per-axis grid ...")
    profiles = build_all_profiles(
        backend,
        axes_by_kernel={
            KernelName.GEMM: (GRID, GRID, GRID),
            KernelName.SYRK: (GRID, GRID),
            KernelName.SYMM: (GRID, GRID),
        },
    )
    n_points = sum(p.times.size for p in profiles.values())
    print(f"  {n_points} isolated kernel benchmarks (one-off per machine)\n")

    discriminants = [
        MinFlopsDiscriminant(),
        ProfiledTimeDiscriminant(profiles),
        FlopsProfileHybrid(profiles, margin=0.5),
    ]

    print("selection quality on 300 random instances "
          "(regret = slowdown vs measured-fastest oracle):")
    for discriminant in discriminants:
        quality = selection_quality(
            discriminant, backend, aatb, box, n_instances=300, seed=7
        )
        print("  " + quality.summary())

    print(
        "\nThe hybrid keeps FLOPs for what they are good at (discarding "
        "grossly expensive algorithms, no measurements needed) and lets "
        "the one-off kernel profiles resolve the near-ties where the "
        "paper showed FLOPs fail."
    )


if __name__ == "__main__":
    main()
