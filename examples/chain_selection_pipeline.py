#!/usr/bin/env python
"""Matrix-chain selection in a signal-processing-style pipeline.

Scenario: a processing pipeline computes ``X := A B C D`` where the
four factors are a decimation operator, two transform stages and a
projection — shapes change per configuration.  This example

1. enumerates all six execution plans (the paper's Figure 3),
2. selects one with the classic min-FLOP dynamic program
   (:func:`repro.expressions.optimal_parenthesisation` — what every
   textbook and FLOP-count tool implements), and
3. checks that choice against measured execution on the simulated
   machine across many configurations, reporting how often and how
   badly the FLOP choice loses (the paper's abundance/severity).

Run:  python examples/chain_selection_pipeline.py
"""

from __future__ import annotations

import random

from repro import (
    SimulatedBackend,
    classify,
    evaluate_instance,
    get_expression,
    optimal_parenthesisation,
)
from repro.expressions.trees import tree_name

N_CONFIGS = 400
SEED = 2024


def main() -> None:
    backend = SimulatedBackend()
    chain = get_expression("chain4")
    algorithms = chain.algorithms()
    rng = random.Random(SEED)

    # One illustrative configuration.
    dims = (900, 120, 800, 150, 700)
    tree, flops = optimal_parenthesisation(dims)
    print(f"configuration {dims}:")
    print(
        f"  min-FLOP plan: {tree_name(tree, 'ABCD')} "
        f"({flops / 1e9:.3f} GFLOPs)"
    )

    # Sweep configurations; count anomalies and accumulate regret.
    anomalies = 0
    worst = (0.0, None)
    total_regret = 0.0
    for _ in range(N_CONFIGS):
        instance = tuple(rng.randint(20, 1200) for _ in range(5))
        evaluation = evaluate_instance(backend, algorithms, instance)
        verdict = classify(evaluation, threshold=0.10)
        # Regret of the min-FLOP choice against the measured fastest.
        cheapest_time = min(
            evaluation.seconds[i] for i in evaluation.cheapest_indices()
        )
        fastest_time = min(evaluation.seconds)
        regret = (cheapest_time - fastest_time) / fastest_time
        total_regret += regret
        if verdict.is_anomaly:
            anomalies += 1
            if verdict.time_score > worst[0]:
                worst = (verdict.time_score, instance)

    print(f"\nacross {N_CONFIGS} random configurations (box 20..1200):")
    print(f"  anomalies (time score > 10%): {anomalies} "
          f"({anomalies / N_CONFIGS:.1%})")
    print(f"  mean regret of the min-FLOP choice: {total_regret / N_CONFIGS:.2%}")
    if worst[1] is not None:
        print(
            f"  worst case: {worst[1]} — the FLOP choice is "
            f"{worst[0]:.1%} slower than the fastest plan"
        )
    print(
        "\nConclusion (matches the paper §4.1): for the pure-GEMM chain "
        "the FLOP count is usually a fine discriminant — anomalies are "
        "rare but real."
    )


if __name__ == "__main__":
    main()
