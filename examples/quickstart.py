#!/usr/bin/env python
"""Quickstart: is the FLOP count a good discriminant for this instance?

Evaluates the paper's two expressions at one concrete instance each:
measures every mathematically equivalent algorithm on the simulated
machine, shows FLOP counts vs measured times, and classifies the
instance per the paper's §3.3 (anomaly ⇔ no minimum-FLOP algorithm is
among the fastest, with a 10% time-score threshold).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulatedBackend, classify, evaluate_instance, get_expression


def study_instance(expression_name: str, instance: tuple[int, ...]) -> None:
    backend = SimulatedBackend()
    expression = get_expression(expression_name)
    algorithms = expression.algorithms()

    print(f"\n=== {expression_name} at instance {instance} ===")
    evaluation = evaluate_instance(backend, algorithms, instance)

    fmin = min(evaluation.flops)
    tmin = min(evaluation.seconds)
    print(f"{'algorithm':<30} {'GFLOPs':>9} {'time (ms)':>10}  notes")
    for name, flops, seconds in zip(
        evaluation.algorithm_names, evaluation.flops, evaluation.seconds
    ):
        notes = []
        if flops == fmin:
            notes.append("cheapest")
        if seconds <= tmin * (1 + 1e-12):
            notes.append("fastest")
        print(
            f"{name:<30} {flops / 1e9:>9.3f} {seconds * 1e3:>10.3f}  "
            f"{' + '.join(notes)}"
        )

    verdict = classify(evaluation, threshold=0.10)
    if verdict.is_anomaly:
        print(
            f"--> ANOMALY: the fastest algorithm beats the best "
            f"minimum-FLOP algorithm by {verdict.time_score:.1%} "
            f"while spending {verdict.flop_score:.1%} more FLOPs."
        )
    else:
        print(
            f"--> not an anomaly (time score {verdict.time_score:.1%}): "
            "picking by FLOPs is fine here."
        )


def main() -> None:
    # A benign chain instance: FLOPs discriminate correctly.
    study_instance("chain4", (600, 400, 500, 450, 550))
    # An A·Aᵀ·B instance deep in an anomalous region: the SYRK-based
    # algorithms are the cheapest but far from fastest.
    study_instance("aatb", (92, 1095, 323))


if __name__ == "__main__":
    main()
