#!/usr/bin/env python
"""Symbolic sizes: what can a compiler decide before run time?

The paper's motivating setting (§5): some operand sizes are unknown at
compile time, so algorithm selection "must be delayed until run time".
This example shows what *can* be decided early with the symbolic FLOP
machinery:

1. print each algorithm's FLOP count as an explicit polynomial in the
   instance dimensions;
2. with two of the three ``A·Aᵀ·B`` sizes fixed and ``d0`` symbolic,
   compute the set of algorithms that can be FLOP-cheapest for *some*
   value of ``d0`` — everything else can be discarded at compile time;
3. locate the abrupt-change positions of the kernels' performance
   profiles (the paper conjectures these localise severe-anomaly
   regions) so the run-time dispatcher knows where FLOPs alone are
   untrustworthy.

Run:  python examples/symbolic_sizes.py
"""

from __future__ import annotations

from repro import SimulatedBackend, get_expression
from repro.core.symbolic import flop_polynomial, possibly_cheapest
from repro.kernels.types import KernelName
from repro.profiles.abrupt import find_abrupt_changes, scan_efficiency

NAMES = ("d0", "d1", "d2")
FIXED = {1: 400, 2: 400}  # d1, d2 known at compile time; d0 symbolic
BOUNDS_LO, BOUNDS_HI = (20, 20, 20), (1200, 1200, 1200)


def main() -> None:
    aatb = get_expression("aatb")
    algorithms = aatb.algorithms()

    print("FLOP polynomials (A ∈ R^{d0×d1}, B ∈ R^{d0×d2}):")
    for algorithm in algorithms:
        poly = flop_polynomial(algorithm)
        print(f"  {algorithm.name:<24} {poly.render(NAMES)}")

    result = possibly_cheapest(algorithms, FIXED, BOUNDS_LO, BOUNDS_HI)
    print(
        f"\nwith d1={FIXED[1]}, d2={FIXED[2]} fixed and d0 ∈ "
        f"[{BOUNDS_LO[0]}, {BOUNDS_HI[0]}] symbolic:"
    )
    keep = [algorithms[i].name for i in result.certain]
    drop = [
        a.name for i, a in enumerate(algorithms) if i not in result.candidates
    ]
    print(f"  can be cheapest for some d0 : {', '.join(keep)}")
    print(f"  never cheapest (discard now): {', '.join(drop) or '(none)'}")
    print(f"  analysis exact: {result.exact}")

    print(
        "\nabrupt kernel-efficiency changes along d0 "
        "(candidate severe-anomaly frontiers, paper §5):"
    )
    backend = SimulatedBackend()
    for kernel, base in (
        (KernelName.SYRK, (0, FIXED[1])),
        (KernelName.SYMM, (0, FIXED[2])),
        (KernelName.GEMM, (0, FIXED[1], 0)),
    ):
        dims = tuple(b if b else 600 for b in base)
        series = scan_efficiency(
            backend, kernel, dims, axis=0, positions=range(200, 1100, 10)
        )
        changes = find_abrupt_changes(
            series, kernel=kernel, axis=0, threshold=0.08
        )
        spots = ", ".join(
            f"d0≈{c.position} ({c.before:.2f}→{c.after:.2f})" for c in changes
        )
        print(f"  {kernel.value:<5} {spots or '(none — gradual only)'}")

    print(
        "\nA run-time dispatcher therefore needs only: the shortlist "
        "above, plus a profiled-time tie-break near the abrupt-change "
        "frontiers (see examples/discriminant_upgrade.py)."
    )


if __name__ == "__main__":
    main()
