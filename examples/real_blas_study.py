#!/usr/bin/env python
"""Run the paper's methodology on this machine's real BLAS.

Everything else in this repository uses the deterministic simulated
machine; this example demonstrates that the identical experiment code
runs against actual ``dgemm``/``dsyrk``/``dsymm`` through SciPy, with
cache flushing and median-of-k timing — the paper's protocol.

Sizes are kept small so the example finishes in well under a minute;
on a quiesced many-core machine, raise ``BOX_HIGH`` and ``REPS`` to
hunt for real anomalies (the interesting region on most machines
needs sizes of several hundred).

Run:  python examples/real_blas_study.py
"""

from __future__ import annotations

import random

from repro import classify, evaluate_instance, get_expression
from repro.backends.real import RealBlasBackend
from repro.core.searchspace import Box

BOX_LOW, BOX_HIGH = 64, 320
N_INSTANCES = 8
REPS = 5
SEED = 3


def main() -> None:
    backend = RealBlasBackend(reps=REPS, flush_bytes=32 * 1024 * 1024)
    aatb = get_expression("aatb")
    algorithms = aatb.algorithms()

    # Sanity: every algorithm must compute the same product on real BLAS.
    check_instance = (96, 64, 48)
    for algorithm in algorithms:
        deviation = backend.verify_algorithm(algorithm, check_instance)
        assert deviation < 1e-10, (algorithm.name, deviation)
    print("correctness: all 5 algorithms agree with the NumPy reference\n")

    print(
        f"practical peak (best measured GEMM): "
        f"{backend.peak_flops / 1e9:.1f} GFLOP/s\n"
    )

    rng = random.Random(SEED)
    box = Box((BOX_LOW,) * 3, (BOX_HIGH,) * 3)
    print(f"{'instance':>18} {'cheapest':>24} {'fastest':>24} "
          f"{'time score':>11}")
    anomalies = 0
    for _ in range(N_INSTANCES):
        instance = box.sample(rng)
        evaluation = evaluate_instance(backend, algorithms, instance)
        verdict = classify(evaluation, threshold=0.10)
        anomalies += verdict.is_anomaly
        print(
            f"{str(instance):>18} "
            f"{verdict.cheapest[0].split(':')[1]:>24} "
            f"{verdict.fastest[0].split(':')[1]:>24} "
            f"{verdict.time_score:>10.1%}"
            + ("  <-- anomaly" if verdict.is_anomaly else "")
        )

    print(
        f"\n{anomalies}/{N_INSTANCES} instances anomalous at threshold 10% "
        "on this host/BLAS combination."
    )
    print(
        "note: host timing is noisy — unlike the simulated backend, "
        "re-runs will differ; the paper used 10 pinned cores and 10 "
        "repetitions per measurement."
    )


if __name__ == "__main__":
    main()
