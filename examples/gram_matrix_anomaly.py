#!/usr/bin/env python
"""Gram-matrix workload: mapping an anomalous region of ``A Aᵀ B``.

Scenario: an iterative solver repeatedly applies the Gram-like operator
``X := A Aᵀ B`` where ``A`` holds ``d1`` samples of a ``d0``-dimensional
feature (wide data, ``d1 ≫ d0``) and ``B`` is a block of ``d2``
vectors.  A FLOP-minimising library picks the SYRK-based evaluation —
this example shows where that choice is wrong and by how much, by
traversing dimension ``d0`` through an anomalous region exactly as the
paper's Experiment 2 does.

Run:  python examples/gram_matrix_anomaly.py
"""

from __future__ import annotations

from repro import SimulatedBackend, get_expression, paper_box
from repro.analysis.traces import trace_line

ORIGIN = (92, 1095, 323)  # an anomaly found by Experiment 1
DIM = 0  # traverse d0 (the feature dimension)


def main() -> None:
    backend = SimulatedBackend()
    aatb = get_expression("aatb")
    box = paper_box(3)

    traces = trace_line(
        backend, aatb, ORIGIN, DIM, box, half_points=12, threshold=0.05
    )

    print(f"Traversing d{DIM} through the anomaly at {ORIGIN}")
    print(f"(other dims fixed: d1={ORIGIN[1]}, d2={ORIGIN[2]})\n")

    names = [t.algorithm_name for t in traces.traces]
    short = [n.split(":")[1] for n in names]
    header = f"{'d0':>6} | " + " ".join(f"{s:>15}" for s in short) + " | anomaly"
    print(header)
    print("-" * len(header))

    for i, position in enumerate(traces.positions):
        cells = []
        for trace in traces.traces:
            point = trace.points[i]
            mark = {"both": "*", "cheapest": "c", "fastest": "f"}.get(
                point.status, " "
            )
            cells.append(f"{point.total_efficiency:>13.3f}{mark:>2}")
        flag = "ANOMALY" if position in traces.anomalous_positions else ""
        print(f"{position:>6} | " + " ".join(cells) + f" | {flag}")

    print(
        "\nlegend: efficiency = algorithm FLOPs / (time x machine peak); "
        "c = cheapest (min FLOPs), f = fastest, * = both"
    )
    n_anom = len(traces.anomalous_positions)
    print(
        f"\n{n_anom} of {len(traces.positions)} sampled positions are "
        "anomalous: along this stretch a FLOP-minimising library "
        "(Linnea, Armadillo, Julia) runs the SYRK-based algorithm even "
        "though a GEMM-based one is >5% faster."
    )


if __name__ == "__main__":
    main()
