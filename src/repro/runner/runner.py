"""StudyRunner: fan the study matrix out across worker processes.

Each study — the full experiment pipeline for one
``(scale, seed, expression, box)`` key — is deterministic and
independent of every other, so the matrix partitions trivially across
a ``ProcessPoolExecutor``.  Workers communicate *only* through the
shared :class:`repro.figures.cache.StudyStore`: a worker first probes
the store (another worker, or a previous run, may already have the
key), computes on a miss via
:func:`repro.figures.common.compute_study_results`, and persists the
result.  Because the pipeline is deterministic, a parallel run and a
sequential run of the same matrix leave byte-identical payloads in the
store, whatever the partitioning or completion order.

Failures are contained per study: a worker returns a ``failed``
outcome with the error message instead of poisoning the pool.  Two
further hardening layers on top of that:

* a store *load* error (corrupted row, unreadable database) falls back
  to recomputation — loads are best-effort per the
  :mod:`repro.figures.cache` contract, so a broken cache entry must
  never fail an otherwise-computable study.  The load error is
  surfaced on the outcome's ``error`` field next to its non-failed
  status.
* a worker process dying outright (OOM kill, segfault) breaks the
  whole ``ProcessPoolExecutor``; :meth:`StudyRunner.run` catches the
  resulting ``BrokenProcessPool`` instead of losing the run.  Keys
  whose results already reached the store are recognised by the
  sequential retry's store probe (they come back ``cached``); only the
  genuinely missing keys recompute, in-process, where a crash is
  attributable to its study.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.figures.cache import StudyKey, make_store
from repro.figures.common import FigureConfig, compute_study_results
from repro.resilience import RetryPolicy, faults

#: Backoff schedule of the sequential resubmission after a broken
#: worker pool (attempts come from :attr:`StudyRunner.retries`).
RESUBMIT_RETRY = RetryPolicy(
    attempts=2, base_delay=0.05, multiplier=2.0, max_delay=1.0
)


@dataclass(frozen=True)
class StudyOutcome:
    """What happened to one study key during a run."""

    key: StudyKey
    status: str  # "computed" | "cached" | "failed"
    seconds: float
    error: str = ""
    #: How many in-process attempts this outcome took (one unless the
    #: broken-pool salvage path retried the key).
    attempts: int = 1


@dataclass(frozen=True)
class RunReport:
    """One :meth:`StudyRunner.run` summarized."""

    outcomes: Tuple[StudyOutcome, ...]
    wall_seconds: float
    jobs: int
    store_kind: str
    cache_dir: str

    def count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def ok(self) -> bool:
        return self.count("failed") == 0

    def summary(self) -> str:
        return (
            f"{len(self.outcomes)} studies "
            f"({self.count('computed')} computed, "
            f"{self.count('cached')} cached, "
            f"{self.count('failed')} failed) in "
            f"{self.wall_seconds:.2f}s wall with {self.jobs} job(s) "
            f"({self.store_kind} store at {self.cache_dir})"
        )


def study_matrix(
    scales: Sequence[str] = ("quick",),
    seeds: Sequence[int] = (0,),
    expressions: Optional[Sequence[str]] = None,
    box: str = "paper_box",
    schedule: str = "default",
    variant: str = "default",
    extras: Iterable[StudyKey] = (),
) -> Tuple[StudyKey, ...]:
    """The full study matrix: scales × seeds × expressions, + extras.

    ``expressions`` defaults to every registered expression.
    ``schedule`` (a :data:`repro.machine.machine.SCHEDULES` name)
    selects the machine's step-schedule policy for every matrix key —
    the schedule-as-scenario axis — and ``variant`` (a
    :data:`repro.ablation.components.STUDY_VARIANTS` name) the
    ablation axis.  Extras (arbitrary user-supplied keys, e.g. a
    ``chain6`` study or a ``wide_box`` variant) are appended;
    duplicates are dropped while preserving first-occurrence order, so
    a matrix is safe to feed to :meth:`StudyRunner.run` directly.
    """
    from repro.expressions.registry import known_expressions

    if expressions is None:
        expressions = known_expressions()
    keys = [
        StudyKey(
            scale=scale,
            seed=int(seed),
            expression=name,
            box=box,
            schedule=schedule,
            variant=variant,
        )
        for scale in scales
        for seed in seeds
        for name in expressions
    ]
    keys.extend(extras)
    seen = set()
    unique = []
    for key in keys:
        if key not in seen:
            seen.add(key)
            unique.append(key)
    return tuple(unique)


def run_study(key: StudyKey, store_kind: str, cache_dir: str) -> StudyOutcome:
    """Compute-or-load one study through the shared store.

    This is the worker body — a module-level function so the process
    pool can pickle it by qualified name under any start method.  It
    never touches the in-process study memo: results flow through the
    store only, which is what makes parallel and sequential runs
    indistinguishable byte-for-byte.
    """
    start = time.perf_counter()
    notes = []
    try:
        kind = faults.inject("worker.run")
        if kind == "crash":
            # A hard worker death (the injected stand-in for an OOM
            # kill or segfault) — only meaningful inside a pool child;
            # in the parent it would take the whole run down, which no
            # real worker crash can do.
            if multiprocessing.parent_process() is not None:
                os._exit(3)
        elif kind == "delay":
            time.sleep(faults.delay_seconds())
        elif kind is not None:
            raise RuntimeError(f"injected fault: worker.run {kind}")
        with make_store(store_kind, Path(cache_dir)) as store:
            try:
                loaded = store.load(key)
            except Exception as exc:
                # Loads are best-effort (see repro.figures.cache): a
                # corrupted entry or unreadable database is a cache
                # miss with a note, never a lost study.
                loaded = None
                notes.append(
                    f"store load failed, recomputed "
                    f"({type(exc).__name__}: {exc})"
                )
            if loaded is not None:
                return StudyOutcome(
                    key, "cached", time.perf_counter() - start
                )
            config = FigureConfig(
                scale=key.scale,
                seed=key.seed,
                box=key.box,
                schedule=key.schedule,
                variant=key.variant,
            )
            results = compute_study_results(config, key.expression)
            try:
                store.save(key, *results)
            except Exception as exc:
                # Saves are best-effort too: the study is computed and
                # usable, it just could not be persisted this time.
                notes.append(
                    f"store save failed ({type(exc).__name__}: {exc})"
                )
        return StudyOutcome(
            key,
            "computed",
            time.perf_counter() - start,
            error="; ".join(notes),
        )
    except Exception as exc:  # contained per study
        return StudyOutcome(
            key,
            "failed",
            time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )


def _run_study_args(args: Tuple[StudyKey, str, str]) -> StudyOutcome:
    return run_study(*args)


@dataclass
class StudyRunner:
    """Partition a study matrix across processes, collect via the store."""

    cache_dir: Path
    store: str = "json"
    jobs: int = 1
    extras: Tuple[StudyKey, ...] = field(default_factory=tuple)
    #: In-process attempts per key on the broken-pool salvage path.
    retries: int = 2

    def __post_init__(self) -> None:
        self.cache_dir = Path(self.cache_dir)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.retries < 1:
            raise ValueError("retries must be >= 1")
        # Fail fast on an unknown backend, before any worker spawns.
        make_store(self.store, self.cache_dir).close()

    def run(self, keys: Optional[Sequence[StudyKey]] = None) -> RunReport:
        """Run every study of ``keys`` (default: the full matrix)."""
        if keys is None:
            keys = study_matrix(extras=self.extras)
        keys = tuple(keys)
        args = [(key, self.store, str(self.cache_dir)) for key in keys]
        start = time.perf_counter()
        if self.jobs == 1 or len(keys) <= 1:
            outcomes = tuple(_run_study_args(a) for a in args)
        else:
            outcomes = self._run_parallel(args)
        return RunReport(
            outcomes=outcomes,
            wall_seconds=time.perf_counter() - start,
            jobs=self.jobs,
            store_kind=self.store,
            cache_dir=str(self.cache_dir),
        )

    def _run_parallel(
        self, args: Sequence[Tuple[StudyKey, str, str]]
    ) -> Tuple[StudyOutcome, ...]:
        """Fan out across a process pool, surviving worker crashes.

        A worker dying outright (OOM kill, segfault) poisons the whole
        ``ProcessPoolExecutor``: every pending future raises
        ``BrokenProcessPool`` and, without handling, the completed
        studies' outcomes would be lost with it.  Completed results are
        never actually lost — workers communicate through the store —
        so each broken key is resubmitted sequentially via
        :func:`run_study` under the shared retry policy
        (:data:`RESUBMIT_RETRY` backoff, :attr:`retries` attempts),
        whose store probe reports the survivors as ``cached`` and
        recomputes only the genuinely missing keys.  Each salvaged
        outcome records how many attempts it took.
        """
        results: Dict[StudyKey, StudyOutcome] = {}
        try:
            workers = min(self.jobs, len(args))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    (a[0], pool.submit(_run_study_args, a)) for a in args
                ]
                for key, future in futures:
                    try:
                        results[key] = future.result()
                    except BrokenProcessPool:
                        pass  # retried sequentially below
        except BrokenProcessPool:
            pass  # the pool can also break during submission or shutdown
        policy = replace(RESUBMIT_RETRY, attempts=self.retries)
        for key, store_kind, cache_dir in args:
            if key in results:
                continue
            attempts = 0
            outcome = None
            for attempt in range(policy.attempts):
                if attempt:
                    time.sleep(policy.backoff(key.slug, attempt - 1))
                attempts = attempt + 1
                outcome = run_study(key, store_kind, cache_dir)
                if outcome.status != "failed":
                    break
            assert outcome is not None
            note = (
                f"retried sequentially after worker pool broke "
                f"(attempt {attempts}/{policy.attempts})"
            )
            error = f"{outcome.error}; {note}" if outcome.error else note
            results[key] = replace(outcome, error=error, attempts=attempts)
        return tuple(results[a[0]] for a in args)
