"""CLI for the parallel multi-study runner.

Regenerate the quick-scale study matrix across 4 processes into a
shared SQLite store::

    PYTHONPATH=src python -m repro.runner \
        --scale quick --jobs 4 --store sqlite --cache-dir .study-cache

A later benchmark run pointed at the same store
(``REPRO_CACHE_DIR=.study-cache REPRO_CACHE_STORE=sqlite``) finds
every study warm.  Extra studies beyond the registered-expression
matrix ride along via ``--extra scale:seed:expression[:box]``.

``--abundance`` widens the matrix to every named box
(``paper_box``/``wide_box``/``huge_box``) and prints the
anomaly-abundance-vs-search-volume figure from the freshly warmed
store.

``--schedule`` selects the machine's step-schedule policy for the
whole matrix (``default``/``min-interference``/``max-interference``,
case-insensitive) — non-default schedules are distinct study scenarios
with their own store entries.

``--ablation`` runs the baseline-plus-one-off ablation matrix instead
of the plain matrix (see :mod:`repro.ablation`): every registered
component — or the ``--ablation-components`` subset — is flipped off
one at a time, and the ranked science-delta report is printed (and
written to ``--report-dir`` when given).  Ablation takes exactly one
scale and one seed, and owns the schedule axis itself, so
``--schedule``/``--abundance``/``--extra`` are usage errors with it.

Expression names, boxes, scales and schedules are validated up front
against
:func:`repro.expressions.registry.is_known_expression` and the named
tables — a typo is a usage error here, not a KeyError traceback from a
worker process.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

from repro.ablation.cli import parse_components as _parse_components
from repro.core.searchspace import NAMED_BOXES
from repro.expressions.registry import (
    expression_name_help,
    is_known_expression,
)
from repro.machine.machine import SCHEDULES
from repro.figures.cache import (
    CACHE_DIR_ENV,
    STORE_KINDS,
    StudyKey,
    StudyStore,
    make_store,
)
from repro.runner.runner import StudyRunner, study_matrix

_SCALES = ("quick", "full")


def _validated_expression(name: str) -> str:
    name = name.strip()
    if not is_known_expression(name):
        raise argparse.ArgumentTypeError(
            f"unknown expression {name!r}; {expression_name_help()}"
        )
    return name


def _validated_store(kind: str) -> str:
    """Store-backend names get the same up-front treatment as
    expression/scale/box names: a typo is a usage error here, not a
    per-study failure from inside a worker process."""
    normalized = kind.strip().lower()
    if normalized not in STORE_KINDS:
        raise argparse.ArgumentTypeError(
            f"unknown store {kind!r}; known: {'/'.join(STORE_KINDS)}"
        )
    return normalized


def _validated_schedule(name: str) -> str:
    """Schedule names get the same up-front treatment as stores and
    expressions: a typo is a usage error listing the known schedules,
    not a ValueError traceback from MachineModel inside a worker."""
    normalized = name.strip().lower()
    if normalized not in SCHEDULES:
        raise argparse.ArgumentTypeError(
            f"unknown schedule {name!r}; known: {'/'.join(SCHEDULES)}"
        )
    return normalized


def _parse_extra(raw: str) -> StudyKey:
    parts = raw.split(":")
    if len(parts) not in (3, 4):
        raise argparse.ArgumentTypeError(
            f"--extra takes scale:seed:expression[:box], got {raw!r}"
        )
    scale, seed, expression = parts[0], parts[1], parts[2]
    box = parts[3] if len(parts) == 4 else "paper_box"
    if scale not in _SCALES:
        raise argparse.ArgumentTypeError(
            f"--extra scale must be one of {'/'.join(_SCALES)}, "
            f"got {scale!r}"
        )
    try:
        seed_value = int(seed)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--extra seed must be an integer, got {seed!r}"
        ) from None
    if box not in NAMED_BOXES:
        raise argparse.ArgumentTypeError(
            f"--extra box must be one of "
            f"{'/'.join(sorted(NAMED_BOXES))}, got {box!r}"
        )
    return StudyKey(
        scale=scale,
        seed=seed_value,
        expression=_validated_expression(expression),
        box=box,
    )


def _parse_seeds(raw: str) -> List[int]:
    try:
        seeds = [int(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--seeds takes comma-separated integers, got {raw!r}"
        ) from None
    if not seeds:
        # An all-blank value would silently produce an empty matrix
        # and a successful "0 studies" run.
        raise argparse.ArgumentTypeError(
            f"--seeds needs at least one integer, got {raw!r}"
        )
    return seeds


def _positive_jobs(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs takes a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        # Usage error here, not a raw ValueError traceback from
        # StudyRunner.__post_init__.
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1, got {value}"
        )
    return value


def _positive_retries(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--retries takes a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--retries must be >= 1, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scale",
        action="append",
        choices=_SCALES,
        help="study scale; repeatable (default: quick)",
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=[0],
        help="comma-separated machine/experiment seeds (default: 0)",
    )
    parser.add_argument(
        "--expressions",
        default=None,
        help="comma-separated expression names "
        "(default: all registered expressions)",
    )
    parser.add_argument(
        "--box",
        default="paper_box",
        choices=tuple(sorted(NAMED_BOXES)),
        help="named exploration box (default: paper_box)",
    )
    parser.add_argument(
        "--schedule",
        type=_validated_schedule,
        default=SCHEDULES[0],
        metavar="{" + ",".join(SCHEDULES) + "}",
        help="machine step-schedule policy for every matrix study "
        "(default: default; case-insensitive)",
    )
    parser.add_argument(
        "--abundance",
        action="store_true",
        help="also run every named box and print the "
        "anomaly-abundance-vs-search-volume figure",
    )
    parser.add_argument(
        "--ablation",
        action="store_true",
        help="run the baseline-plus-one-off ablation matrix and print "
        "the ranked science-delta report (see python -m repro.ablation)",
    )
    parser.add_argument(
        "--ablation-components",
        type=_parse_components,
        default=None,
        metavar="NAME[,NAME...]",
        help="with --ablation: ablate only these components "
        "(default: the whole registry)",
    )
    parser.add_argument(
        "--report-dir",
        default=None,
        metavar="DIR",
        help="with --ablation: also write the JSON + markdown report "
        "artefacts into DIR",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_jobs,
        default=1,
        help="worker processes (default: 1 = sequential in-process)",
    )
    parser.add_argument(
        "--store",
        type=_validated_store,
        default=STORE_KINDS[0],
        metavar="{" + ",".join(STORE_KINDS) + "}",
        help="study-store backend shared by all workers (default: json)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"store directory, or host:port with --store remote "
        f"(default: ${CACHE_DIR_ENV})",
    )
    parser.add_argument(
        "--retries",
        type=_positive_retries,
        default=2,
        metavar="N",
        help="in-process attempts per key when salvaging a broken "
        "worker pool (default: 2)",
    )
    parser.add_argument(
        "--extra",
        action="append",
        type=_parse_extra,
        default=[],
        metavar="SCALE:SEED:EXPR[:BOX]",
        help="extra study beyond the matrix; repeatable",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the study matrix and exit without running",
    )
    return parser


def _render_abundance(
    store: StudyStore,
    scales: Sequence[str],
    seeds: Sequence[int],
    expressions: Sequence[str],
) -> Tuple[str, bool]:
    """The abundance figure(s) from a warmed store; (text, complete).

    ``expressions`` must be the same list the warm-up matrix was built
    from — an in-process run may register pattern-family ``--extra``
    expressions into the registry mid-run, so re-reading
    ``known_expressions()`` here would demand studies that were never
    warmed.
    """
    from repro.figures import abundance
    from repro.figures.common import FigureConfig

    blocks: List[str] = []
    complete = True

    for scale in scales:
        for seed in seeds:

            def load_search(name: str, box: str):
                loaded = store.load(
                    StudyKey(
                        scale=scale, seed=seed, expression=name, box=box
                    )
                )
                if loaded is None:
                    raise LookupError(
                        f"study {scale}/seed{seed}/{name}/{box} missing "
                        "from the store"
                    )
                return loaded["search"]

            try:
                data = abundance.data_from_searches(
                    FigureConfig(scale=scale, seed=seed),
                    load_search,
                    expressions,
                )
            except LookupError as exc:
                blocks.append(f"abundance figure skipped: {exc}")
                complete = False
                continue
            blocks.append(abundance.render(data))
    return "\n\n".join(blocks), complete


def _run_ablation(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    scales: Tuple[str, ...],
    expressions: Optional[List[str]],
    cache_dir: str,
) -> int:
    """Dispatch ``--ablation`` to the shared ablation CLI body.

    The ablation matrix is one (scale, seed, box) with the component
    axis swept, and components own the schedule/variant knobs — the
    plain matrix's multi-valued and schedule flags are usage errors.
    """
    from repro.ablation.cli import execute
    from repro.ablation.harness import DEFAULT_EXPRESSIONS

    if args.abundance or args.extra:
        parser.error("--ablation cannot be combined with --abundance/--extra")
    if args.schedule != SCHEDULES[0]:
        parser.error(
            "--ablation owns the schedule axis (via the schedule-* "
            "components); drop --schedule"
        )
    if len(scales) != 1:
        parser.error("--ablation takes exactly one --scale")
    if len(args.seeds) != 1:
        parser.error("--ablation takes exactly one seed in --seeds")
    return execute(
        scale=scales[0],
        seed=args.seeds[0],
        box=args.box,
        expressions=(
            tuple(expressions)
            if expressions is not None
            else DEFAULT_EXPRESSIONS
        ),
        components=args.ablation_components,
        cache_dir=cache_dir,
        store=args.store,
        jobs=args.jobs,
        retries=args.retries,
        report_dir=args.report_dir,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        print(
            f"error: no store directory; pass --cache-dir or set "
            f"{CACHE_DIR_ENV}",
            file=sys.stderr,
        )
        return 2
    expressions = None
    if args.expressions is not None:
        expressions = []
        for name in args.expressions.split(","):
            if not name.strip():
                continue
            try:
                expressions.append(_validated_expression(name))
            except argparse.ArgumentTypeError as exc:
                parser.error(f"--expressions: {exc}")
    scales = tuple(args.scale) if args.scale else ("quick",)
    if args.ablation:
        return _run_ablation(parser, args, scales, expressions, cache_dir)
    if args.ablation_components is not None or args.report_dir is not None:
        parser.error(
            "--ablation-components/--report-dir require --ablation"
        )
    extras = tuple(args.extra)
    abundance_names: Tuple[str, ...] = ()
    if args.abundance:
        from repro.expressions.registry import known_expressions
        from repro.figures.abundance import BOX_ORDER

        # Snapshot the name list now: running pattern-family extras
        # in process registers new expressions, and the figure must
        # cover exactly what was warmed.
        names = tuple(
            expressions if expressions is not None else known_expressions()
        )
        abundance_names = names
        extras += tuple(
            StudyKey(scale=scale, seed=seed, expression=name, box=box)
            for scale in scales
            for seed in args.seeds
            for name in names
            for box in BOX_ORDER
        )
    keys = study_matrix(
        scales=scales,
        seeds=args.seeds,
        expressions=expressions,
        box=args.box,
        schedule=args.schedule,
        extras=extras,
    )
    if args.list:
        for key in keys:
            print(key.slug)
        return 0
    runner = StudyRunner(
        cache_dir=cache_dir,
        store=args.store,
        jobs=args.jobs,
        retries=args.retries,
    )
    report = runner.run(keys)
    for outcome in report.outcomes:
        line = (
            f"[{outcome.status:>8}] {outcome.key.slug:<40} "
            f"{outcome.seconds:7.2f}s"
        )
        if outcome.error:
            line += f"  {outcome.error}"
        print(line)
    print(report.summary())
    ok = report.ok
    if args.abundance:
        with make_store(args.store, cache_dir) as store:
            text, complete = _render_abundance(
                store, scales, args.seeds, abundance_names
            )
        print()
        print(text)
        ok = ok and complete
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
