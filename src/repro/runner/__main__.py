"""CLI for the parallel multi-study runner.

Regenerate the quick-scale study matrix across 4 processes into a
shared SQLite store::

    PYTHONPATH=src python -m repro.runner \
        --scale quick --jobs 4 --store sqlite --cache-dir .study-cache

A later benchmark run pointed at the same store
(``REPRO_CACHE_DIR=.study-cache REPRO_CACHE_STORE=sqlite``) finds
every study warm.  Extra studies beyond the registered-expression
matrix ride along via ``--extra scale:seed:expression[:box]``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.searchspace import NAMED_BOXES
from repro.figures.cache import (
    CACHE_DIR_ENV,
    STORE_KINDS,
    StudyKey,
)
from repro.runner.runner import StudyRunner, study_matrix


def _parse_extra(raw: str) -> StudyKey:
    parts = raw.split(":")
    if len(parts) not in (3, 4):
        raise argparse.ArgumentTypeError(
            f"--extra takes scale:seed:expression[:box], got {raw!r}"
        )
    scale, seed, expression = parts[0], parts[1], parts[2]
    box = parts[3] if len(parts) == 4 else "paper_box"
    try:
        seed_value = int(seed)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--extra seed must be an integer, got {seed!r}"
        ) from None
    return StudyKey(
        scale=scale, seed=seed_value, expression=expression, box=box
    )


def _parse_seeds(raw: str) -> List[int]:
    try:
        return [int(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--seeds takes comma-separated integers, got {raw!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scale",
        action="append",
        choices=("quick", "full"),
        help="study scale; repeatable (default: quick)",
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=[0],
        help="comma-separated machine/experiment seeds (default: 0)",
    )
    parser.add_argument(
        "--expressions",
        default=None,
        help="comma-separated expression names "
        "(default: all registered expressions)",
    )
    parser.add_argument(
        "--box",
        default="paper_box",
        choices=tuple(sorted(NAMED_BOXES)),
        help="named exploration box (default: paper_box)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default: 1 = sequential in-process)",
    )
    parser.add_argument(
        "--store",
        default=STORE_KINDS[0],
        choices=STORE_KINDS,
        help="study-store backend shared by all workers (default: json)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"store directory (default: ${CACHE_DIR_ENV})",
    )
    parser.add_argument(
        "--extra",
        action="append",
        type=_parse_extra,
        default=[],
        metavar="SCALE:SEED:EXPR[:BOX]",
        help="extra study beyond the matrix; repeatable",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the study matrix and exit without running",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        print(
            f"error: no store directory; pass --cache-dir or set "
            f"{CACHE_DIR_ENV}",
            file=sys.stderr,
        )
        return 2
    expressions = (
        [name for name in args.expressions.split(",") if name.strip()]
        if args.expressions is not None
        else None
    )
    keys = study_matrix(
        scales=tuple(args.scale) if args.scale else ("quick",),
        seeds=args.seeds,
        expressions=expressions,
        box=args.box,
        extras=args.extra,
    )
    if args.list:
        for key in keys:
            print(key.slug)
        return 0
    runner = StudyRunner(
        cache_dir=cache_dir, store=args.store, jobs=args.jobs
    )
    report = runner.run(keys)
    for outcome in report.outcomes:
        line = (
            f"[{outcome.status:>8}] {outcome.key.slug:<40} "
            f"{outcome.seconds:7.2f}s"
        )
        if outcome.error:
            line += f"  {outcome.error}"
        print(line)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
