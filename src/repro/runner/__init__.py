"""Parallel multi-study runner (``python -m repro.runner``).

The paper's artefact suite is embarrassingly parallel: every figure
and table is a view of an independent ``(expression, scale, seed,
box)`` study.  :class:`StudyRunner` enumerates the full study matrix,
partitions it across a ``concurrent.futures.ProcessPoolExecutor``, and
collects results through the shared :class:`repro.figures.cache.StudyStore`
— so a full-scale regeneration saturates every core instead of one,
and a later benchmark run (or another machine sharing the store) finds
every study warm.
"""

from repro.runner.runner import (
    RunReport,
    StudyOutcome,
    StudyRunner,
    study_matrix,
)

__all__ = ["RunReport", "StudyOutcome", "StudyRunner", "study_matrix"]
