"""Per-plan codegen: specialized batch evaluators, compiled once.

The study hot loop evaluates every plan's FLOP polynomial and
kernel-call list millions of times; interpreting the ``Plan`` step
list per batch pays Python dispatch for work that is fixed at compile
time.  This module emits — per *plan structure* — three specialized
functions as Python source and ``compile()``s each exactly once:

* a **batch FLOP evaluator**: the step list collapsed into one
  closed-form NumPy column expression (constants folded, common
  factors extracted by :meth:`repro.expressions.shapes.SizeExpr.render`);
* a **kernel-call-batch builder**: shape indices resolved at codegen
  time into a single fancy-index gather plus per-call column slices,
  with :class:`~repro.kernels.types.KernelCallBatch` objects built
  through the trusted-constructor path (the emitted shapes are correct
  by construction, so the per-call validation is skipped);
* a **NumPy/BLAS executor**: the step loop unrolled into straight-line
  calls of the same :mod:`repro.expressions.blas` wrappers in the same
  order as ``Plan.execute`` (bit-identical results), with temp-buffer
  slots preassigned by liveness so intermediate arrays are dropped as
  early as the interpreter would drop them.  When the plan scheduler
  is enabled (the default; see :mod:`repro.expressions.scheduler`) the
  emitted body additionally applies its buffer-reuse, ADD-fusion and
  in-place-fill decisions — still bit-identical, cached separately per
  scheduler mode.

Compiled code is cached two ways: per structural *plan signature*
(CSE-equal plans — identical leaves and steps — share all three
functions) and, for the FLOP evaluator, per canonical FLOP polynomial
(plans that differ only in association share one evaluator object,
which lets ``core.classify.batch_flops`` dedupe whole evaluations by
function identity).

``REPRO_NO_CODEGEN=1`` disables the layer: the environment is checked
lazily on every use, so flipping it at runtime falls back to (or
re-enables from) the interpreted path without rebuilding registries —
and a disabled process never compiles anything.

Adding a kernel: teach the IR/compiler its lowering, then register one
line in :data:`EXECUTOR_EMITTERS` mapping the new
:class:`~repro.kernels.types.KernelName` to a function
``(plan, step, ref_src) -> "RHS source"`` (see the existing five).
The FLOP and call builders need nothing — they are derived from the
kernel's arity and FLOP formula.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.envknobs import scheduler_enabled
from repro.expressions import blas
from repro.expressions.ir import AddExpr
from repro.expressions.scheduler import (
    PlanDecisions,
    schedule_decisions,
    scheduled_execute,
)
from repro.expressions.shapes import SizeExpr, dim_symbols
from repro.kernels.types import KernelCallBatch, KernelName

#: (plan signature, scheduled?) → compiled :class:`PlanCode`.  The
#: scheduled and plain executors differ (buffer reuse, fused ADDs,
#: in-place fills), so each mode compiles its own entry; flipping
#: ``REPRO_NO_SCHEDULER`` at runtime switches between them lazily.
_PLAN_CACHE: Dict[tuple, "PlanCode"] = {}

#: Canonical FLOP-polynomial key → (compiled evaluator, its source).
_FLOPS_FNS: Dict[tuple, Tuple[Callable[[np.ndarray], np.ndarray], str]] = {}

_STATS = {
    "plans_compiled": 0,
    "plan_cache_hits": 0,
    "flops_fns_shared": 0,
    "flops_batches": 0,
    "call_batches": 0,
}


# The enabled probe runs twice per algorithm per batch (flops + calls)
# on the study hot loop; ``os.environ.get`` costs ~0.8us through the
# Mapping machinery, so read CPython's raw environ dict when it is
# exposed (keys/values are fsencoded bytes on posix).  Mutations via
# ``os.environ[...]``/``monkeypatch.setenv`` update the same dict.
_ENVIRON_DATA = getattr(os.environ, "_data", None)
_NO_CODEGEN_KEY = (
    os.fsencode("REPRO_NO_CODEGEN")
    if isinstance(next(iter(_ENVIRON_DATA), b""), bytes)
    else "REPRO_NO_CODEGEN"
) if _ENVIRON_DATA is not None else None


def codegen_enabled() -> bool:
    """Whether generated evaluators are in use (checked lazily per call)."""
    if _ENVIRON_DATA is not None:
        raw = _ENVIRON_DATA.get(_NO_CODEGEN_KEY)
        return raw is None or raw in (b"", b"0", "", "0")
    return os.environ.get("REPRO_NO_CODEGEN", "") in ("", "0")


def codegen_stats() -> dict:
    """Cache sizes and hit counters for ``GET /stats`` and tests."""
    return {
        "enabled": codegen_enabled(),
        "plan_cache_size": len(_PLAN_CACHE),
        "plan_cache_hits": _STATS["plan_cache_hits"],
        "plans_compiled": _STATS["plans_compiled"],
        "flops_functions": len(_FLOPS_FNS),
        "flops_fns_shared": _STATS["flops_fns_shared"],
        "flops_batches": _STATS["flops_batches"],
        "call_batches": _STATS["call_batches"],
    }


def clear_codegen_caches() -> None:
    """Drop all compiled code and counters (test isolation hook)."""
    _PLAN_CACHE.clear()
    _FLOPS_FNS.clear()
    for key in _STATS:
        _STATS[key] = 0


# ----------------------------------------------------------------------
# Plan signatures
# ----------------------------------------------------------------------


def _factor_descriptor(factor) -> tuple:
    if isinstance(factor, AddExpr):
        return ("add", tuple(_factor_descriptor(l) for l in factor.leaves))
    return (
        "leaf",
        factor.operand,
        factor.rows,
        factor.cols,
        factor.transposed,
        factor.symmetric,
        factor.triangular,
    )


def plan_signature(plan) -> tuple:
    """Structural identity of a plan: everything codegen depends on.

    Two plans with equal signatures lower to byte-identical generated
    source — labels, tree indices and schedules are presentation-only
    and deliberately excluded, so CSE-equal plans (e.g. the two
    schedules of a chain tree, which reorder *independent* steps into
    the same step tuple) share one compiled :class:`PlanCode`.
    """
    return (
        plan.n_dims,
        tuple(_factor_descriptor(f) for f in plan.leaves),
        plan.steps,
    )


# ----------------------------------------------------------------------
# Source emission
# ----------------------------------------------------------------------


def _compile_function(source: str, name: str, namespace: dict) -> Callable:
    scope = dict(namespace)
    exec(compile(source, f"<codegen:{name}>", "exec"), scope)
    return scope[name]


def _flops_entry(plan) -> Tuple[Callable[[np.ndarray], np.ndarray], str]:
    """The plan's batch FLOP evaluator, shared by canonical polynomial."""
    poly = plan.flops(dim_symbols(plan.n_dims))
    if not isinstance(poly, SizeExpr):  # constant-FLOP corner case
        poly = SizeExpr.constant(int(poly))
    key = poly.key()
    entry = _FLOPS_FNS.get(key)
    if entry is None:
        source = _emit_flops_source(poly)
        fn = _compile_function(source, "flops_batch", {"_np": np})
        entry = _FLOPS_FNS[key] = (fn, source)
    else:
        _STATS["flops_fns_shared"] += 1
    return entry


def _emit_flops_source(poly: SizeExpr) -> str:
    lines = ["def flops_batch(arr):"]
    dims = poly.used_dims()
    for dim in dims:
        lines.append(f"    c{dim} = arr[:, {dim}]")
    if dims:
        lines.append(f"    return {poly.render(lambda d: f'c{d}')}")
    else:
        constant = poly.size_hint(())
        lines.append(
            f"    return _np.full(arr.shape[0], {constant}, dtype=_np.int64)"
        )
    return "\n".join(lines) + "\n"


def _emit_calls_source(plan) -> Tuple[str, dict]:
    """KernelCallBatch builder: one gather, per-call slices, trusted init.

    All step dims are gathered with a single fancy index; each call
    slot's ``(n, arity)`` dims matrix is then a strided column slice
    of the gathered block.  The batches are assembled through
    ``object.__new__`` plus direct ``__dict__`` stores — the frozen
    dataclass's validated constructor costs ~5× as much per call and
    can only re-check shapes this emitter already fixed.
    """
    flat_dims = [i for step in plan.steps for i in step.dims]
    namespace: dict = {
        "_new": object.__new__,
        "_KCB": KernelCallBatch,
        "_IDX": np.asarray(flat_dims, dtype=np.intp),
    }
    lines = ["def calls_batch(arr):", "    d = arr[:, _IDX]"]
    offset = 0
    names: List[str] = []
    for s, step in enumerate(plan.steps):
        arity = len(step.dims)
        kernel_name = f"_K_{step.kernel.name}"
        namespace[kernel_name] = step.kernel
        lines.extend(
            [
                f"    b{s} = _new(_KCB)",
                f"    x = b{s}.__dict__",
                f"    x['kernel'] = {kernel_name}",
                f"    x['dims'] = d[:, {offset}:{offset + arity}]",
                f"    x['reads_previous'] = {step.reads_previous!r}",
            ]
        )
        names.append(f"b{s}")
        offset += arity
    trailing = "," if len(names) == 1 else ""
    lines.append(f"    return ({', '.join(names)}{trailing})")
    return "\n".join(lines) + "\n", namespace


def _emit_syrk(plan, step, ref_src) -> str:
    if step.left.is_step:
        return f"_syrk({ref_src(step.left)})"
    leaf = plan.leaves[step.left.index]
    return f"_syrk(operands[{leaf.operand}], trans={leaf.transposed!r})"


def _emit_symm(plan, step, ref_src) -> str:
    return f"_symm({ref_src(step.left)}, {ref_src(step.right)})"


def _emit_trsm(plan, step, ref_src) -> str:
    leaf = plan.leaves[step.left.index]
    return f"_trsm(operands[{leaf.operand}], {ref_src(step.right)})"


def _emit_add(plan, step, ref_src) -> str:
    return f"_add({ref_src(step.left)}, {ref_src(step.right)})"


def _emit_gemm(plan, step, ref_src) -> str:
    return f"_gemm({ref_src(step.left)}, {ref_src(step.right)})"


#: Per-kernel executor emitters: ``(plan, step, ref_src) -> RHS source``.
#: ``ref_src`` renders a ValueRef as source (a temp slot or an operand
#: view).  A new kernel registers exactly one entry here; the emitted
#: call must invoke the same :mod:`repro.expressions.blas` wrapper the
#: interpreted ``Plan.execute`` branch does, so generated and
#: interpreted executors stay bit-identical.
EXECUTOR_EMITTERS: Dict[KernelName, Callable] = {
    KernelName.SYRK: _emit_syrk,
    KernelName.SYMM: _emit_symm,
    KernelName.TRSM: _emit_trsm,
    KernelName.ADD: _emit_add,
    KernelName.GEMM: _emit_gemm,
}


def _step_inputs(step) -> List[int]:
    """Indices of prior steps whose values this step reads."""
    inputs = []
    for ref in (step.left, step.right):
        if ref is not None and ref.is_step:
            inputs.append(ref.index)
    if step.accumulate is not None:
        inputs.append(step.accumulate)
    return inputs


def _emit_execute_source(
    plan, decisions: Optional[PlanDecisions] = None
) -> Tuple[str, dict]:
    """Straight-line executor with liveness-assigned temp slots.

    Replays exactly the wrapper calls ``Plan.execute`` issues, in the
    same order with the same arguments.  Slots are reused once their
    value's last reader has run; an accumulation target stays blocked
    through its step because ``t_out = t_acc + t_out`` reads it
    *after* the main call's assignment.

    With ``decisions`` (the scheduler's :class:`PlanDecisions`), the
    emitted body additionally recycles dead buffers as ``out=``
    targets, collapses ADD chains into in-place accumulations and
    symmetrizes single-consumer SYRK triangles in place — every form
    bit-equal to its allocating counterpart, so scheduled and plain
    executors return identical arrays.
    """
    steps = plan.steps
    last_use = [0] * len(steps)
    for i, step in enumerate(steps):
        for source in _step_inputs(step):
            last_use[source] = max(last_use[source], i)
    last_use[len(steps) - 1] = len(steps)

    # Values whose buffer the scheduler hands to a later step must keep
    # their slot name bound until the claim site.
    claimed = set()
    if decisions is not None:
        claimed.update(v for v in decisions.fuse_into if v is not None)
        claimed.update(v for v in decisions.reuse_from if v is not None)

    def ref_src(ref) -> str:
        if ref.is_step:
            return f"t{slot_of[ref.index]}"
        factor = plan.leaves[ref.index]
        leaf = factor.leaves[ref.sub] if ref.sub is not None else factor
        source = f"operands[{leaf.operand}]"
        return f"{source}.T" if leaf.transposed else source

    lines = ["def execute(operands):"]
    slot_of: Dict[int, int] = {}
    free: List[int] = []
    n_slots = 0
    for i, step in enumerate(steps):
        dying = sorted(
            slot_of[k]
            for k in range(i)
            if last_use[k] == i and k not in claimed
        )
        # An accumulation source is read after this step's assignment;
        # its slot only frees once the statement group has run.
        blocked = (
            {slot_of[step.accumulate]}
            if step.accumulate is not None
            else set()
        )
        free.extend(s for s in dying if s not in blocked)
        free.sort()
        fuse = decisions.fuse_into[i] if decisions is not None else None
        reuse = decisions.reuse_from[i] if decisions is not None else None
        if fuse is not None:
            # In-place ADD-chain collapse: the dying operand's slot
            # becomes the output, no allocation.
            slot = slot_of[fuse]
        elif reuse is not None:
            # Claimed slots never entered ``free``: the dead buffer is
            # still bound to its name, ready to be an ``out=`` target.
            slot = slot_of[reuse]
        elif free:
            slot = free.pop(0)
        else:
            slot = n_slots
            n_slots += 1
        slot_of[i] = slot
        out = f"t{slot}"
        rhs = EXECUTOR_EMITTERS[step.kernel](plan, step, ref_src)
        if (fuse is not None or reuse is not None) and rhs.endswith(")"):
            rhs = f"{rhs[:-1]}, out={out})"
        lines.append(f"    {out} = {rhs}")
        if step.copy_to_full:
            if decisions is not None and decisions.inplace_fill[i]:
                lines.append(f"    {out} = _symmetrize({out})")
            else:
                lines.append(f"    {out} = _fill({out})")
        if step.accumulate is not None:
            acc = f"t{slot_of[step.accumulate]}"
            if decisions is not None:
                lines.append(f"    {out} = _add({acc}, {out}, out={out})")
            else:
                lines.append(f"    {out} = {acc} + {out}")
        free.extend(s for s in dying if s in blocked and s != slot)
        free.sort()
    lines.append(f"    return t{slot_of[len(steps) - 1]}")
    namespace = {
        "_gemm": blas.gemm,
        "_syrk": blas.syrk_lower,
        "_symm": blas.symm_lower,
        "_add": blas.add,
        "_trsm": blas.trsm,
        "_fill": blas.fill_symmetric_from_lower,
        "_symmetrize": blas.symmetrize_lower_inplace,
    }
    return "\n".join(lines) + "\n", namespace


# ----------------------------------------------------------------------
# Compiled plan code + the per-algorithm provider
# ----------------------------------------------------------------------


class PlanCode:
    """The three compiled functions (and their source) of one plan."""

    __slots__ = ("flops", "calls", "execute", "source")

    def __init__(
        self,
        flops: Callable[[np.ndarray], np.ndarray],
        calls: Callable[[np.ndarray], Tuple[KernelCallBatch, ...]],
        execute: Callable,
        source: Dict[str, str],
    ) -> None:
        self.flops = flops
        self.calls = calls
        self.execute = execute
        self.source = source


def compiled_plan(plan, scheduled: Optional[bool] = None) -> PlanCode:
    """The plan's :class:`PlanCode`, compiling at most once per structure.

    ``scheduled`` selects the executor flavour (the scheduler's
    buffer-reuse/fusion decisions applied, or the plain unrolling) and
    defaults to the live ``REPRO_NO_SCHEDULER`` state; the FLOP and
    call builders are identical in both flavours.
    """
    if scheduled is None:
        scheduled = scheduler_enabled()
    signature = (plan_signature(plan), scheduled)
    code = _PLAN_CACHE.get(signature)
    if code is not None:
        _STATS["plan_cache_hits"] += 1
        return code
    _STATS["plans_compiled"] += 1
    flops_fn, flops_source = _flops_entry(plan)
    calls_source, calls_namespace = _emit_calls_source(plan)
    calls_fn = _compile_function(calls_source, "calls_batch", calls_namespace)
    decisions = schedule_decisions(plan) if scheduled else None
    execute_source, execute_namespace = _emit_execute_source(plan, decisions)
    execute_fn = _compile_function(
        execute_source, "execute", execute_namespace
    )
    code = PlanCode(
        flops_fn,
        calls_fn,
        execute_fn,
        {
            "flops": flops_source,
            "calls": calls_source,
            "execute": execute_source,
        },
    )
    _PLAN_CACHE[signature] = code
    return code


class PlanCodegen:
    """Lazy per-plan provider wired into :class:`~repro.expressions.base.Algorithm`.

    ``flops_fn``/``calls_fn`` return the compiled evaluator, or None
    while ``REPRO_NO_CODEGEN`` disables the layer — callers fall back
    to the interpreted path, and a disabled process never compiles.
    ``execute`` is installed as the algorithm's executor directly and
    falls back to ``Plan.execute`` itself.
    """

    __slots__ = ("plan", "_codes")

    def __init__(self, plan) -> None:
        self.plan = plan
        # One compiled entry per scheduler mode; flipping
        # REPRO_NO_SCHEDULER switches executors without recompiling.
        self._codes: Dict[bool, PlanCode] = {}

    def _resolve(self) -> Optional[PlanCode]:
        if not codegen_enabled():
            return None
        mode = scheduler_enabled()
        code = self._codes.get(mode)
        if code is None:
            code = self._codes[mode] = compiled_plan(self.plan, scheduled=mode)
        return code

    def flops_fn(self) -> Optional[Callable[[np.ndarray], np.ndarray]]:
        code = self._resolve()
        if code is None:
            return None
        _STATS["flops_batches"] += 1
        return code.flops

    def calls_fn(
        self,
    ) -> Optional[Callable[[np.ndarray], Tuple[KernelCallBatch, ...]]]:
        code = self._resolve()
        if code is None:
            return None
        _STATS["call_batches"] += 1
        return code.calls

    def execute(self, operands) -> np.ndarray:
        code = self._resolve()
        if code is not None:
            return code.execute(operands)
        if scheduler_enabled():
            return scheduled_execute(self.plan, operands)
        return self.plan.execute(operands)

    @property
    def source(self) -> Dict[str, str]:
        """Emitted source of all three functions (docs/debugging)."""
        return compiled_plan(self.plan).source
