"""Compiler-defined expression families beyond the paper's two.

Each family is a thin IR description — the compiler generates the
algorithms, executors and FLOP polynomials.  They extend the paper's
scenario axes:

* :class:`GramExpression` (``gram<k>``): ``Aᵀ A B₁ ⋯ B_{k-2}`` — the
  transposed sibling of ``A Aᵀ B``.  Trees that keep ``Aᵀ`` and ``A``
  adjacent admit the SYRK/SYMM rewrites, so the FLOP-cheapest plans
  are the symmetry-exploiting ones with the same small-dim efficiency
  collapse that drives the paper's anomalies.
* :class:`TriChainExpression` (``tri<k>``): a ``k``-matrix chain whose
  odd factors are stored transposed (``A Bᵀ C Dᵀ ⋯``).  GEMM-only,
  chain-like anomaly structure, but distinct operand layouts and
  executors.
* :class:`SumOfChainsExpression` (``sum<k>``): the two-term sum of two
  ``k``-chains, ``A⋯ + ⋯``; the second term's root call folds the
  accumulation into its output write (FLOP-free).  For ``k ≥ 3`` each
  term's association is free, so plans differ in FLOPs and the family
  is anomaly-bearing; ``sum2`` (``AB + CD``) is the degenerate
  all-plans-tie case.  The tree cross-product is quadratic in the
  per-term Catalan number, so ``k > 5`` compiles under cost-guided
  pruning (:data:`SUM_PRUNE_BUDGET` cheapest combinations at the
  default staggered box probe); ``k ≤ 5`` still enumerates exactly, so
  its plans — and study payloads — are untouched by the pruning pass.
* :class:`AddChainExpression` (``addchain<k>``): a ``k``-factor chain
  whose second factor is an elementwise sum, ``A (B + C) D ⋯`` — the
  factored-out form of ``A B D ⋯ + A C D ⋯``.  Every plan pays one
  memory-bound ADD call; association of the surrounding chain is free,
  so the anomaly structure is chain-like.
* :class:`SolveChainExpression` (``solve<k>``): ``L⁻¹ A₁ ⋯ A_{k-1}``
  with ``L`` lower triangular.  Plans differ in *where* the solve
  happens: the FLOP-cheapest ones apply TRSM at the narrowest chain
  boundary, exactly where TRSM's right-hand-side efficiency collapses
  — an abundant-anomaly family like ``aatb``.
"""

from __future__ import annotations

from repro.expressions.compiler import CompiledExpression, PruneConfig
from repro.expressions.ir import (
    AddExpr,
    Leaf,
    ProductExpr,
    SumExpr,
    chain_leaves,
)

_LABELS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

#: Tree-combination budget for ``sum<k>`` beyond the exact range: the
#: cost-ranked cheapest combinations at the default staggered probe.
SUM_PRUNE_BUDGET = 64

#: Largest ``k`` whose ``sum<k>`` cross-product is enumerated exactly
#: (Catalan(4)² = 196 combinations); pruning starts above it, so every
#: previously-reachable ``sum<k>`` keeps byte-identical plans.
SUM_EXACT_MAX = 5


class GramExpression(CompiledExpression):
    """``gram<k>``: Aᵀ A B₁ ⋯ B_{k-2} over dims (d0, ..., d_{k-1}).

    ``A ∈ R^{d0×d1}``; the Gram matrix ``AᵀA`` is ``d1×d1`` and the
    trailing chain runs over boundaries ``d1, d2, ..., d_{k-1}``.
    """

    def __init__(self, n_factors: int = 3) -> None:
        if n_factors < 3:
            raise ValueError("gram needs at least three factors (Aᵀ A B)")
        self.n_factors = n_factors
        factors = (
            Leaf(operand=0, rows=1, cols=0, transposed=True, label="A"),
            Leaf(operand=0, rows=0, cols=1, label="A"),
        ) + tuple(
            Leaf(
                operand=i - 1,
                rows=i - 1,
                cols=i,
                label=_LABELS[i - 1],
            )
            for i in range(2, n_factors)
        )
        super().__init__(f"gram{n_factors}", ProductExpr(factors))


class TriChainExpression(CompiledExpression):
    """``tri<k>``: a chain with every odd factor stored transposed."""

    def __init__(self, n_matrices: int = 4) -> None:
        if n_matrices < 2:
            raise ValueError("a chain needs at least two matrices")
        self.n_matrices = n_matrices
        super().__init__(
            f"tri{n_matrices}",
            ProductExpr(
                chain_leaves(
                    list(range(n_matrices + 1)),
                    transposed=range(1, n_matrices, 2),
                )
            ),
        )


class SumOfChainsExpression(CompiledExpression):
    """``sum<k>``: the two-term sum of two ``k``-chains."""

    def __init__(self, n_matrices: int = 3) -> None:
        if n_matrices < 2:
            raise ValueError("sum terms need at least two matrices each")
        self.n_matrices = n_matrices
        k = n_matrices
        first = chain_leaves(list(range(k + 1)))
        # The second term shares the outer dims (the results must be
        # conformable) and brings its own k-1 inner dims.
        boundaries = [0] + list(range(k + 1, 2 * k)) + [k]
        second = chain_leaves(boundaries, first_operand=k)
        prune = (
            PruneConfig(budget=SUM_PRUNE_BUDGET)
            if n_matrices > SUM_EXACT_MAX
            else None
        )
        super().__init__(
            f"sum{n_matrices}",
            SumExpr((ProductExpr(first), ProductExpr(second))),
            prune=prune,
        )


class AddChainExpression(CompiledExpression):
    """``addchain<k>``: A (B + C) D ⋯ over boundaries (d0, ..., dk).

    Factor 1 is the elementwise sum of two distinct ``d1×d2`` operands
    (the compiler materialises it with one ADD call per plan); the
    remaining factors form a plain distinct-operand chain, so the
    ``k``-factor family has the chain's Catalan(k-1) trees.
    """

    def __init__(self, n_factors: int = 3) -> None:
        if n_factors < 2:
            raise ValueError(
                "addchain needs at least two factors (A (B + C))"
            )
        self.n_factors = n_factors
        factors = (
            Leaf(operand=0, rows=0, cols=1, label="A"),
            AddExpr(
                (
                    Leaf(operand=1, rows=1, cols=2, label="B"),
                    Leaf(operand=2, rows=1, cols=2, label="C"),
                )
            ),
        ) + tuple(
            Leaf(
                operand=i + 1,
                rows=i,
                cols=i + 1,
                label=_LABELS[i + 1],
            )
            for i in range(2, n_factors)
        )
        super().__init__(f"addchain{n_factors}", ProductExpr(factors))


class SolveChainExpression(CompiledExpression):
    """``solve<k>``: L⁻¹ A₁ ⋯ A_{k-1} over dims (d0, ..., d_{k-1}).

    ``L ∈ R^{d0×d0}`` lower triangular; the trailing chain runs over
    boundaries ``d0, d1, ..., d_{k-1}``.  Each tree solves at a
    different boundary, so TRSM's right-hand-side count — and with it
    the solve's efficiency — varies across plans of equal-looking
    structure.
    """

    def __init__(self, n_factors: int = 3) -> None:
        if n_factors < 2:
            raise ValueError("solve needs at least two factors (L⁻¹ A)")
        self.n_factors = n_factors
        factors = (
            Leaf(operand=0, rows=0, cols=0, triangular=True, label="L"),
        ) + chain_leaves(
            list(range(n_factors)),
            labels="L" + _LABELS,
            first_operand=1,
        )
        super().__init__(f"solve{n_factors}", ProductExpr(factors))
