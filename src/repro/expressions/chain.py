"""The matrix-chain expression ``A B C D ...`` (paper §4.1).

All algorithms are GEMM-only: one per parenthesisation tree, plus one
extra *schedule* per tree whose root has two internal children (the
independent subproducts can be computed in either order — same FLOPs,
different inter-kernel locality).  For four matrices this yields the
paper's six execution plans (Figure 3).
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.expressions import blas
from repro.expressions.base import Algorithm, Expression
from repro.expressions.trees import Tree, enumerate_trees, tree_name
from repro.kernels.flops import gemm_flops
from repro.kernels.types import KernelCall, KernelName


def _chain_calls(
    tree: Tree, dims: Sequence[Any], right_first_root: bool = False
) -> Tuple[KernelCall, ...]:
    """Post-order GEMM calls for one tree/schedule."""
    calls: List[KernelCall] = []

    def visit(node: Tree, swap: bool) -> Tuple[int, int, bool]:
        if isinstance(node, int):
            return node, node + 1, False
        left, right = node
        if swap:
            rp, rq, r_internal = visit(right, False)
            lp, lq, l_internal = visit(left, False)
        else:
            lp, lq, l_internal = visit(left, False)
            rp, rq, r_internal = visit(right, False)
        calls.append(
            KernelCall(
                KernelName.GEMM,
                (dims[lp], dims[rq], dims[rp]),
                reads_previous=l_internal or r_internal,
            )
        )
        return lp, rq, True

    visit(tree, right_first_root)
    return tuple(calls)


def _tree_executor(tree: Tree):
    def run(operands: Sequence[np.ndarray]) -> np.ndarray:
        def evaluate(node: Tree) -> np.ndarray:
            if isinstance(node, int):
                return operands[node]
            left, right = node
            return blas.gemm(evaluate(left), evaluate(right))

        return evaluate(tree)

    return run


def _has_two_internal_children(tree: Tree) -> bool:
    return (
        not isinstance(tree, int)
        and not isinstance(tree[0], int)
        and not isinstance(tree[1], int)
    )


class ChainExpression(Expression):
    """Chain of ``n`` matrices; instance dims are the n+1 boundaries."""

    def __init__(self, n_matrices: int = 4) -> None:
        if n_matrices < 2:
            raise ValueError("a chain needs at least two matrices")
        self.n_matrices = n_matrices
        self.name = f"chain{n_matrices}"
        self.n_dims = n_matrices + 1
        self.operand_labels = "ABCDEFGH"[:n_matrices]
        self._algorithms: Tuple[Algorithm, ...] = self._build()

    def _build(self) -> Tuple[Algorithm, ...]:
        out: List[Algorithm] = []
        for index, tree in enumerate(enumerate_trees(self.n_matrices), 1):
            label = tree_name(tree, self.operand_labels)
            schedules: List[Tuple[str, bool]] = [("", False)]
            if _has_two_internal_children(tree):
                # Both subproducts are independent: two schedules.
                schedules = [("/left-first", False), ("/right-first", True)]
            for suffix, right_first in schedules:
                out.append(
                    Algorithm(
                        name=f"{self.name}-{index}:{label}{suffix}",
                        expression=self.name,
                        calls_builder=(
                            lambda inst, t=tree, rf=right_first: _chain_calls(
                                t, inst, rf
                            )
                        ),
                        executor=_tree_executor(tree),
                    )
                )
        return tuple(out)

    def algorithms(self) -> Tuple[Algorithm, ...]:
        return self._algorithms

    def make_operands(
        self, instance: Sequence[int], rng: np.random.Generator
    ) -> List[np.ndarray]:
        if len(instance) != self.n_dims:
            raise ValueError(
                f"{self.name} takes {self.n_dims} dims, got {instance!r}"
            )
        return [
            np.asfortranarray(rng.standard_normal((instance[i], instance[i + 1])))
            for i in range(self.n_matrices)
        ]

    def reference(self, operands: Sequence[np.ndarray]) -> np.ndarray:
        result = operands[0]
        for operand in operands[1:]:
            result = result @ operand
        return result


def optimal_parenthesisation(dims: Sequence[int]) -> Tuple[Tree, int]:
    """Classic min-FLOP dynamic program for a matrix chain.

    Returns ``(tree, flops)`` — the plan every FLOP-count selector
    (textbooks, Linnea, Armadillo, Julia) would pick, with GEMM's
    ``2 m n k`` cost per product.
    """
    n = len(dims) - 1
    if n < 1:
        raise ValueError("need at least one matrix")
    best: dict = {}
    for i in range(n):
        best[(i, i)] = (0, i)
    for span in range(2, n + 1):
        for i in range(n - span + 1):
            j = i + span - 1
            candidates = []
            for split in range(i, j):
                cost = (
                    best[(i, split)][0]
                    + best[(split + 1, j)][0]
                    + gemm_flops(dims[i], dims[j + 1], dims[split + 1])
                )
                candidates.append((cost, split))
            best[(i, j)] = min(candidates)

    def rebuild(i: int, j: int) -> Tree:
        if i == j:
            return i
        split = best[(i, j)][1]
        return (rebuild(i, split), rebuild(split + 1, j))

    return rebuild(0, n - 1), best[(0, n - 1)][0]
