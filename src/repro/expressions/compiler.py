"""Algorithm compiler: lower an expression IR to kernel-call plans.

The pipeline per expression (the capture→lower shape of
torchdynamo/torchinductor, scaled to five BLAS-style kernels; a
worked walkthrough lives in ``docs/compiler.md``):

0. **Cost-guided pruning** (optional, :class:`PruneConfig`) — when a
   family's tree cross-product explodes (a sum of two ``k``-chains has
   ``Catalan(k-1)²`` combinations), trees/combinations are ranked by
   the FLOP cost of their unrewritten lowering evaluated at a probe
   instance (by default staggered across the paper box — see
   :meth:`PruneConfig.resolve_centroid`), and only the cheapest
   ``budget`` survive to the passes below.  Ties break to enumeration
   order, so the pruned set is always a prefix of the stable
   cost-ranked full enumeration.
1. **Parenthesisation enumeration** — every full binary tree over each
   product's factors (:func:`repro.expressions.trees.enumerate_trees`),
   or a family-supplied tree list when presentation order matters.
2. **Common-subexpression elimination** — structurally identical
   subproducts (same operands, same transposes) compile to one kernel
   call whose result is reused.
3. **Kernel-rewrite passes** — ``X·Xᵀ``/``Xᵀ·X`` products lower to
   SYRK (with GEMM as the unrewritten variant), and products whose
   left operand is symmetric (a SYRK output or a symmetric leaf) lower
   to SYMM (again with GEMM as the variant).  Variant order pairs
   symmetry-exploiting consumers with symmetry-exploiting producers
   first — the paper's Figure 4 order.  A product whose left factor is
   a triangular-inverse leaf lowers to TRSM (no variant: the operand
   is never inverted explicitly), and an :class:`AddExpr` factor is
   materialised by ADD calls immediately before its first consumer.
4. **Storage resolution** — SYRK writes a lower triangle; a consumer
   other than SYMM's symmetric operand forces a FLOP-free copy to full
   storage on the producer (the paper's ``syrk+copy+gemm`` variant).
5. **Schedules** — a product root with two distinct internal children
   admits left-first and right-first call orders (same FLOPs,
   different inter-kernel locality), exactly the paper's chain
   schedules.

Every resulting :class:`Plan` serves three consumers from one
structure: ``kernel_calls`` over concrete, symbolic (polynomial) or
column-batched dims; a NumPy/BLAS executor for the real backend; and
FLOP counts that are exact sums of the emitted calls.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.expressions import blas
from repro.expressions.base import Algorithm, Expression
from repro.expressions.codegen import PlanCodegen
from repro.expressions.shapes import SizeExpr, dim_symbol
from repro.expressions.ir import (
    AddExpr,
    Factor,
    Leaf,
    MatrixExpr,
    OperandSpec,
    ProductExpr,
    Signature,
    SumExpr,
    expr_n_dims,
    expr_terms,
    operand_table,
    transpose_signature,
)
from repro.expressions.trees import Tree, enumerate_trees
from repro.kernels.flops import kernel_flops
from repro.kernels.types import KernelCall, KernelName

#: Copy note rendered on a SYRK call whose triangle is re-read as a
#: full matrix by a GEMM consumer (the paper's explicit-copy variant).
COPY_NOTE = "then copy to full"

#: Note on a kernel call that folds the sum accumulation into its
#: output write (``beta = 1``) — FLOP-free, like the copy.
ACCUMULATE_NOTE = "accumulates into the running sum"


@dataclass(frozen=True)
class PruneConfig:
    """Cost-guided pruning of the parenthesisation cross-product.

    ``budget`` counts *trees* (for a sum: per-term tree combinations);
    every kernel variant and schedule of a kept tree survives — the
    kernel choice is the performance question under study, association
    is what explodes combinatorially.  Trees are ranked by the FLOP
    cost of their unrewritten (GEMM/TRSM, plus ADD-factor) lowering
    evaluated at ``centroid`` — one concrete size per instance dim —
    with CSE ignored and ties broken to enumeration order, so the kept
    set is a prefix of the stable cost-ranked full enumeration.

    The default probe *staggers* the dims across the paper box
    (distinct sizes, linearly spaced) rather than using the literal
    midpoint: at an all-equal point every association of a chain costs
    exactly the same and the "ranking" would collapse to enumeration
    order.  Distinct per-dim sizes make tree costs genuinely differ,
    so the budget keeps associations that are cheap *somewhere real*
    in the box.
    """

    budget: int
    centroid: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("prune budget must be >= 1")

    def resolve_centroid(self, n_dims: int) -> Tuple[int, ...]:
        if self.centroid is not None:
            if len(self.centroid) != n_dims:
                raise ValueError(
                    f"centroid has {len(self.centroid)} dims, "
                    f"expression has {n_dims}"
                )
            return self.centroid
        from repro.core.searchspace import PAPER_HIGH, PAPER_LOW

        span = PAPER_HIGH - PAPER_LOW
        return tuple(
            PAPER_LOW + (i + 1) * span // (n_dims + 1)
            for i in range(n_dims)
        )


def _tree_cost_expr(
    factors: Tuple[Factor, ...],
    tree: Tree,
    offset: int = 0,
) -> SizeExpr:
    """Symbolic FLOPs of one tree's unrewritten lowering.

    GEMM cost per product node, TRSM for a triangular-inverse left
    leaf, ADD for add factors; CSE and the SYRK/SYMM rewrites are
    ignored — this is a ranking key, not an exact plan cost (for
    GEMM-only families the two coincide).  The result is a
    :class:`~repro.expressions.shapes.SizeExpr` over the instance-dim
    symbols, probed at concrete centroids via ``size_hint``.
    """

    def walk(node) -> Tuple[SizeExpr, SizeExpr, SizeExpr, bool]:
        if isinstance(node, int):
            factor = factors[node + offset]
            rows = dim_symbol(factor.rows)
            cols = dim_symbol(factor.cols)
            cost = SizeExpr.constant(0)
            if isinstance(factor, AddExpr):
                cost = (len(factor.leaves) - 1) * rows * cols
            return rows, cols, cost, factor.triangular
        l_rows, l_cols, l_cost, l_triangular = walk(node[0])
        _r_rows, r_cols, r_cost, _ = walk(node[1])
        if l_triangular:
            node_cost = l_rows * l_rows * r_cols
        else:
            node_cost = 2 * l_rows * r_cols * l_cols
        return l_rows, r_cols, l_cost + r_cost + node_cost, False

    return walk(tree)[2]


def _tree_cost(
    factors: Tuple[Factor, ...],
    tree: Tree,
    centroid: Sequence[int],
    offset: int = 0,
) -> int:
    """FLOPs of one tree's unrewritten lowering at concrete dims.

    Exact integer evaluation of :func:`_tree_cost_expr` at the probe
    instance; equal to the old direct float walk value for value
    (products of paper-box ints stay far below 2**53), so rankings —
    and hence pruned plan sets — are unchanged.
    """
    return _tree_cost_expr(factors, tree, offset).size_hint(centroid)


@dataclass(frozen=True)
class ValueRef:
    """Reference to a value: a leaf factor or a prior step's output.

    ``sub`` addresses one summand inside an :class:`AddExpr` factor
    slot (None for plain leaves and steps).
    """

    kind: str  # "leaf" | "step"
    index: int
    sub: Optional[int] = None

    @property
    def is_step(self) -> bool:
        return self.kind == "step"


@dataclass(frozen=True)
class PlanStep:
    """One kernel call plus the executor recipe that realises it.

    ``dims`` are indices into the instance dim vector, so the same
    step evaluates over ints, polynomials, or whole instance columns.
    """

    kernel: KernelName
    dims: Tuple[int, ...]
    left: ValueRef
    right: Optional[ValueRef]
    reads_previous: bool = False
    copy_to_full: bool = False
    accumulate: Optional[int] = None
    symmetric: bool = False
    note: str = ""


@dataclass(frozen=True)
class Plan:
    """One lowered evaluation strategy for an expression."""

    expression: str
    n_dims: int
    leaves: Tuple[Factor, ...]
    steps: Tuple[PlanStep, ...]
    tree_index: int
    tree_label: str
    schedule: str = ""
    n_tree_variants: int = 1

    @property
    def kernel_tokens(self) -> Tuple[str, ...]:
        """Kernel sequence with copy steps spelled out: ``syrk+copy+gemm``."""
        tokens: List[str] = []
        for step in self.steps:
            tokens.append(step.kernel.value)
            if step.copy_to_full:
                tokens.append("copy")
        return tuple(tokens)

    def kernel_calls(self, instance: Sequence[Any]) -> Tuple[KernelCall, ...]:
        return tuple(
            KernelCall(
                step.kernel,
                tuple(instance[i] for i in step.dims),
                reads_previous=step.reads_previous,
                note=step.note,
            )
            for step in self.steps
        )

    def flops(self, instance: Sequence[Any]) -> Any:
        total: Any = 0
        for step in self.steps:
            total = total + kernel_flops(
                step.kernel, tuple(instance[i] for i in step.dims)
            )
        return total

    def execute(self, operands: Sequence[np.ndarray]) -> np.ndarray:
        """Run the plan on real operands through the BLAS wrappers."""
        values: List[Optional[np.ndarray]] = [None] * len(self.steps)

        def resolve(ref: ValueRef) -> np.ndarray:
            if ref.is_step:
                return values[ref.index]
            factor = self.leaves[ref.index]
            leaf = factor.leaves[ref.sub] if ref.sub is not None else factor
            operand = operands[leaf.operand]
            return operand.T if leaf.transposed else operand

        for i, step in enumerate(self.steps):
            if step.kernel is KernelName.SYRK:
                if step.left.is_step:
                    value = blas.syrk_lower(values[step.left.index])
                else:
                    leaf = self.leaves[step.left.index]
                    value = blas.syrk_lower(
                        operands[leaf.operand], trans=leaf.transposed
                    )
            elif step.kernel is KernelName.SYMM:
                value = blas.symm_lower(resolve(step.left), resolve(step.right))
            elif step.kernel is KernelName.TRSM:
                leaf = self.leaves[step.left.index]
                value = blas.trsm(operands[leaf.operand], resolve(step.right))
            elif step.kernel is KernelName.ADD:
                value = blas.add(resolve(step.left), resolve(step.right))
            else:
                value = blas.gemm(resolve(step.left), resolve(step.right))
            if step.copy_to_full:
                value = blas.fill_symmetric_from_lower(value)
            if step.accumulate is not None:
                value = values[step.accumulate] + value
            values[i] = value
        return values[-1]


#: Maps a plan and its 1-based position in the algorithm list to a name.
PlanNamer = Callable[[Plan, int], str]


def default_plan_namer(plan: Plan, ordinal: int) -> str:
    """``<expr>-<tree#>:<label>[/<kernels>][/<schedule>]``.

    The kernel-token segment appears only when the tree admits more
    than one kernel variant, so GEMM-only families (the chains) keep
    their plain ``chain4-3:(AB)(CD)/left-first`` names.
    """
    label = plan.tree_label
    if plan.n_tree_variants > 1:
        label += "/" + "+".join(plan.kernel_tokens)
    if plan.schedule:
        label += "/" + plan.schedule
    return f"{plan.expression}-{plan.tree_index + 1}:{label}"


# ----------------------------------------------------------------------
# Tree analysis: CSE node table + rewrite opportunities
# ----------------------------------------------------------------------


@dataclass
class _Node:
    """One unique product in a tree/sum DAG (post-CSE)."""

    signature: Signature
    left: ValueRef
    right: ValueRef
    rows: int  # dim index
    cols: int  # dim index
    inner: int  # dim index of the contracted extent
    syrk_pattern: bool
    trsm_pattern: bool
    symmetric: bool
    internal_children: int


class _NodeTable:
    """Unique-product table shared across the trees of one lowering."""

    def __init__(self, leaves: Tuple[Factor, ...]) -> None:
        self.leaves = leaves
        self.nodes: List[_Node] = []
        self._by_signature: Dict[Signature, int] = {}

    def ref_signature(self, ref: ValueRef) -> Signature:
        if ref.is_step:
            return self.nodes[ref.index].signature
        return self.leaves[ref.index].signature()

    def ref_shape(self, ref: ValueRef) -> Tuple[int, int]:
        if ref.is_step:
            node = self.nodes[ref.index]
            return node.rows, node.cols
        leaf = self.leaves[ref.index]
        return leaf.rows, leaf.cols

    def ref_symmetric(self, ref: ValueRef) -> bool:
        if ref.is_step:
            return self.nodes[ref.index].symmetric
        return self.leaves[ref.index].symmetric

    def ref_triangular(self, ref: ValueRef) -> bool:
        """Whether a ref is a triangular-inverse leaf (TRSM trigger)."""
        return not ref.is_step and self.leaves[ref.index].triangular

    def add(self, tree: Tree, leaf_offset: int = 0) -> ValueRef:
        """Intern a parenthesisation tree; returns the root's ref."""
        if isinstance(tree, int):
            return ValueRef("leaf", tree + leaf_offset)
        left = self.add(tree[0], leaf_offset)
        right = self.add(tree[1], leaf_offset)
        signature = ("prod", self.ref_signature(left), self.ref_signature(right))
        existing = self._by_signature.get(signature)
        if existing is not None:
            return ValueRef("step", existing)
        l_rows, l_cols = self.ref_shape(left)
        r_rows, r_cols = self.ref_shape(right)
        if l_cols != r_rows:
            raise ValueError(
                f"tree does not chain: inner dims {l_cols} vs {r_rows}"
            )
        if self.ref_triangular(right):
            raise ValueError(
                "a triangular (inverse) leaf can only be applied from "
                "the left (TRSM is a left solve)"
            )
        trsm_pattern = self.ref_triangular(left)
        syrk_pattern = not trsm_pattern and self.ref_signature(
            right
        ) == transpose_signature(self.ref_signature(left))
        node = _Node(
            signature=signature,
            left=left,
            right=right,
            rows=l_rows,
            cols=r_cols,
            inner=l_cols,
            syrk_pattern=syrk_pattern,
            trsm_pattern=trsm_pattern,
            symmetric=syrk_pattern,
            internal_children=int(left.is_step) + int(right.is_step),
        )
        self._by_signature[signature] = len(self.nodes)
        self.nodes.append(node)
        return ValueRef("step", len(self.nodes) - 1)


def _kernel_choices(
    table: _NodeTable, node: _Node, chosen: Dict[int, KernelName]
) -> Tuple[KernelName, ...]:
    """Kernel options for one product node, in canonical variant order.

    TRSM-pattern products (triangular-inverse left leaf) have no
    variant — the operand is never inverted explicitly.  SYRK-pattern
    products offer [SYRK, GEMM].  Products with a symmetric left
    operand offer SYMM and GEMM, symmetry-exploiting pairing first:
    [SYMM, GEMM] after a SYRK producer or a symmetric leaf,
    [GEMM, SYMM] after a GEMM producer (Figure 4's order).
    """
    if node.trsm_pattern:
        return (KernelName.TRSM,)
    if node.syrk_pattern:
        return (KernelName.SYRK, KernelName.GEMM)
    if table.ref_symmetric(node.left):
        if node.left.is_step:
            producer_exploits = (
                chosen[node.left.index] is KernelName.SYRK
            )
        else:
            producer_exploits = True  # symmetric leaf
        if producer_exploits:
            return (KernelName.SYMM, KernelName.GEMM)
        return (KernelName.GEMM, KernelName.SYMM)
    return (KernelName.GEMM,)


def _enumerate_variants(
    table: _NodeTable, node_order: List[int]
) -> List[Dict[int, KernelName]]:
    """All kernel assignments over ``node_order``, canonical order."""
    variants: List[Dict[int, KernelName]] = []

    def expand(position: int, chosen: Dict[int, KernelName]) -> None:
        if position == len(node_order):
            variants.append(dict(chosen))
            return
        index = node_order[position]
        for kernel in _kernel_choices(table, table.nodes[index], chosen):
            chosen[index] = kernel
            expand(position + 1, chosen)
            del chosen[index]

    expand(0, {})
    return variants


# ----------------------------------------------------------------------
# Lowering: node table + kernel assignment + schedule → steps
# ----------------------------------------------------------------------


@dataclass
class _MutableStep:
    kernel: KernelName
    dims: Tuple[int, ...]
    left: ValueRef
    right: Optional[ValueRef]
    copy_to_full: bool = False
    accumulate: Optional[int] = None
    symmetric: bool = False
    produces_triangle: bool = False
    consumed: List[ValueRef] = field(default_factory=list)


class _Lowering:
    """Emits steps for trees sharing one node table (and its CSE)."""

    def __init__(self, table: _NodeTable) -> None:
        self.table = table
        self.steps: List[_MutableStep] = []
        self._step_of_node: Dict[int, int] = {}
        # Materialised AddExpr factors, keyed by signature so a factor
        # repeated across terms/trees of one plan is summed once.
        self._step_of_add: Dict[Signature, int] = {}

    def _require_full(self, ref: ValueRef) -> None:
        """Force full storage on a triangular producer (FLOP-free copy)."""
        if ref.is_step:
            producer = self.steps[ref.index]
            if producer.produces_triangle:
                producer.copy_to_full = True
                producer.produces_triangle = False

    def emit_tree(
        self,
        root: ValueRef,
        kernels: Dict[int, KernelName],
        right_first_root: bool = False,
    ) -> Optional[int]:
        """Emit one tree's calls; returns the root's step index.

        Returns None when the root is a leaf reference (no calls) or
        was already emitted by an earlier tree (full-tree CSE).
        """

        def visit(ref: ValueRef, swap: bool) -> None:
            if not ref.is_step or ref.index in self._step_of_node:
                return
            node = self.table.nodes[ref.index]
            if kernels[ref.index] is KernelName.SYRK:
                # SYRK reads only X of X·Xᵀ — the right subtree is
                # dead code and is never computed.
                visit(node.left, False)
            elif swap:
                visit(node.right, False)
                visit(node.left, False)
            else:
                visit(node.left, False)
                visit(node.right, False)
            self._emit_node(ref.index, kernels[ref.index])

        already = root.is_step and root.index in self._step_of_node
        visit(root, right_first_root)
        if not root.is_step or already:
            return None
        return self._step_of_node[root.index]

    def _resolve(self, ref: ValueRef) -> ValueRef:
        """Node-space ref → step-space ref.

        Plain leaves pass through; an :class:`AddExpr` factor is
        materialised here — a chain of ADD calls emitted immediately
        before its first consumer — and resolves to its final ADD
        step (shared by every later consumer).
        """
        if ref.is_step:
            return ValueRef("step", self._step_of_node[ref.index])
        factor = self.table.leaves[ref.index]
        if isinstance(factor, AddExpr):
            return ValueRef("step", self._emit_add(ref.index, factor))
        return ref

    def _emit_add(self, leaf_index: int, factor: AddExpr) -> int:
        signature = factor.signature()
        existing = self._step_of_add.get(signature)
        if existing is not None:
            return existing
        running: Optional[int] = None
        for ordinal in range(1, len(factor.leaves)):
            left = (
                ValueRef("leaf", leaf_index, sub=0)
                if running is None
                else ValueRef("step", running)
            )
            right = ValueRef("leaf", leaf_index, sub=ordinal)
            step = _MutableStep(
                kernel=KernelName.ADD,
                dims=(factor.rows, factor.cols),
                left=left,
                right=right,
                consumed=[left, right],
            )
            self.steps.append(step)
            running = len(self.steps) - 1
        self._step_of_add[signature] = running
        return running

    def _emit_node(self, node_index: int, kernel: KernelName) -> None:
        node = self.table.nodes[node_index]
        if kernel is KernelName.TRSM:
            # Left is the triangular-inverse leaf itself — the step
            # references the stored L, never an explicit inverse.
            right = self._resolve(node.right)
            step = _MutableStep(
                kernel=kernel,
                dims=(node.rows, node.cols),
                left=node.left,
                right=right,
                consumed=[right],
            )
            self._require_full(right)
            self.steps.append(step)
            self._step_of_node[node_index] = len(self.steps) - 1
            return
        left = self._resolve(node.left)
        # The right operand of a SYRK node is dead code (same data as
        # the left) and may never have been emitted — resolve lazily.
        if kernel is KernelName.SYRK:
            # Result = X·Xᵀ over the left value; the right operand is
            # the same data and is not read separately.
            step = _MutableStep(
                kernel=kernel,
                dims=(node.rows, node.inner),
                left=left,
                right=None,
                symmetric=True,
                produces_triangle=True,
                consumed=[left],
            )
            self._require_full(left)
        elif kernel is KernelName.SYMM:
            # Symmetric left operand; SYMM reads its lower triangle,
            # so a triangular producer needs no copy.
            right = self._resolve(node.right)
            step = _MutableStep(
                kernel=kernel,
                dims=(node.rows, node.cols),
                left=left,
                right=right,
                symmetric=node.symmetric,
                consumed=[left, right],
            )
            self._require_full(right)
        else:
            right = self._resolve(node.right)
            step = _MutableStep(
                kernel=kernel,
                dims=(node.rows, node.cols, node.inner),
                left=left,
                right=right,
                symmetric=node.symmetric,
                consumed=[left, right],
            )
            self._require_full(left)
            self._require_full(right)
        self.steps.append(step)
        self._step_of_node[node_index] = len(self.steps) - 1

    def accumulate_into(self, step_index: int, target: int) -> None:
        step = self.steps[step_index]
        # Accumulation adds full matrices; a triangular term result
        # must be copied out first.
        self._require_full(ValueRef("step", target))
        self._require_full(ValueRef("step", step_index))
        step.accumulate = target
        step.consumed.append(ValueRef("step", target))

    def freeze(self) -> Tuple[PlanStep, ...]:
        # The expression's *result* is a full matrix; a triangular
        # root (SYRK) ends with the FLOP-free copy, like any other
        # full-storage consumer.
        if self.steps:
            self._require_full(ValueRef("step", len(self.steps) - 1))
        frozen: List[PlanStep] = []
        for i, step in enumerate(self.steps):
            reads_previous = any(
                ref.is_step and ref.index == i - 1 for ref in step.consumed
            )
            note = ""
            if step.copy_to_full:
                note = COPY_NOTE
            elif step.accumulate is not None:
                note = ACCUMULATE_NOTE
            frozen.append(
                PlanStep(
                    kernel=step.kernel,
                    dims=step.dims,
                    left=step.left,
                    right=step.right,
                    reads_previous=reads_previous,
                    copy_to_full=step.copy_to_full,
                    accumulate=step.accumulate,
                    symmetric=step.symmetric,
                    note=note,
                )
            )
        return tuple(frozen)


# ----------------------------------------------------------------------
# Compilation entry points
# ----------------------------------------------------------------------


def _tree_label(leaves: Tuple[Factor, ...], tree: Tree, offset: int = 0) -> str:
    def render(node: Tree, top: bool) -> str:
        if isinstance(node, int):
            return leaves[node + offset].render()
        inner = render(node[0], False) + render(node[1], False)
        return inner if top else f"({inner})"

    return render(tree, True)


def _root_schedules(
    table: _NodeTable, root: ValueRef
) -> Tuple[Tuple[str, bool], ...]:
    """Chain-style schedules: two orders for a two-internal-child root.

    When CSE makes both children the same subproduct, the orders
    collapse to one call sequence, so only one schedule is emitted.
    """
    node = table.nodes[root.index]
    if node.internal_children == 2 and (
        table.ref_signature(node.left) != table.ref_signature(node.right)
    ):
        return (("left-first", False), ("right-first", True))
    return (("", False),)


def compile_product_plans(
    expression_name: str,
    product: ProductExpr,
    trees: Optional[Sequence[Tree]] = None,
    prune: Optional[PruneConfig] = None,
) -> List[Plan]:
    """Lower one product to plans: trees × kernel variants × schedules.

    With ``prune``, only the ``budget`` centroid-cheapest trees are
    lowered, in cost-rank order; ``tree_index`` (and hence plan names)
    keep their full-enumeration positions.
    """
    leaves = product.factors
    n_dims = expr_n_dims(product)
    if trees is None:
        trees = enumerate_trees(len(leaves))
    trees = list(trees)
    tree_order: Sequence[int] = range(len(trees))
    if prune is not None and len(trees) > prune.budget:
        centroid = prune.resolve_centroid(n_dims)
        costs = [_tree_cost(leaves, tree, centroid) for tree in trees]
        ranked = sorted(range(len(trees)), key=lambda i: (costs[i], i))
        tree_order = ranked[: prune.budget]
    plans: List[Plan] = []
    for tree_index in tree_order:
        tree = trees[tree_index]
        probe = _NodeTable(leaves)
        root = probe.add(tree)
        node_order = [
            i for i in range(len(probe.nodes))
        ]  # post-order = interning order
        label = _tree_label(leaves, tree)

        def lower(kernels, right_first: bool) -> Tuple[PlanStep, ...]:
            table = _NodeTable(leaves)
            lowering = _Lowering(table)
            lowering.emit_tree(table.add(tree), kernels, right_first)
            return lowering.freeze()

        # Variants differing only in a dead (SYRK-elided) subtree
        # lower to identical calls — keep the first of each class,
        # along with its already-lowered left-first steps.
        variants: List[Tuple[Dict[int, KernelName], Tuple[PlanStep, ...]]] = []
        seen_steps: set = set()
        for kernels in _enumerate_variants(probe, node_order):
            steps = lower(kernels, False)
            if steps not in seen_steps:
                seen_steps.add(steps)
                variants.append((kernels, steps))
        for kernels, left_first_steps in variants:
            scheduled = [
                (
                    schedule,
                    left_first_steps
                    if not right_first
                    else lower(kernels, right_first),
                )
                for schedule, right_first in _root_schedules(probe, root)
            ]
            if len(scheduled) > 1 and all(
                steps == scheduled[0][1] for _, steps in scheduled[1:]
            ):
                # Dead-code elimination (a SYRK root) can leave both
                # orders with the same calls — one schedule, no suffix.
                scheduled = [("", scheduled[0][1])]
            for schedule, steps in scheduled:
                plans.append(
                    Plan(
                        expression=expression_name,
                        n_dims=n_dims,
                        leaves=leaves,
                        steps=steps,
                        tree_index=tree_index,
                        tree_label=label,
                        schedule=schedule,
                        n_tree_variants=len(variants),
                    )
                )
    return plans


def compile_sum_plans(
    expression_name: str,
    sum_expr: SumExpr,
    trees_per_term: Optional[Sequence[Sequence[Tree]]] = None,
    prune: Optional[PruneConfig] = None,
) -> List[Plan]:
    """Lower a sum: per-term tree combinations, accumulation folded.

    Terms are lowered in order into one shared node table, so a
    subproduct repeated across terms compiles once.  Each term's root
    call after the first accumulates into the running sum (FLOP-free,
    like the paper's copy).  Kernel variants are enumerated over the
    union of the combination's unique nodes.

    The tree cross-product is quadratic in the per-term Catalan
    numbers; with ``prune``, combinations are ranked by the sum of
    their per-term centroid tree costs *before* any lowering happens,
    and only the ``budget`` cheapest are lowered (in cost-rank order,
    keeping their full-enumeration ``combo_index`` for naming) — this
    is what lifts the ``sum<k>`` registry cap.
    """
    terms = sum_expr.terms
    leaves = tuple(leaf for term in terms for leaf in term.factors)
    n_dims = expr_n_dims(sum_expr)
    offsets = list(
        itertools.accumulate([0] + [len(t.factors) for t in terms[:-1]])
    )
    if trees_per_term is None:
        trees_per_term = [enumerate_trees(len(t.factors)) for t in terms]
    term_trees = [list(trees) for trees in trees_per_term]
    counts = [len(trees) for trees in term_trees]
    total = 1
    for count in counts:
        total *= count

    def combo_picks(combo_index: int) -> List[int]:
        """Flat itertools.product position → one tree index per term."""
        picks: List[int] = []
        remainder = combo_index
        for count in reversed(counts):
            remainder, pick = divmod(remainder, count)
            picks.append(pick)
        picks.reverse()
        return picks

    def combo_at(combo_index: int) -> Tuple[Tree, ...]:
        return tuple(
            term_trees[t][pick]
            for t, pick in enumerate(combo_picks(combo_index))
        )

    combo_order: Sequence[int] = range(total)
    if prune is not None and total > prune.budget:
        centroid = prune.resolve_centroid(n_dims)
        term_costs = [
            [_tree_cost(leaves, tree, centroid, offsets[t]) for tree in trees]
            for t, trees in enumerate(term_trees)
        ]

        def combo_cost(combo_index: int) -> float:
            return sum(
                term_costs[t][pick]
                for t, pick in enumerate(combo_picks(combo_index))
            )

        ranked = sorted(range(total), key=lambda i: (combo_cost(i), i))
        combo_order = ranked[: prune.budget]

    plans: List[Plan] = []
    for combo_index in combo_order:
        combo = combo_at(combo_index)
        probe = _NodeTable(leaves)
        roots = [
            probe.add(tree, offsets[t]) for t, tree in enumerate(combo)
        ]
        for t, root in enumerate(roots):
            if not root.is_step:
                raise ValueError(
                    f"sum term {t} of {expression_name} lowers to no "
                    "kernel call; the accumulation has nothing to fold "
                    "into"
                )
        if len({root.index for root in roots}) != len(roots):
            raise ValueError(
                f"sum terms of {expression_name} must be distinct "
                "subexpressions"
            )
        label = "+".join(
            _tree_label(leaves, tree, offsets[t])
            for t, tree in enumerate(combo)
        )

        def lower(kernels) -> Tuple[PlanStep, ...]:
            table = _NodeTable(leaves)
            lowering = _Lowering(table)
            previous: Optional[int] = None
            for t, tree in enumerate(combo):
                step_index = lowering.emit_tree(
                    table.add(tree, offsets[t]), kernels
                )
                if step_index is None:
                    raise ValueError(
                        f"sum term {t} of {expression_name} is a "
                        "subexpression of an earlier term; the "
                        "accumulation has no call to fold into"
                    )
                if previous is not None:
                    lowering.accumulate_into(step_index, previous)
                previous = step_index
            return lowering.freeze()

        # Same dead-variant dedupe as the product path.
        lowered: List[Tuple[PlanStep, ...]] = []
        seen_steps: set = set()
        for kernels in _enumerate_variants(
            probe, list(range(len(probe.nodes)))
        ):
            steps = lower(kernels)
            if steps not in seen_steps:
                seen_steps.add(steps)
                lowered.append(steps)
        for steps in lowered:
            plans.append(
                Plan(
                    expression=expression_name,
                    n_dims=n_dims,
                    leaves=leaves,
                    steps=steps,
                    tree_index=combo_index,
                    tree_label=label,
                    n_tree_variants=len(lowered),
                )
            )
    return plans


def compile_add_plans(expression_name: str, expr: AddExpr) -> List[Plan]:
    """Lower a standalone elementwise sum: one plan, a chain of ADDs.

    There is nothing to associate (elementwise addition has one
    shape), so the family is a single algorithm — the degenerate but
    now *expressible* "sum of stored matrices" case.
    """
    leaves: Tuple[Factor, ...] = (expr,)
    table = _NodeTable(leaves)
    lowering = _Lowering(table)
    lowering._emit_add(0, expr)
    steps = lowering.freeze()
    return [
        Plan(
            expression=expression_name,
            n_dims=expr_n_dims(expr),
            leaves=leaves,
            steps=steps,
            tree_index=0,
            tree_label=expr.render(),
        )
    ]


def compile_plans(
    expression_name: str,
    expr: MatrixExpr,
    trees: Optional[Sequence] = None,
    prune: Optional[PruneConfig] = None,
) -> List[Plan]:
    if isinstance(expr, ProductExpr):
        return compile_product_plans(expression_name, expr, trees, prune)
    if isinstance(expr, AddExpr):
        return compile_add_plans(expression_name, expr)
    return compile_sum_plans(expression_name, expr, trees, prune)


# ----------------------------------------------------------------------
# Expression base class over compiled plans
# ----------------------------------------------------------------------


class CompiledExpression(Expression):
    """An Expression whose algorithms are generated by the compiler.

    Subclasses (or callers) provide the IR, optionally a tree order
    and a plan namer; ``make_operands`` and ``reference`` are derived
    from the IR, so a new family is one IR description away.
    """

    def __init__(
        self,
        name: str,
        expr: MatrixExpr,
        trees: Optional[Sequence] = None,
        namer: Optional[PlanNamer] = None,
        prune: Optional[PruneConfig] = None,
    ) -> None:
        self.name = name
        self.ir = expr
        self.prune = prune
        self.n_dims = expr_n_dims(expr)
        self.operands: Tuple[OperandSpec, ...] = operand_table(expr)
        self.operand_labels = "".join(spec.label for spec in self.operands)
        namer = namer or default_plan_namer
        # Kept so the expression can be recompiled under a different
        # pruning config (the ablation harness's budget sweeps).
        self._trees_arg = trees
        self._namer_arg = namer
        self._plans = tuple(compile_plans(name, expr, trees, prune))
        self._algorithms = tuple(
            self._algorithm_for(namer(plan, ordinal), plan)
            for ordinal, plan in enumerate(self._plans, 1)
        )

    def _algorithm_for(self, algorithm_name: str, plan: Plan) -> Algorithm:
        # Codegen attaches lazily: nothing compiles until a batch path
        # first asks (and never with REPRO_NO_CODEGEN set).  The
        # provider's executor falls back to the interpreted
        # ``Plan.execute`` when disabled, so the real backend follows
        # the same switch.
        provider = PlanCodegen(plan)
        return Algorithm(
            name=algorithm_name,
            expression=self.name,
            calls_builder=plan.kernel_calls,
            executor=provider.execute,
            codegen=provider,
        )

    def with_prune(
        self, prune: Optional[PruneConfig]
    ) -> "CompiledExpression":
        """This expression recompiled under a different pruning config.

        The rebuilt expression shares the IR, tree order and plan
        namer, so with ``prune=None`` (or a budget at least the tree
        count) the plans are exactly the originals; a tighter budget
        keeps the cost-ranked prefix.  The result is *not* registered:
        it exists for side-by-side comparisons (the ablation harness's
        ``prune-budget-<n>`` components), never as the registry's view
        of the family.
        """
        return CompiledExpression(
            self.name,
            self.ir,
            trees=self._trees_arg,
            namer=self._namer_arg,
            prune=prune,
        )

    def plans(self) -> Tuple[Plan, ...]:
        return self._plans

    def algorithms(self) -> Tuple[Algorithm, ...]:
        return self._algorithms

    def make_operands(
        self, instance: Sequence[int], rng: np.random.Generator
    ) -> List[np.ndarray]:
        if len(instance) != self.n_dims:
            raise ValueError(
                f"{self.name} takes {self.n_dims} dims, got {instance!r}"
            )
        out: List[np.ndarray] = []
        for spec in self.operands:
            shape = (instance[spec.rows], instance[spec.cols])
            matrix = rng.standard_normal(shape)
            if spec.symmetric:
                matrix = matrix + matrix.T
            elif spec.triangular:
                # Well-conditioned lower-triangular: unit-dominant
                # diagonal, damped off-diagonal mass.  Only the lower
                # triangle is ever read (TRSM semantics), so the upper
                # part is simply zeroed.
                matrix = np.tril(matrix, -1) / shape[0] ** 0.5 + np.diag(
                    1.0 + np.abs(np.diag(matrix))
                )
            out.append(np.asfortranarray(matrix))
        return out

    def reference(self, operands: Sequence[np.ndarray]) -> np.ndarray:
        def leaf_value(leaf: Leaf) -> np.ndarray:
            operand = operands[leaf.operand]
            return operand.T if leaf.transposed else operand

        def factor_value(factor) -> np.ndarray:
            if isinstance(factor, AddExpr):
                total = leaf_value(factor.leaves[0])
                for leaf in factor.leaves[1:]:
                    total = total + leaf_value(leaf)
                return total
            return leaf_value(factor)

        def term_value(term: ProductExpr) -> np.ndarray:
            factors = term.factors
            # A triangular-inverse head is applied last, as one solve
            # against the rest of the product.
            start = 1 if factors[0].triangular else 0
            value = factor_value(factors[start])
            for factor in factors[start + 1 :]:
                value = value @ factor_value(factor)
            if start:
                lower = np.tril(operands[factors[0].operand])
                value = np.linalg.solve(lower, value)
            return value

        if isinstance(self.ir, AddExpr):
            return factor_value(self.ir)
        terms = expr_terms(self.ir)
        total = term_value(terms[0])
        for term in terms[1:]:
            total = total + term_value(term)
        return total
