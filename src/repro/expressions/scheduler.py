"""Plan scheduler: dependency graph, buffer reuse, fusion, reordering.

Sits between :mod:`repro.expressions.compiler` (which lowers an
expression tree to a straight-line :class:`~repro.expressions.compiler.Plan`)
and :mod:`repro.expressions.codegen` (which unrolls the step list into
generated source).  From each plan's steps it builds an explicit
read/write dependency graph — which prior step values each step reads,
and where each value's last reader runs — and derives three things:

1. **Buffer-reuse / in-place resolution** (``can_free``/``can_inplace``
   in TorchInductor terms).  A value whose last reader has run is dead;
   its storage is recycled as the output buffer of a later same-shape
   GEMM or ADD (``out=`` on the :mod:`repro.expressions.blas` wrappers)
   instead of allocating.  Output shapes are compared as *dim-index*
   tuples, so equality is exact for every instance by construction, and
   only buffers dead **strictly before** a step qualify — a buffer
   dying *at* the step is one of its inputs, and BLAS forbids
   input/output aliasing (elementwise ADD is the exception, handled by
   fusion below).

2. **Fusion of adjacent memory-bound steps.**  An ADD whose step
   operand dies at the ADD collapses into an in-place accumulation on
   that operand's buffer (``np.add(a, b, out=a)`` reads each element
   before writing it, so chains of k ADDs touch one buffer instead of
   allocating k).  A SYRK's ``triangle → copy to full`` materialization
   with at most one consumer is replaced by an in-place symmetrize of
   the triangle buffer — the separate full-size copy disappears, for
   the default schedule too.

3. **Interference-scored reordering** (non-default schedules only).
   Dependency-respecting permutations of the step list are scored with
   :class:`~repro.machine.machine.MachineModel`'s producer-keyed
   cache-interference term at a staggered probe instance;
   ``min-interference`` picks the model-predicted-fastest order and
   ``max-interference`` the slowest, with strict comparisons so ties
   keep the original order.  Reordering changes which step pairs are
   producer/consumer adjacent, hence the interference tokens and which
   instances classify as anomalies — that contrast is the new scenario
   axis, exposed as the ``schedule`` knob on the machine presets.

Every transformation is **bit-preserving** for the default schedule:
``dgemm`` with an F-contiguous ``c`` buffer and ``np.add`` with ``out=``
produce the same bits as their allocating forms (and fall back to a
fresh allocation of the same value when a buffer does not qualify), and
the in-place symmetrize writes exactly the elements the full copy
would.  The sha256-pinned study payloads therefore hold with the
scheduler on or off; ``tests/test_scheduler.py`` pins executor, FLOP
and call-batch equality per family.

``REPRO_NO_SCHEDULER=1`` disables the layer (checked lazily per use,
like ``REPRO_NO_CODEGEN``): decisions degrade to the unscheduled plan
and non-default schedules fall back to the original order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.envknobs import scheduler_enabled
from repro.expressions import blas
from repro.kernels.types import KernelCall, KernelCallBatch, KernelName

#: Decision cache: plan step tuple → :class:`PlanDecisions`.  Decisions
#: depend only on the step list (kernels, dim indices, value refs),
#: never on the leaves, so CSE-equal step tuples share one entry.
_DECISIONS_CACHE: Dict[tuple, "PlanDecisions"] = {}

#: Cap on the number of topological orders scored per plan.  The
#: lexicographically-first order (the original one) is always scored
#: first, so truncation can only forgo a better permutation, never
#: produce a non-original order by accident.
MAX_ORDERS = 4000

_STATS = {
    "plans_scheduled": 0,
    "fused_adds": 0,
    "inplace_reuses": 0,
    "copies_dropped": 0,
    "plans_reordered": 0,
    "reorder_wins": 0,
    "schedule_cache_hits": 0,
}


def scheduler_stats() -> dict:
    """Decision counters for ``GET /stats`` and tests."""
    return {
        "enabled": scheduler_enabled(),
        "plans_scheduled": _STATS["plans_scheduled"],
        "fused_adds": _STATS["fused_adds"],
        "inplace_reuses": _STATS["inplace_reuses"],
        "copies_dropped": _STATS["copies_dropped"],
        "plans_reordered": _STATS["plans_reordered"],
        "reorder_wins": _STATS["reorder_wins"],
        "schedule_cache_hits": _STATS["schedule_cache_hits"],
    }


def clear_scheduler_caches() -> None:
    """Drop all cached decisions and counters (test isolation hook)."""
    _DECISIONS_CACHE.clear()
    for key in _STATS:
        _STATS[key] = 0


# ----------------------------------------------------------------------
# Dependency graph
# ----------------------------------------------------------------------


def step_reads(step) -> Tuple[int, ...]:
    """Indices of prior steps whose values this step reads."""
    reads = []
    for ref in (step.left, step.right):
        if ref is not None and ref.is_step:
            reads.append(ref.index)
    if step.accumulate is not None:
        reads.append(step.accumulate)
    return tuple(reads)


def step_output_dims(step) -> Tuple[int, int]:
    """The step value's shape as dim-vector *indices* (rows, cols)."""
    if step.kernel is KernelName.SYRK:
        return (step.dims[0], step.dims[0])
    return (step.dims[0], step.dims[1])


def last_uses(steps: Sequence) -> List[int]:
    """Per step, the index of its value's last reader.

    The root value is read by the caller, encoded as ``len(steps)`` —
    one past the end, so it never qualifies as dead.
    """
    last = [0] * len(steps)
    for i, step in enumerate(steps):
        for source in step_reads(step):
            last[source] = max(last[source], i)
    last[len(steps) - 1] = len(steps)
    return last


# ----------------------------------------------------------------------
# Liveness decisions (buffer reuse, fusion, in-place fill)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlanDecisions:
    """Per-step scheduling decisions for one plan structure.

    ``fuse_into[i]`` — the ADD at step ``i`` accumulates in place into
    this producer's buffer (the producer's value dies at ``i``).
    ``reuse_from[i]`` — step ``i`` writes its output into this
    producer's buffer, which died strictly before ``i``.
    ``inplace_fill[i]`` — the step's ``copy to full`` is realised as an
    in-place symmetrize of the triangle buffer (at most one consumer).
    ``last_use[i]`` — the step index of value ``i``'s last reader.
    """

    reads: Tuple[Tuple[int, ...], ...]
    last_use: Tuple[int, ...]
    fuse_into: Tuple[Optional[int], ...]
    reuse_from: Tuple[Optional[int], ...]
    inplace_fill: Tuple[bool, ...]


def schedule_decisions(plan) -> PlanDecisions:
    """Liveness decisions for ``plan``, computed once per step structure."""
    key = plan.steps
    cached = _DECISIONS_CACHE.get(key)
    if cached is not None:
        return cached

    steps = plan.steps
    n = len(steps)
    reads = tuple(step_reads(step) for step in steps)
    last = last_uses(steps)
    out_dims = [step_output_dims(step) for step in steps]

    fuse_into: List[Optional[int]] = [None] * n
    reuse_from: List[Optional[int]] = [None] * n
    inplace_fill = [False] * n
    pool: List[int] = []  # dead, unclaimed values in death order

    for i, step in enumerate(steps):
        if step.kernel is KernelName.ADD:
            # In-place chain collapse: accumulate onto a step operand
            # whose value dies here.  Elementwise addition tolerates
            # the input/output aliasing this creates.
            for ref in (step.left, step.right):
                if (
                    ref is not None
                    and ref.is_step
                    and last[ref.index] == i
                    and ref.index != step.accumulate
                ):
                    fuse_into[i] = ref.index
                    break
        if fuse_into[i] is None and step.kernel in (
            KernelName.GEMM,
            KernelName.ADD,
        ):
            # Recycle a same-shape buffer that died strictly before
            # this step (so it cannot alias any of this step's inputs).
            for candidate in pool:
                if out_dims[candidate] == out_dims[i]:
                    reuse_from[i] = candidate
                    pool.remove(candidate)
                    break
        if step.copy_to_full:
            consumers = sum(1 for j in range(i + 1, n) if i in reads[j])
            inplace_fill[i] = consumers <= 1
        for k in range(i + 1):
            if last[k] == i and fuse_into[i] != k:
                pool.append(k)

    decisions = PlanDecisions(
        reads=reads,
        last_use=tuple(last),
        fuse_into=tuple(fuse_into),
        reuse_from=tuple(reuse_from),
        inplace_fill=tuple(inplace_fill),
    )
    _DECISIONS_CACHE[key] = decisions
    _STATS["plans_scheduled"] += 1
    _STATS["fused_adds"] += sum(1 for f in decisions.fuse_into if f is not None)
    _STATS["inplace_reuses"] += sum(
        1 for r in decisions.reuse_from if r is not None
    )
    _STATS["copies_dropped"] += sum(decisions.inplace_fill)
    return decisions


# ----------------------------------------------------------------------
# Interpreted scheduled executor
# ----------------------------------------------------------------------


def scheduled_execute(plan, operands: Sequence[np.ndarray]) -> np.ndarray:
    """``Plan.execute`` with the scheduler's buffer decisions applied.

    Issues the same BLAS wrapper calls in the same order with the same
    mathematical arguments; only where results land differs — and every
    in-place form is bit-equal to its allocating counterpart, so the
    returned array matches ``plan.execute(operands)`` exactly.
    """
    decisions = schedule_decisions(plan)
    steps = plan.steps
    values: List[Optional[np.ndarray]] = [None] * len(steps)

    def resolve(ref) -> np.ndarray:
        if ref.is_step:
            return values[ref.index]
        factor = plan.leaves[ref.index]
        leaf = factor.leaves[ref.sub] if ref.sub is not None else factor
        operand = operands[leaf.operand]
        return operand.T if leaf.transposed else operand

    for i, step in enumerate(steps):
        out: Optional[np.ndarray] = None
        fuse = decisions.fuse_into[i]
        reuse = decisions.reuse_from[i]
        if fuse is not None:
            out = values[fuse]
        elif reuse is not None:
            out = values[reuse]
            values[reuse] = None
        if step.kernel is KernelName.SYRK:
            if step.left.is_step:
                value = blas.syrk_lower(values[step.left.index])
            else:
                leaf = plan.leaves[step.left.index]
                value = blas.syrk_lower(
                    operands[leaf.operand], trans=leaf.transposed
                )
        elif step.kernel is KernelName.SYMM:
            value = blas.symm_lower(resolve(step.left), resolve(step.right))
        elif step.kernel is KernelName.TRSM:
            leaf = plan.leaves[step.left.index]
            value = blas.trsm(operands[leaf.operand], resolve(step.right))
        elif step.kernel is KernelName.ADD:
            value = blas.add(resolve(step.left), resolve(step.right), out=out)
        else:
            value = blas.gemm(resolve(step.left), resolve(step.right), out=out)
        if step.copy_to_full:
            if decisions.inplace_fill[i]:
                value = blas.symmetrize_lower_inplace(value)
            else:
                value = blas.fill_symmetric_from_lower(value)
        if step.accumulate is not None:
            value = blas.add(values[step.accumulate], value, out=value)
        if fuse is not None:
            values[fuse] = None
        values[i] = value
    return values[-1]


# ----------------------------------------------------------------------
# Interference-scored reordering (non-default schedules)
# ----------------------------------------------------------------------


def _probe_instance(n_dims: int) -> Tuple[int, ...]:
    """The staggered box centroid the pruner also scores at."""
    from repro.core.searchspace import PAPER_HIGH, PAPER_LOW

    span = PAPER_HIGH - PAPER_LOW
    return tuple(
        PAPER_LOW + (i + 1) * span // (n_dims + 1) for i in range(n_dims)
    )


def _topological_orders(reads: Sequence[frozenset], limit: int):
    """Dependency-respecting permutations, lexicographically first.

    Dependencies point backward, so the original order ``0..n-1`` is
    the lexicographic minimum and always comes out first; ``limit``
    bounds the enumeration for wide plans.
    """
    n = len(reads)
    emitted: set = set()
    order: List[int] = []
    yielded = 0

    def visit():
        nonlocal yielded
        if yielded >= limit:
            return
        if len(order) == n:
            yielded += 1
            yield tuple(order)
            return
        for i in range(n):
            if i not in emitted and reads[i] <= emitted:
                emitted.add(i)
                order.append(i)
                yield from visit()
                order.pop()
                emitted.discard(i)
                if yielded >= limit:
                    return

    yield from visit()


def schedule_order(plan, machine) -> Tuple[Tuple[int, ...], Tuple[bool, ...]]:
    """The machine's chosen step permutation and its consumer flags.

    Returns ``(order, reads_previous)`` where ``order[p]`` is the
    original index of the step that runs at position ``p`` and
    ``reads_previous[p]`` says whether that step consumes the value of
    the step right before it *in the new order* — the flag the
    machine's interference term keys on.  The ``default`` schedule (or
    a disabled scheduler) returns the original order with the plan's
    own flags; ``min-``/``max-interference`` return the permutation the
    analytic model scores fastest/slowest at the staggered probe
    instance, with strict comparisons so ties keep the original order.
    """
    steps = plan.steps
    identity = tuple(range(len(steps)))
    original_flags = tuple(step.reads_previous for step in steps)
    schedule = getattr(machine, "schedule", "default")
    if (
        schedule == "default"
        or len(steps) < 2
        or not scheduler_enabled()
    ):
        return identity, original_flags

    cache = machine.schedule_cache
    key = (schedule, plan.n_dims, steps)
    cached = cache.get(key)
    if cached is not None:
        _STATS["schedule_cache_hits"] += 1
        return cached

    reads = [frozenset(step_reads(step)) for step in steps]
    probe = _probe_instance(plan.n_dims)
    calls = plan.kernel_calls(probe)
    base = [machine.kernel_seconds(call.kernel, call.dims) for call in calls]
    maximize = schedule == "max-interference"

    best_order: Optional[Tuple[int, ...]] = None
    best_score = 0.0
    for order in _topological_orders(reads, MAX_ORDERS):
        score = 0.0
        previous: Optional[int] = None
        for index in order:
            seconds = base[index]
            if previous is not None and previous in reads[index]:
                seconds *= 1.0 + machine.interference_penalty(
                    calls[previous], calls[index]
                )
            score += seconds
            previous = index
        if best_order is None or (
            score > best_score if maximize else score < best_score
        ):
            best_order = order
            best_score = score
    assert best_order is not None

    flags = tuple(
        p > 0 and best_order[p - 1] in reads[best_order[p]]
        for p in range(len(best_order))
    )
    _STATS["plans_reordered"] += 1
    if best_order != identity:
        _STATS["reorder_wins"] += 1
    cache[key] = (best_order, flags)
    return best_order, flags


def _plan_of(algorithm):
    provider = getattr(algorithm, "codegen", None)
    return getattr(provider, "plan", None)


def scheduled_call_batches(
    algorithm, batches: Tuple[KernelCallBatch, ...], machine
) -> Tuple[KernelCallBatch, ...]:
    """Apply the machine's schedule to an algorithm's call batches.

    Identity (default schedule, scheduler disabled, or no plan behind
    the algorithm) returns ``batches`` unchanged — same objects, so the
    default path stays byte-identical.
    """
    plan = _plan_of(algorithm)
    if plan is None or len(plan.steps) != len(batches):
        return batches
    order, flags = schedule_order(plan, machine)
    if order == tuple(range(len(batches))):
        return batches
    return tuple(
        KernelCallBatch(
            batches[index].kernel,
            batches[index].dims,
            reads_previous=flags[position],
        )
        for position, index in enumerate(order)
    )


def scheduled_calls(
    algorithm, calls: Tuple[KernelCall, ...], machine
) -> Tuple[KernelCall, ...]:
    """Scalar counterpart of :func:`scheduled_call_batches`."""
    plan = _plan_of(algorithm)
    if plan is None or len(plan.steps) != len(calls):
        return calls
    order, flags = schedule_order(plan, machine)
    if order == tuple(range(len(calls))):
        return calls
    return tuple(
        replace(calls[index], reads_previous=flags[position])
        for position, index in enumerate(order)
    )
