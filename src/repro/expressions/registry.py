"""Expression registry: name → Expression instance.

``chain<k>`` names are materialised on demand (``chain4`` is the
paper's chain); custom expressions can be registered by plugins.
"""

from __future__ import annotations

import re
from typing import Dict, Tuple

from repro.expressions.aatb import AatbExpression
from repro.expressions.base import Expression
from repro.expressions.chain import ChainExpression

_REGISTRY: Dict[str, Expression] = {}
_CHAIN_PATTERN = re.compile(r"^chain(\d+)$")


def register(expression: Expression) -> Expression:
    if not expression.name:
        raise ValueError("expression must have a name")
    _REGISTRY[expression.name] = expression
    return expression


register(AatbExpression())
register(ChainExpression(4))


def known_expressions() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_expression(name: str) -> Expression:
    """Look up an expression; ``chain<k>`` is created lazily."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    match = _CHAIN_PATTERN.match(name)
    if match:
        n_matrices = int(match.group(1))
        if n_matrices >= 2:
            return register(ChainExpression(n_matrices))
    raise KeyError(
        f"unknown expression {name!r}; known: {', '.join(known_expressions())}"
    )
