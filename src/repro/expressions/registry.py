"""Expression registry: name → Expression instance.

Besides explicitly registered expressions, six parametric families
materialise on demand from their name pattern:

* ``chain<k>``    — k-matrix chain (``chain4`` is the paper's chain);
* ``gram<k>``     — ``Aᵀ A B₁ ⋯`` over k factors (3 ≤ k ≤ 8);
* ``tri<k>``      — chain with odd factors stored transposed (k ≤ 8);
* ``sum<k>``      — two-term sum of two k-chains (k ≤ 8; the tree
  cross-product is quadratic in the per-term Catalan number, so
  ``k > 5`` compiles under the cost-guided pruning pass — see
  :mod:`repro.expressions.families`);
* ``addchain<k>`` — chain whose second factor is an elementwise sum,
  ``A (B + C) D ⋯`` (k ≤ 8; lowers through the ADD kernel);
* ``solve<k>``    — triangular solve against a chain,
  ``L⁻¹ A₁ ⋯ A_{k-1}`` (k ≤ 8; lowers through the TRSM kernel).

:func:`is_known_expression` answers the membership question *without*
materialising anything — callers validating user input (the runner
CLI) stay cheap even for large ``k``.  Custom expressions can still be
registered by plugins via :func:`register`.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Tuple

from repro.expressions.aatb import AatbExpression
from repro.expressions.base import Expression
from repro.expressions.chain import ChainExpression
from repro.expressions.families import (
    AddChainExpression,
    GramExpression,
    SolveChainExpression,
    SumOfChainsExpression,
    TriChainExpression,
)

_REGISTRY: Dict[str, Expression] = {}

#: name prefix → (pattern, min k, max k, factory).
_PATTERNS: Tuple[Tuple[str, re.Pattern, int, int, Callable], ...] = (
    ("chain", re.compile(r"^chain(\d+)$"), 2, 8, ChainExpression),
    ("gram", re.compile(r"^gram(\d+)$"), 3, 8, GramExpression),
    ("tri", re.compile(r"^tri(\d+)$"), 2, 8, TriChainExpression),
    ("sum", re.compile(r"^sum(\d+)$"), 2, 8, SumOfChainsExpression),
    ("addchain", re.compile(r"^addchain(\d+)$"), 2, 8, AddChainExpression),
    ("solve", re.compile(r"^solve(\d+)$"), 2, 8, SolveChainExpression),
)


def register(expression: Expression) -> Expression:
    if not expression.name:
        raise ValueError("expression must have a name")
    _REGISTRY[expression.name] = expression
    return expression


register(AatbExpression())
register(ChainExpression(4))
register(GramExpression(3))
register(TriChainExpression(4))
register(SumOfChainsExpression(3))
register(AddChainExpression(3))
register(SolveChainExpression(3))


def known_expressions() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def _match_pattern(name: str):
    for _prefix, pattern, lo, hi, factory in _PATTERNS:
        match = pattern.match(name)
        if match:
            k = int(match.group(1))
            if lo <= k <= hi:
                return factory, k
    return None


def is_known_expression(name: str) -> bool:
    """Whether ``get_expression(name)`` would succeed — no materialising."""
    return name in _REGISTRY or _match_pattern(name) is not None


def expression_name_help() -> str:
    """The valid-name summary used by usage errors."""
    patterns = ", ".join(
        f"{prefix}<k> (k={lo}..{hi})"
        for prefix, _pattern, lo, hi, _factory in _PATTERNS
    )
    return (
        f"registered: {', '.join(known_expressions())}; "
        f"patterns: {patterns}"
    )


def get_expression(name: str) -> Expression:
    """Look up an expression; pattern families are created lazily."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    matched = _match_pattern(name)
    if matched is not None:
        factory, k = matched
        return register(factory(k))
    raise KeyError(
        f"unknown expression {name!r}; {expression_name_help()}"
    )
