"""Symbolic sizes: one shape language for FLOPs, probes and batches.

A :class:`SizeExpr` is an exact integer polynomial over *dimension
symbols* — interned stand-ins for positions in an instance dim vector
(the ``SizeVarAllocator`` idea from torchinductor's ``sizevars``,
without the sympy dependency).  Feeding :func:`dim_symbols` through
any FLOP formula or cost walk yields one canonical object that every
consumer substitutes its own way:

* :meth:`SizeExpr.size_hint` — exact integer value at a concrete
  instance (the pruning probe);
* :meth:`SizeExpr.as_poly` — the :class:`repro.core.symbolic.Poly`
  form used by the compile-time FLOP analysis;
* :meth:`SizeExpr.evaluate_columns` — vectorized evaluation over an
  ``(n, n_dims)`` int64 instance matrix;
* :meth:`SizeExpr.render` — deterministic, factored Python source for
  the codegen layer (:mod:`repro.expressions.codegen`).

Monomials are canonical sorted tuples of dim indices *with
repetition*: ``(0, 1, 1)`` is ``d0·d1²`` and ``()`` is the constant
term.  All arithmetic is exact over Python ints; every value the
paper box can produce stays far below 2**53, so downstream int64 /
float64 evaluation is lossless.
"""

from __future__ import annotations

from math import gcd
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

#: A monomial: dim indices with repetition, sorted. ``()`` = constant.
Monomial = Tuple[int, ...]

#: Interned bare symbols, one per dim index.
_SYMBOLS: Dict[int, "SizeExpr"] = {}


class SizeExpr:
    """An exact integer polynomial over instance-dim symbols.

    Supports ``+`` and ``*`` with ints and other :class:`SizeExpr`
    instances — enough to flow through every FLOP formula and cost
    walk in the compiler.  Instances are immutable in practice (the
    coefficient dict is never mutated after construction) and hash by
    canonical content, so structurally equal expressions — however
    they were built — compare and intern identically.
    """

    __slots__ = ("coeffs", "_key")

    def __init__(self, coeffs: Dict[Monomial, int]) -> None:
        self.coeffs = {m: c for m, c in coeffs.items() if c}
        self._key: Tuple[Tuple[Monomial, int], ...] = tuple(
            sorted(self.coeffs.items())
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def constant(cls, value: int) -> "SizeExpr":
        return cls({(): int(value)})

    # -- canonical identity ---------------------------------------------

    def key(self) -> Tuple[Tuple[Monomial, int], ...]:
        """Canonical hashable identity (sorted monomial/coeff pairs)."""
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SizeExpr):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    # -- arithmetic -----------------------------------------------------

    def _coerce(self, other) -> "SizeExpr":
        if isinstance(other, SizeExpr):
            return other
        if isinstance(other, (int, np.integer)):
            return SizeExpr.constant(int(other))
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other) -> "SizeExpr":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        out = dict(self.coeffs)
        for mono, coeff in other.coeffs.items():
            out[mono] = out.get(mono, 0) + coeff
        return SizeExpr(out)

    __radd__ = __add__

    def __mul__(self, other) -> "SizeExpr":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        out: Dict[Monomial, int] = {}
        for m1, c1 in self.coeffs.items():
            for m2, c2 in other.coeffs.items():
                mono = tuple(sorted(m1 + m2))
                out[mono] = out.get(mono, 0) + c1 * c2
        return SizeExpr(out)

    __rmul__ = __mul__

    # -- queries --------------------------------------------------------

    def used_dims(self) -> Tuple[int, ...]:
        """Dim indices the expression actually depends on, sorted."""
        dims = set()
        for mono in self.coeffs:
            dims.update(mono)
        return tuple(sorted(dims))

    def size_hint(self, instance: Sequence[int]) -> int:
        """Exact integer value at one concrete instance."""
        total = 0
        for mono, coeff in self.coeffs.items():
            term = coeff
            for dim in mono:
                term *= int(instance[dim])
            total += term
        return total

    def as_poly(self, n_dims: int):
        """The equivalent :class:`repro.core.symbolic.Poly`."""
        from repro.core.symbolic import Poly

        coeffs: Dict[Tuple[int, ...], int] = {}
        for mono, coeff in self.coeffs.items():
            exponents = [0] * n_dims
            for dim in mono:
                exponents[dim] += 1
            coeffs[tuple(exponents)] = coeff
        return Poly(n_dims, coeffs)

    def evaluate_columns(self, instances_matrix: np.ndarray) -> np.ndarray:
        """Vectorized value over an ``(n, n_dims)`` int64 matrix.

        The reference implementation of what the rendered source
        computes — term-by-term, no factoring — used by tests to pin
        that factoring is value-preserving.
        """
        arr = np.asarray(instances_matrix, dtype=np.int64)
        total = np.zeros(arr.shape[0], dtype=np.int64)
        for mono, coeff in sorted(self.coeffs.items()):
            term = np.full(arr.shape[0], coeff, dtype=np.int64)
            for dim in mono:
                term = term * arr[:, dim]
            total = total + term
        return total

    # -- source rendering ------------------------------------------------

    def render(self, var: Callable[[int], str]) -> str:
        """Deterministic factored Python/NumPy source for this value.

        Greedy common-factor extraction: the coefficient gcd comes out
        first, then the dim appearing in the most monomials (ties to
        the smallest index) is factored recursively — ``2*d0²*d1 +
        2*d0²*d2`` renders as ``2*(c0*(c0*(c1 + c2)))``-style nests
        with far fewer array multiplies than the expanded sum.  Exact
        over int64 columns: reassociation of integer adds/muls below
        2**53 cannot change the value.
        """
        if not self.coeffs:
            return "0"
        return _render_sum(self.coeffs, var)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SizeExpr({self.render(lambda d: f'd{d}')})"


def dim_symbol(index: int) -> SizeExpr:
    """The interned symbol for one instance-dim index."""
    if index < 0:
        raise ValueError(f"dim index must be non-negative, got {index}")
    symbol = _SYMBOLS.get(index)
    if symbol is None:
        symbol = _SYMBOLS[index] = SizeExpr({(index,): 1})
    return symbol


def dim_symbols(n_dims: int) -> Tuple[SizeExpr, ...]:
    """One interned symbol per dim of an ``n_dims``-instance vector."""
    return tuple(dim_symbol(i) for i in range(n_dims))


def _render_monomial(mono: Monomial, coeff: int, var) -> str:
    if not mono:
        return str(coeff)
    product = "*".join(var(d) for d in mono)
    if coeff == 1:
        return product
    if coeff == -1:
        return f"-{product}"
    return f"{coeff}*{product}"


def _render_sum(terms: Dict[Monomial, int], var) -> str:
    """Render a non-empty monomial sum with greedy factoring."""
    if len(terms) == 1:
        ((mono, coeff),) = terms.items()
        return _render_monomial(mono, coeff, var)
    common = 0
    for coeff in terms.values():
        common = gcd(common, abs(coeff))
    if all(coeff < 0 for coeff in terms.values()):
        common = -common
    if common != 1:
        inner = _render_sum(
            {m: c // common for m, c in sorted(terms.items())}, var
        )
        return f"{common}*({inner})"
    # The dim shared by the most monomials is the best single factor;
    # ties break to the smallest index (deterministic output).
    counts: Dict[int, int] = {}
    for mono in sorted(terms):
        for dim in set(mono):
            counts[dim] = counts.get(dim, 0) + 1
    best = min(
        counts,
        key=lambda dim: (-counts[dim], dim),
        default=None,
    )
    if best is None or counts[best] < 2:
        return " + ".join(
            _render_monomial(m, c, var) for m, c in sorted(terms.items())
        )
    inside: Dict[Monomial, int] = {}
    outside: Dict[Monomial, int] = {}
    for mono, coeff in sorted(terms.items()):
        if best in mono:
            reduced = list(mono)
            reduced.remove(best)
            inside[tuple(reduced)] = inside.get(tuple(reduced), 0) + coeff
        else:
            outside[mono] = coeff
    rendered = _render_sum(inside, var)
    if len(inside) > 1 or rendered.startswith("-"):
        rendered = f"({rendered})"
    factored = f"{var(best)}*{rendered}"
    if not outside:
        return factored
    return f"{factored} + {_render_sum(outside, var)}"
