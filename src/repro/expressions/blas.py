"""Thin real-BLAS wrappers for algorithm executors.

SciPy's LAPACK/BLAS bindings are used when available so the real
backend exercises the actual ``dgemm``/``dsyrk``/``dsymm`` routines
the paper measured; otherwise NumPy matmul stands in (same results,
kernel distinction lost).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - environment dependent
    from scipy.linalg import blas as _blas

    HAVE_SCIPY_BLAS = True
except Exception:  # pragma: no cover
    _blas = None
    HAVE_SCIPY_BLAS = False


def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C = A B via dgemm."""
    if HAVE_SCIPY_BLAS:
        return _blas.dgemm(1.0, a, b)
    return a @ b


def syrk_lower(a: np.ndarray, trans: bool = False) -> np.ndarray:
    """S = A Aᵀ (or Aᵀ A with ``trans``) via dsyrk; lower triangle valid."""
    if HAVE_SCIPY_BLAS:
        return _blas.dsyrk(1.0, a, lower=1, trans=1 if trans else 0)
    product = a.T @ a if trans else a @ a.T
    return np.tril(product)


def symm_lower(s: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C = S B via dsymm, reading only the lower triangle of S."""
    if HAVE_SCIPY_BLAS:
        return _blas.dsymm(1.0, s, b, lower=1)
    full = np.tril(s) + np.tril(s, -1).T
    return full @ b


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C = A + B elementwise (GEADD/AXPY-style; memory-bound)."""
    return a + b


def trsm(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """X = L⁻¹ B via dtrsm, reading only the lower triangle of L."""
    if HAVE_SCIPY_BLAS:
        return _blas.dtrsm(1.0, l, b, lower=1)
    return np.linalg.solve(np.tril(l), b)


def fill_symmetric_from_lower(s: np.ndarray) -> np.ndarray:
    """The explicit copy step of the syrk+copy+gemm variant."""
    return np.tril(s) + np.tril(s, -1).T
