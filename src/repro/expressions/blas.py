"""Thin real-BLAS wrappers for algorithm executors.

SciPy's LAPACK/BLAS bindings are used when available so the real
backend exercises the actual ``dgemm``/``dsyrk``/``dsymm`` routines
the paper measured; otherwise NumPy matmul stands in (same results,
kernel distinction lost).

``gemm`` and ``add`` accept an optional ``out`` buffer so the plan
scheduler can recycle a dead temporary's storage instead of
allocating.  The contract is *bit-identical results, best-effort
reuse*: when the buffer qualifies (``dgemm`` needs an F-contiguous
array of the right shape; ``np.add`` takes any same-shape buffer,
including one aliasing an input) the kernel writes into it, and when
it does not, the wrapper falls back to a fresh allocation of the very
same value — dgemm with a non-F ``c`` copies it and returns the copy,
so no shape- or layout-dependent numeric path ever changes a bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

try:  # pragma: no cover - environment dependent
    from scipy.linalg import blas as _blas

    HAVE_SCIPY_BLAS = True
except Exception:  # pragma: no cover
    _blas = None
    HAVE_SCIPY_BLAS = False


def gemm(
    a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """C = A B via dgemm, recycling ``out`` as the C buffer when it fits."""
    if HAVE_SCIPY_BLAS:
        if out is not None:
            # beta defaults to 0.0, so the prior contents of ``out``
            # never reach the result; dgemm copies a non-F buffer and
            # returns the copy (same bits, reuse lost).
            return _blas.dgemm(1.0, a, b, c=out, overwrite_c=1)
        return _blas.dgemm(1.0, a, b)
    if out is not None and out.shape == (a.shape[0], b.shape[1]):
        np.matmul(a, b, out=out)
        return out
    return a @ b


def syrk_lower(a: np.ndarray, trans: bool = False) -> np.ndarray:
    """S = A Aᵀ (or Aᵀ A with ``trans``) via dsyrk; lower triangle valid."""
    if HAVE_SCIPY_BLAS:
        return _blas.dsyrk(1.0, a, lower=1, trans=1 if trans else 0)
    product = a.T @ a if trans else a @ a.T
    return np.tril(product)


def symm_lower(s: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C = S B via dsymm, reading only the lower triangle of S."""
    if HAVE_SCIPY_BLAS:
        return _blas.dsymm(1.0, s, b, lower=1)
    full = np.tril(s) + np.tril(s, -1).T
    return full @ b


def add(
    a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """C = A + B elementwise (GEADD/AXPY-style; memory-bound).

    ``out`` may alias either input — elementwise addition reads each
    element before writing it, so in-place accumulation is exact.
    """
    if out is not None:
        return np.add(a, b, out=out)
    return a + b


def trsm(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """X = L⁻¹ B via dtrsm, reading only the lower triangle of L."""
    if HAVE_SCIPY_BLAS:
        return _blas.dtrsm(1.0, l, b, lower=1)
    return np.linalg.solve(np.tril(l), b)


def fill_symmetric_from_lower(s: np.ndarray) -> np.ndarray:
    """The explicit copy step of the syrk+copy+gemm variant."""
    return np.tril(s) + np.tril(s, -1).T


def symmetrize_lower_inplace(s: np.ndarray) -> np.ndarray:
    """Mirror the lower triangle into the upper, in place.

    Bit-equal to :func:`fill_symmetric_from_lower` for any buffer whose
    strict upper triangle is junk (a dsyrk ``lower=1`` result): the
    diagonal and lower triangle are left untouched and each upper
    element is a copy of its mirrored lower element.  Used by the
    scheduler when liveness proves the triangle has a single consumer,
    so the separate full-size copy allocation is dropped.
    """
    n = s.shape[0]
    upper = np.triu_indices(n, 1)
    s[upper] = s.T[upper]
    return s
