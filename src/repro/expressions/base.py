"""Algorithm and Expression abstractions.

An *expression* is a target computation (e.g. ``A B C D`` or
``A Aᵀ B``); an *algorithm* is one mathematically equivalent way to
evaluate it as a sequence of BLAS kernel calls.  The FLOP count of an
algorithm is a polynomial in the instance dims, so the same
``kernel_calls`` builder serves numeric evaluation, the simulated
machine, and the symbolic analysis in :mod:`repro.core.symbolic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.types import (
    KernelCall,
    KernelCallBatch,
    batch_kernel_calls,
)

#: Builds the kernel-call sequence for a concrete (or symbolic) instance.
CallsBuilder = Callable[[Sequence[Any]], Tuple[KernelCall, ...]]

#: Executes the algorithm on real operand matrices (real-BLAS backend).
Executor = Callable[[Sequence[np.ndarray]], np.ndarray]


@dataclass(frozen=True)
class Algorithm:
    """One equivalent evaluation strategy for an expression.

    ``codegen`` is an optional provider of compiled batch evaluators
    (duck-typed: ``flops_fn()`` / ``calls_fn()`` returning a callable
    over an ``(n, n_dims)`` int64 instance matrix, or None when
    disabled — see :class:`repro.expressions.codegen.PlanCodegen`).
    The batch methods below consult it first and fall back to the
    interpreted column path, so hand-built algorithms without a
    provider keep working unchanged.
    """

    name: str
    expression: str
    calls_builder: CallsBuilder = field(compare=False, repr=False)
    executor: Optional[Executor] = field(
        default=None, compare=False, repr=False
    )
    codegen: Optional[Any] = field(default=None, compare=False, repr=False)

    def kernel_calls(self, instance: Sequence[Any]) -> Tuple[KernelCall, ...]:
        return self.calls_builder(instance)

    def flops(self, instance: Sequence[Any]) -> Any:
        """Total FLOPs; exact integer for int dims, polynomial otherwise."""
        total: Any = 0
        for call in self.kernel_calls(instance):
            total = total + call.flops
        return total

    def flops_batch_function(self):
        """The compiled batch FLOP evaluator, or None.

        Plans sharing one FLOP polynomial share one function *object*,
        so callers evaluating many algorithms may dedupe whole
        evaluations by function identity (``core.classify.batch_flops``
        does).
        """
        if self.codegen is None:
            return None
        return self.codegen.flops_fn()

    def flops_batch(self, instances_matrix: np.ndarray) -> np.ndarray:
        """Exact ``(n,)`` int64 FLOPs over an ``(n, n_dims)`` int64 matrix."""
        fn = self.flops_batch_function()
        if fn is not None:
            return fn(instances_matrix)
        n = instances_matrix.shape[0]
        columns = tuple(
            instances_matrix[:, i] for i in range(instances_matrix.shape[1])
        )
        return np.broadcast_to(
            np.asarray(self.flops(columns), dtype=np.int64), (n,)
        )

    def kernel_call_batches(
        self, instances_matrix: np.ndarray
    ) -> Tuple[KernelCallBatch, ...]:
        """One :class:`KernelCallBatch` per call slot over a batch."""
        if self.codegen is not None:
            fn = self.codegen.calls_fn()
            if fn is not None:
                return fn(instances_matrix)
        columns = tuple(
            instances_matrix[:, i] for i in range(instances_matrix.shape[1])
        )
        return batch_kernel_calls(
            self.kernel_calls(columns), instances_matrix.shape[0]
        )

    def execute(self, operands: Sequence[np.ndarray]) -> np.ndarray:
        if self.executor is None:
            raise NotImplementedError(
                f"{self.name} has no real-BLAS executor"
            )
        return self.executor(operands)


class Expression:
    """A computation with several mathematically equivalent algorithms."""

    name: str = ""
    n_dims: int = 0
    operand_labels: str = ""

    def algorithms(self) -> Tuple[Algorithm, ...]:
        raise NotImplementedError

    def make_operands(
        self, instance: Sequence[int], rng: np.random.Generator
    ) -> List[np.ndarray]:
        """Random double-precision operands for a concrete instance."""
        raise NotImplementedError

    def reference(self, operands: Sequence[np.ndarray]) -> np.ndarray:
        """Straightforward NumPy evaluation, the correctness oracle."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Expression {self.name} n_dims={self.n_dims}>"
