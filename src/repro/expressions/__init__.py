"""Expression layer: computations and their equivalent algorithms.

The IR (:mod:`repro.expressions.ir`) describes a computation as
matrix leaves with properties under product/sum nodes; the compiler
(:mod:`repro.expressions.compiler`) lowers it to kernel-call plans and
wraps them as :class:`Algorithm` objects.  All registered families —
the paper's ``chain<k>``/``aatb`` and the generated ``gram<k>``/
``tri<k>``/``sum<k>`` — are built on that pipeline.
"""

from repro.expressions.base import Algorithm, Expression
from repro.expressions.chain import ChainExpression, optimal_parenthesisation
from repro.expressions.compiler import (
    CompiledExpression,
    Plan,
    PruneConfig,
    compile_plans,
)
from repro.expressions.families import (
    AddChainExpression,
    GramExpression,
    SolveChainExpression,
    SumOfChainsExpression,
    TriChainExpression,
)
from repro.expressions.ir import AddExpr, Leaf, ProductExpr, SumExpr
from repro.expressions.registry import (
    get_expression,
    is_known_expression,
    known_expressions,
    register,
)

__all__ = [
    "AddChainExpression",
    "AddExpr",
    "Algorithm",
    "ChainExpression",
    "CompiledExpression",
    "Expression",
    "GramExpression",
    "Leaf",
    "Plan",
    "ProductExpr",
    "PruneConfig",
    "SolveChainExpression",
    "SumExpr",
    "SumOfChainsExpression",
    "TriChainExpression",
    "compile_plans",
    "get_expression",
    "is_known_expression",
    "known_expressions",
    "optimal_parenthesisation",
    "register",
]
