"""Expression layer: computations and their equivalent algorithms."""

from repro.expressions.base import Algorithm, Expression
from repro.expressions.chain import ChainExpression, optimal_parenthesisation
from repro.expressions.registry import get_expression, known_expressions, register

__all__ = [
    "Algorithm",
    "ChainExpression",
    "Expression",
    "get_expression",
    "known_expressions",
    "optimal_parenthesisation",
    "register",
]
