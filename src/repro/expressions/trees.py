"""Parenthesisation trees for matrix chains.

A tree is a leaf index (``int``) or a pair ``(left, right)`` of
trees.  For a chain of ``n`` matrices with boundary dims
``(d0, ..., dn)``, the matrix spanned by leaves ``p..q`` has shape
``d_p x d_{q+1}``.
"""

from __future__ import annotations

from typing import Any, List, Sequence

Tree = Any  # int | Tuple[Tree, Tree]


def enumerate_trees(n_leaves: int, _offset: int = 0) -> List[Tree]:
    """All full binary trees over ``n_leaves`` consecutive leaves.

    Returns the ``Catalan(n_leaves - 1)`` parenthesisations in split
    order — for 4 matrices, the paper's Figure 3 plans.
    """
    if n_leaves < 1:
        raise ValueError("need at least one leaf")
    if n_leaves == 1:
        return [_offset]
    out: List[Tree] = []
    for split in range(1, n_leaves):
        lefts = enumerate_trees(split, _offset)
        rights = enumerate_trees(n_leaves - split, _offset + split)
        out.extend((l, r) for l in lefts for r in rights)
    return out


def tree_name(tree: Tree, labels: Sequence[str]) -> str:
    """Render a tree with one-letter operand labels: ``((AB)C)D``."""

    def render(node: Tree, top: bool) -> str:
        if isinstance(node, int):
            return labels[node]
        left, right = node
        inner = render(left, False) + render(right, False)
        return inner if top else f"({inner})"

    return render(tree, True)
