"""Expression IR: matrix leaves with properties, product/sum nodes.

The IR describes *what* to compute; :mod:`repro.expressions.compiler`
decides *how*, by enumerating parenthesisations and kernel rewrites.
The split mirrors the capture/lower shape of torchdynamo-style
compilers: a small declarative graph in, kernel-call plans out.  A
narrative walkthrough of the whole stack lives in ``docs/compiler.md``.

A :class:`Leaf` is one factor of a product — a (possibly transposed)
view of a stored operand.  Several leaves may reference the same
operand (the *same-operand* property, e.g. ``A`` and ``Aᵀ`` in
``A Aᵀ B``), which is what the compiler's SYRK and common-subexpression
rewrites key on.  A leaf may also mark its operand *symmetric*, which
unlocks the SYMM rewrite without a SYRK producer, or *triangular*,
which turns the leaf into the inverse of a lower-triangular stored
operand: products applying it from the left lower to TRSM (a
triangular solve — the operand is never inverted explicitly).

Beyond single leaves, a product factor may be an :class:`AddExpr` —
the elementwise sum of same-shape leaves (``A (B + C) D``).  The
compiler materialises it with the memory-bound ADD kernel before the
consuming product; an :class:`AddExpr` standing alone is also a valid
whole expression (a plain sum of stored matrices).

Shapes are expressed as indices into the expression's instance dim
vector, never as concrete sizes: the same IR serves numeric
evaluation, the simulated machine and the symbolic (polynomial) FLOP
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

#: Structural signature of a value (leaf, add or product) — the unit
#: of common-subexpression detection and of the SYRK ``X·Xᵀ`` pattern.
Signature = Tuple


@dataclass(frozen=True)
class Leaf:
    """One factor: a (possibly transposed) view of a stored operand.

    ``rows``/``cols`` are dim-vector indices of the *factor* shape; the
    stored operand has shape ``(cols, rows)`` when ``transposed``.  A
    ``triangular`` leaf is the *inverse* of a lower-triangular stored
    operand (``L⁻¹``): it must be square, must lead its product, and
    lowers to TRSM rather than to a multiplication kernel.
    """

    operand: int
    rows: int
    cols: int
    transposed: bool = False
    symmetric: bool = False
    triangular: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.operand < 0 or self.rows < 0 or self.cols < 0:
            raise ValueError("operand and dim indices must be non-negative")
        if self.symmetric and self.rows != self.cols:
            raise ValueError(
                f"symmetric leaf {self.label or self.operand} must be "
                f"square, got dims ({self.rows}, {self.cols})"
            )
        if self.triangular:
            if self.rows != self.cols:
                raise ValueError(
                    f"triangular leaf {self.label or self.operand} must "
                    f"be square, got dims ({self.rows}, {self.cols})"
                )
            if self.transposed or self.symmetric:
                raise ValueError(
                    "a triangular (inverse) leaf cannot also be "
                    "transposed or symmetric"
                )

    @property
    def stored_rows(self) -> int:
        return self.cols if self.transposed else self.rows

    @property
    def stored_cols(self) -> int:
        return self.rows if self.transposed else self.cols

    def signature(self) -> Signature:
        if self.triangular:
            return ("leaf-inv", self.operand)
        # A symmetric operand equals its own transpose; canonicalising
        # the flag makes S and Sᵀ the same value to the compiler.
        transposed = self.transposed and not self.symmetric
        return ("leaf", self.operand, transposed)

    def render(self) -> str:
        label = self.label or "ABCDEFGHIJKLMNOPQRSTUVWXYZ"[self.operand]
        if self.triangular:
            return f"inv({label})"
        return f"{label}'" if self.transposed else label


@dataclass(frozen=True)
class AddExpr:
    """Elementwise sum of same-shape leaves, usable as a product factor
    or as a whole expression; lowers to the ADD kernel."""

    leaves: Tuple[Leaf, ...]

    def __init__(self, leaves) -> None:
        leaves = tuple(leaves)
        if len(leaves) < 2:
            raise ValueError("an elementwise add needs at least two leaves")
        rows, cols = leaves[0].rows, leaves[0].cols
        for leaf in leaves[1:]:
            if (leaf.rows, leaf.cols) != (rows, cols):
                raise ValueError(
                    "added leaves must share a shape: "
                    f"({rows}, {cols}) vs ({leaf.rows}, {leaf.cols})"
                )
        if any(leaf.triangular for leaf in leaves):
            raise ValueError(
                "a triangular (inverse) leaf cannot be a summand"
            )
        object.__setattr__(self, "leaves", leaves)

    @property
    def rows(self) -> int:
        return self.leaves[0].rows

    @property
    def cols(self) -> int:
        return self.leaves[0].cols

    # Properties the compiler queries uniformly across factor kinds.
    symmetric = False
    triangular = False

    def signature(self) -> Signature:
        return ("add",) + tuple(leaf.signature() for leaf in self.leaves)

    def render(self) -> str:
        return "(" + "+".join(leaf.render() for leaf in self.leaves) + ")"


#: One multiplicative factor of a product.
Factor = Union[Leaf, AddExpr]


@dataclass(frozen=True)
class ProductExpr:
    """A flat product of factors; the compiler enumerates its trees."""

    factors: Tuple[Factor, ...]

    def __init__(self, factors) -> None:
        factors = tuple(factors)
        if len(factors) < 2:
            raise ValueError("a product needs at least two factors")
        for left, right in zip(factors, factors[1:]):
            if left.cols != right.rows:
                raise ValueError(
                    f"factor dims do not chain: {left.render()} has col "
                    f"dim {left.cols}, {right.render()} has row dim "
                    f"{right.rows}"
                )
        for position, factor in enumerate(factors):
            if factor.triangular and position != 0:
                # Leading position guarantees the leaf is a *left*
                # child in every parenthesisation tree, so TRSM (a
                # left solve) is always applicable.
                raise ValueError(
                    "a triangular (inverse) leaf must be the first "
                    f"factor of its product, found at position {position}"
                )
        object.__setattr__(self, "factors", factors)

    @property
    def rows(self) -> int:
        return self.factors[0].rows

    @property
    def cols(self) -> int:
        return self.factors[-1].cols


@dataclass(frozen=True)
class SumExpr:
    """A sum of products, all with the same result shape."""

    terms: Tuple[ProductExpr, ...]

    def __init__(self, terms) -> None:
        terms = tuple(terms)
        if len(terms) < 2:
            raise ValueError("a sum needs at least two terms")
        rows, cols = terms[0].rows, terms[0].cols
        for term in terms[1:]:
            if (term.rows, term.cols) != (rows, cols):
                raise ValueError(
                    "sum terms must share a result shape: "
                    f"({rows}, {cols}) vs ({term.rows}, {term.cols})"
                )
        object.__setattr__(self, "terms", terms)


MatrixExpr = Union[ProductExpr, SumExpr, AddExpr]


def expr_terms(expr: MatrixExpr) -> Tuple[ProductExpr, ...]:
    """The expression as a tuple of product terms (one for products).

    A standalone :class:`AddExpr` has no product terms; callers that
    need its leaves use :func:`all_leaves`.
    """
    if isinstance(expr, ProductExpr):
        return (expr,)
    if isinstance(expr, SumExpr):
        return expr.terms
    if isinstance(expr, AddExpr):
        return ()
    raise TypeError(f"not a matrix expression: {expr!r}")


def factor_leaves(factor: Factor) -> Tuple[Leaf, ...]:
    """The leaves under one factor (a leaf is its own singleton)."""
    if isinstance(factor, AddExpr):
        return factor.leaves
    return (factor,)


def all_leaves(expr: MatrixExpr) -> Tuple[Leaf, ...]:
    """Every leaf of every term, flattened in term/factor order."""
    if isinstance(expr, AddExpr):
        return expr.leaves
    return tuple(
        leaf
        for term in expr_terms(expr)
        for factor in term.factors
        for leaf in factor_leaves(factor)
    )


def expr_n_dims(expr: MatrixExpr) -> int:
    """Size of the instance dim vector the expression ranges over."""
    return 1 + max(
        index for leaf in all_leaves(expr) for index in (leaf.rows, leaf.cols)
    )


@dataclass(frozen=True)
class OperandSpec:
    """Stored shape and properties of one operand, derived from leaves."""

    index: int
    rows: int
    cols: int
    symmetric: bool
    label: str
    triangular: bool = False


def operand_table(expr: MatrixExpr) -> Tuple[OperandSpec, ...]:
    """One spec per operand; validates that shared leaves agree."""
    specs: Dict[int, OperandSpec] = {}
    for leaf in all_leaves(expr):
        spec = OperandSpec(
            index=leaf.operand,
            rows=leaf.stored_rows,
            cols=leaf.stored_cols,
            symmetric=leaf.symmetric,
            label=leaf.label or leaf.render().rstrip("'"),
            triangular=leaf.triangular,
        )
        existing = specs.get(leaf.operand)
        if existing is None:
            specs[leaf.operand] = spec
        elif existing != spec:
            raise ValueError(
                f"leaves of operand {leaf.operand} disagree on its "
                f"stored shape or properties: {existing} vs {spec}"
            )
    indices = sorted(specs)
    if indices != list(range(len(indices))):
        raise ValueError(f"operand indices must be 0..n-1, got {indices}")
    return tuple(specs[i] for i in indices)


def transpose_signature(signature: Signature) -> Signature:
    """Signature of a value's transpose: ``(XY)ᵀ = Yᵀ Xᵀ``."""
    kind = signature[0]
    if kind == "leaf":
        _, operand, transposed = signature
        return (kind, operand, not transposed)
    if kind == "leaf-inv":
        # L⁻ᵀ is not constructible in this IR (triangular leaves
        # cannot be transposed), so the transpose is a distinct tag
        # that never matches a real value's signature.
        return ("leaf-inv-t",) + signature[1:]
    if kind == "leaf-inv-t":
        return ("leaf-inv",) + signature[1:]
    if kind == "add":
        return ("add",) + tuple(
            transpose_signature(child) for child in signature[1:]
        )
    _, left, right = signature
    return (kind, transpose_signature(right), transpose_signature(left))


def chain_leaves(
    boundaries: List[int],
    labels: str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
    first_operand: int = 0,
    transposed=(),
) -> Tuple[Leaf, ...]:
    """Distinct-operand chain factors over consecutive boundary dims.

    ``boundaries`` holds ``n+1`` dim indices; factor ``i`` spans
    ``boundaries[i] × boundaries[i+1]`` and is stored transposed when
    ``i`` is in ``transposed``.
    """
    transposed = set(transposed)
    return tuple(
        Leaf(
            operand=first_operand + i,
            rows=boundaries[i],
            cols=boundaries[i + 1],
            transposed=i in transposed,
            label=labels[first_operand + i],
        )
        for i in range(len(boundaries) - 1)
    )
