"""Expression IR: matrix leaves with properties, product/sum nodes.

The IR describes *what* to compute; :mod:`repro.expressions.compiler`
decides *how*, by enumerating parenthesisations and kernel rewrites.
The split mirrors the capture/lower shape of torchdynamo-style
compilers: a small declarative graph in, kernel-call plans out.

A :class:`Leaf` is one factor of a product — a (possibly transposed)
view of a stored operand.  Several leaves may reference the same
operand (the *same-operand* property, e.g. ``A`` and ``Aᵀ`` in
``A Aᵀ B``), which is what the compiler's SYRK and common-subexpression
rewrites key on.  A leaf may also mark its operand *symmetric*, which
unlocks the SYMM rewrite without a SYRK producer.

Shapes are expressed as indices into the expression's instance dim
vector, never as concrete sizes: the same IR serves numeric
evaluation, the simulated machine and the symbolic (polynomial) FLOP
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

#: Structural signature of a value (leaf or product) — the unit of
#: common-subexpression detection and of the SYRK ``X·Xᵀ`` pattern.
Signature = Tuple


@dataclass(frozen=True)
class Leaf:
    """One factor: a (possibly transposed) view of a stored operand.

    ``rows``/``cols`` are dim-vector indices of the *factor* shape; the
    stored operand has shape ``(cols, rows)`` when ``transposed``.
    """

    operand: int
    rows: int
    cols: int
    transposed: bool = False
    symmetric: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.operand < 0 or self.rows < 0 or self.cols < 0:
            raise ValueError("operand and dim indices must be non-negative")
        if self.symmetric and self.rows != self.cols:
            raise ValueError(
                f"symmetric leaf {self.label or self.operand} must be "
                f"square, got dims ({self.rows}, {self.cols})"
            )

    @property
    def stored_rows(self) -> int:
        return self.cols if self.transposed else self.rows

    @property
    def stored_cols(self) -> int:
        return self.rows if self.transposed else self.cols

    def signature(self) -> Signature:
        # A symmetric operand equals its own transpose; canonicalising
        # the flag makes S and Sᵀ the same value to the compiler.
        transposed = self.transposed and not self.symmetric
        return ("leaf", self.operand, transposed)

    def render(self) -> str:
        label = self.label or "ABCDEFGHIJKLMNOPQRSTUVWXYZ"[self.operand]
        return f"{label}'" if self.transposed else label


@dataclass(frozen=True)
class ProductExpr:
    """A flat product of factors; the compiler enumerates its trees."""

    factors: Tuple[Leaf, ...]

    def __init__(self, factors) -> None:
        factors = tuple(factors)
        if len(factors) < 2:
            raise ValueError("a product needs at least two factors")
        for left, right in zip(factors, factors[1:]):
            if left.cols != right.rows:
                raise ValueError(
                    f"factor dims do not chain: {left.render()} has col "
                    f"dim {left.cols}, {right.render()} has row dim "
                    f"{right.rows}"
                )
        object.__setattr__(self, "factors", factors)

    @property
    def rows(self) -> int:
        return self.factors[0].rows

    @property
    def cols(self) -> int:
        return self.factors[-1].cols


@dataclass(frozen=True)
class SumExpr:
    """A sum of products, all with the same result shape."""

    terms: Tuple[ProductExpr, ...]

    def __init__(self, terms) -> None:
        terms = tuple(terms)
        if len(terms) < 2:
            raise ValueError("a sum needs at least two terms")
        rows, cols = terms[0].rows, terms[0].cols
        for term in terms[1:]:
            if (term.rows, term.cols) != (rows, cols):
                raise ValueError(
                    "sum terms must share a result shape: "
                    f"({rows}, {cols}) vs ({term.rows}, {term.cols})"
                )
        object.__setattr__(self, "terms", terms)


MatrixExpr = Union[ProductExpr, SumExpr]


def expr_terms(expr: MatrixExpr) -> Tuple[ProductExpr, ...]:
    """The expression as a tuple of product terms (one for products)."""
    if isinstance(expr, ProductExpr):
        return (expr,)
    if isinstance(expr, SumExpr):
        return expr.terms
    raise TypeError(f"not a matrix expression: {expr!r}")


def all_leaves(expr: MatrixExpr) -> Tuple[Leaf, ...]:
    """Every factor of every term, flattened in term order."""
    return tuple(
        leaf for term in expr_terms(expr) for leaf in term.factors
    )


def expr_n_dims(expr: MatrixExpr) -> int:
    """Size of the instance dim vector the expression ranges over."""
    return 1 + max(
        index for leaf in all_leaves(expr) for index in (leaf.rows, leaf.cols)
    )


@dataclass(frozen=True)
class OperandSpec:
    """Stored shape and properties of one operand, derived from leaves."""

    index: int
    rows: int
    cols: int
    symmetric: bool
    label: str


def operand_table(expr: MatrixExpr) -> Tuple[OperandSpec, ...]:
    """One spec per operand; validates that shared leaves agree."""
    specs: Dict[int, OperandSpec] = {}
    for leaf in all_leaves(expr):
        spec = OperandSpec(
            index=leaf.operand,
            rows=leaf.stored_rows,
            cols=leaf.stored_cols,
            symmetric=leaf.symmetric,
            label=leaf.label or leaf.render().rstrip("'"),
        )
        existing = specs.get(leaf.operand)
        if existing is None:
            specs[leaf.operand] = spec
        elif existing != spec:
            raise ValueError(
                f"leaves of operand {leaf.operand} disagree on its "
                f"stored shape or properties: {existing} vs {spec}"
            )
    indices = sorted(specs)
    if indices != list(range(len(indices))):
        raise ValueError(f"operand indices must be 0..n-1, got {indices}")
    return tuple(specs[i] for i in indices)


def transpose_signature(signature: Signature) -> Signature:
    """Signature of a value's transpose: ``(XY)ᵀ = Yᵀ Xᵀ``."""
    if signature[0] == "leaf":
        kind, operand, transposed = signature
        return (kind, operand, not transposed)
    kind, left, right = signature
    return (kind, transpose_signature(right), transpose_signature(left))


def chain_leaves(
    boundaries: List[int],
    labels: str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
    first_operand: int = 0,
    transposed=(),
) -> Tuple[Leaf, ...]:
    """Distinct-operand chain factors over consecutive boundary dims.

    ``boundaries`` holds ``n+1`` dim indices; factor ``i`` spans
    ``boundaries[i] × boundaries[i+1]`` and is stored transposed when
    ``i`` is in ``transposed``.
    """
    transposed = set(transposed)
    return tuple(
        Leaf(
            operand=first_operand + i,
            rows=boundaries[i],
            cols=boundaries[i + 1],
            transposed=i in transposed,
            label=labels[first_operand + i],
        )
        for i in range(len(boundaries) - 1)
    )
