"""The Gram-product expression ``A Aᵀ B`` (paper §4.2).

Instance dims ``(d0, d1, d2)``: ``A ∈ R^{d0×d1}``, ``B ∈ R^{d0×d2}``.
The five equivalent algorithms (the paper's Figure 4) are *generated*
by :mod:`repro.expressions.compiler` from the three-leaf IR
``[A, Aᵀ, B]`` with the same-operand property on the first two leaves:

1. ``syrk+symm``       S = AAᵀ (triangular), X = S B exploiting symmetry
2. ``syrk+copy+gemm``  S = AAᵀ (triangular), copy to full, X = S B
3. ``gemm+gemm``       S = A·Aᵀ (full product), X = S B
4. ``gemm+symm``       S = A·Aᵀ (full product), X = S B via symm
5. ``gemm+gemm-right`` T = Aᵀ B, X = A T (right-to-left association)

Algorithms 1/2 tie in FLOPs (the copy is FLOP-free), as do 3/4: SYRK
halves the product FLOPs, SYMM saves none.  The FLOP-cheapest pair is
SYRK-based — exactly the pair whose small-``d0`` efficiency collapse
creates the paper's ~10% anomaly abundance.

The tree order is pinned to the paper's presentation (left
association before right association) so the generated names and the
study payloads match the published artefacts exactly.
"""

from __future__ import annotations

from repro.expressions.compiler import CompiledExpression, Plan
from repro.expressions.ir import Leaf, ProductExpr

#: Figure-4 order: the ``(A Aᵀ) B`` association and its four kernel
#: variants first, the right-to-left association last.
_TREES = (((0, 1), 2), (0, (1, 2)))


def _aatb_namer(plan: Plan, ordinal: int) -> str:
    """The paper's labels: kernel tokens, ``-right`` for tree 2."""
    label = "+".join(plan.kernel_tokens)
    if plan.tree_index == 1:
        label += "-right"
    return f"aatb-{ordinal}:{label}"


class AatbExpression(CompiledExpression):
    def __init__(self) -> None:
        super().__init__(
            "aatb",
            ProductExpr(
                (
                    Leaf(operand=0, rows=0, cols=1, label="A"),
                    Leaf(operand=0, rows=1, cols=0, transposed=True, label="A"),
                    Leaf(operand=1, rows=0, cols=2, label="B"),
                )
            ),
            trees=_TREES,
            namer=_aatb_namer,
        )
