"""The Gram-product expression ``A Aᵀ B`` (paper §4.2).

Instance dims ``(d0, d1, d2)``: ``A ∈ R^{d0×d1}``, ``B ∈ R^{d0×d2}``.
Five equivalent algorithms (the paper's Figure 4):

1. ``syrk+symm``       S = AAᵀ (triangular), X = S B exploiting symmetry
2. ``syrk+copy+gemm``  S = AAᵀ (triangular), copy to full, X = S B
3. ``gemm+gemm``       S = A·Aᵀ (full product), X = S B
4. ``gemm+symm``       S = A·Aᵀ (full product), X = S B via symm
5. ``gemm+gemm-right`` T = Aᵀ B, X = A T (right-to-left association)

Algorithms 1/2 tie in FLOPs (the copy is FLOP-free), as do 3/4: SYRK
halves the product FLOPs, SYMM saves none.  The FLOP-cheapest pair is
SYRK-based — exactly the pair whose small-``d0`` efficiency collapse
creates the paper's ~10% anomaly abundance.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.expressions import blas
from repro.expressions.base import Algorithm, Expression
from repro.kernels.types import KernelCall, KernelName


def _calls_1(d: Sequence[Any]) -> Tuple[KernelCall, ...]:
    return (
        KernelCall(KernelName.SYRK, (d[0], d[1])),
        KernelCall(KernelName.SYMM, (d[0], d[2]), reads_previous=True),
    )


def _calls_2(d: Sequence[Any]) -> Tuple[KernelCall, ...]:
    return (
        KernelCall(KernelName.SYRK, (d[0], d[1]), note="then copy to full"),
        KernelCall(KernelName.GEMM, (d[0], d[2], d[0]), reads_previous=True),
    )


def _calls_3(d: Sequence[Any]) -> Tuple[KernelCall, ...]:
    return (
        KernelCall(KernelName.GEMM, (d[0], d[0], d[1])),
        KernelCall(KernelName.GEMM, (d[0], d[2], d[0]), reads_previous=True),
    )


def _calls_4(d: Sequence[Any]) -> Tuple[KernelCall, ...]:
    return (
        KernelCall(KernelName.GEMM, (d[0], d[0], d[1])),
        KernelCall(KernelName.SYMM, (d[0], d[2]), reads_previous=True),
    )


def _calls_5(d: Sequence[Any]) -> Tuple[KernelCall, ...]:
    return (
        KernelCall(KernelName.GEMM, (d[1], d[2], d[0])),
        KernelCall(KernelName.GEMM, (d[0], d[2], d[1]), reads_previous=True),
    )


def _run_1(ops: Sequence[np.ndarray]) -> np.ndarray:
    a, b = ops
    return blas.symm_lower(blas.syrk_lower(a), b)


def _run_2(ops: Sequence[np.ndarray]) -> np.ndarray:
    a, b = ops
    s = blas.fill_symmetric_from_lower(blas.syrk_lower(a))
    return blas.gemm(s, b)


def _run_3(ops: Sequence[np.ndarray]) -> np.ndarray:
    a, b = ops
    return blas.gemm(blas.gemm(a, a.T), b)


def _run_4(ops: Sequence[np.ndarray]) -> np.ndarray:
    a, b = ops
    return blas.symm_lower(blas.gemm(a, a.T), b)


def _run_5(ops: Sequence[np.ndarray]) -> np.ndarray:
    a, b = ops
    return blas.gemm(a, blas.gemm(a.T, b))


class AatbExpression(Expression):
    name = "aatb"
    n_dims = 3
    operand_labels = "AB"

    _SPECS = (
        ("aatb-1:syrk+symm", _calls_1, _run_1),
        ("aatb-2:syrk+copy+gemm", _calls_2, _run_2),
        ("aatb-3:gemm+gemm", _calls_3, _run_3),
        ("aatb-4:gemm+symm", _calls_4, _run_4),
        ("aatb-5:gemm+gemm-right", _calls_5, _run_5),
    )

    def __init__(self) -> None:
        self._algorithms = tuple(
            Algorithm(
                name=name,
                expression=self.name,
                calls_builder=builder,
                executor=runner,
            )
            for name, builder, runner in self._SPECS
        )

    def algorithms(self) -> Tuple[Algorithm, ...]:
        return self._algorithms

    def make_operands(
        self, instance: Sequence[int], rng: np.random.Generator
    ) -> List[np.ndarray]:
        d0, d1, d2 = instance
        return [
            np.asfortranarray(rng.standard_normal((d0, d1))),
            np.asfortranarray(rng.standard_normal((d0, d2))),
        ]

    def reference(self, operands: Sequence[np.ndarray]) -> np.ndarray:
        a, b = operands
        return a @ a.T @ b
