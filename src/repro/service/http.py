"""A minimal asyncio HTTP/1.1 front end for the selection engine.

Stdlib only — ``asyncio.start_server`` plus a small HTTP/1.1 request
parser (request line, headers, ``Content-Length`` body, keep-alive).
Every response is JSON.  Routes:

* ``POST /select`` — ``{"expression", "dims", ["discriminant"],
  ["annotate"]}`` → one selection, answered through the micro-batcher
  (concurrent requests for the same expression coalesce into a single
  ``select_batch`` call).
* ``POST /select_batch`` — ``{"expression", "dims": [[...], ...],
  ["discriminant"], ["annotate"]}`` → many selections in one round
  trip, bypassing the batcher (the request *is* the batch).
* ``GET /stats`` — LRU hit/miss counters, batching counters, request
  counters, engine configuration.
* ``GET /healthz`` — liveness probe.

Client errors (unknown expression/discriminant, malformed dims or
JSON) are HTTP 400 with ``{"error": ...}``; unexpected failures are
logged and answered 500 without tearing down the connection.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from typing import Optional, Tuple

from repro.service.batching import SelectionBatcher
from repro.service.engine import SelectionEngine, SelectionError

log = logging.getLogger("repro.service")

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Largest accepted request body.
MAX_BODY_BYTES = 1 << 20

#: Largest accepted request line / header line.
_MAX_LINE_BYTES = 16 << 10


class _BadRequest(Exception):
    """Unparseable HTTP; answered once, then the connection closes."""


class SelectionService:
    """The HTTP server: engine + batcher behind ``asyncio.start_server``."""

    def __init__(
        self,
        engine: SelectionEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 1024,
    ) -> None:
        self.engine = engine
        self.batcher = SelectionBatcher(engine, max_batch=max_batch)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.monotonic()
        self.request_counts = {
            "select": 0,
            "select_batch": 0,
            "stats": 0,
            "health": 0,
            "errors": 0,
        }

    async def start(self) -> "SelectionService":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Port 0 means "pick one"; report what the OS picked.
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    self.request_counts["errors"] += 1
                    await self._respond(
                        writer, 400, {"error": str(exc)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                method, path, body, keep_alive = request
                status, payload = await self._dispatch(method, path, body)
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            TimeoutError,
        ):
            pass  # client went away mid-request
        except asyncio.CancelledError:
            pass  # server shutdown with this keep-alive connection open
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.CancelledError,
            ):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        """One parsed request, or None on a clean end-of-stream."""
        try:
            line = await reader.readline()
        except ValueError:  # line longer than the stream limit
            raise _BadRequest("request line too long") from None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(f"malformed request line: {line!r}")
        method, target, version = parts
        headers = {}
        while True:
            try:
                header_line = await reader.readline()
            except ValueError:
                raise _BadRequest("header line too long") from None
            if len(header_line) > _MAX_LINE_BYTES:
                raise _BadRequest("header line too long")
            if header_line in (b"\r\n", b"\n"):
                break
            if not header_line:
                return None  # EOF mid-headers
            name, _sep, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _BadRequest(
                f"bad Content-Length: {raw_length!r}"
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadRequest(f"body too large: {length} bytes")
        body = await reader.readexactly(length) if length else b""
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep_alive = connection != "close"
        else:
            keep_alive = connection == "keep-alive"
        return method, target, body, keep_alive

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
    ) -> None:
        data = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict]:
        path = path.split("?", 1)[0]
        try:
            if path == "/select":
                if method != "POST":
                    return self._error(405, "POST /select")
                request = self._json_body(body)
                selection = await self.batcher.select(
                    request.get("expression"),
                    request.get("dims"),
                    discriminant=request.get("discriminant"),
                    annotate=bool(request.get("annotate", True)),
                )
                self.request_counts["select"] += 1
                return 200, selection.to_payload()
            if path == "/select_batch":
                if method != "POST":
                    return self._error(405, "POST /select_batch")
                request = self._json_body(body)
                dims_list = request.get("dims")
                if not isinstance(dims_list, list):
                    raise SelectionError(
                        "select_batch needs 'dims': a list of dims lists"
                    )
                selections = self.engine.select_many(
                    request.get("expression"),
                    dims_list,
                    discriminant=request.get("discriminant"),
                    annotate=bool(request.get("annotate", True)),
                )
                self.request_counts["select_batch"] += 1
                return 200, {
                    "selections": [s.to_payload() for s in selections]
                }
            if path == "/stats":
                if method != "GET":
                    return self._error(405, "GET /stats")
                self.request_counts["stats"] += 1
                return 200, self.stats()
            if path == "/healthz":
                if method != "GET":
                    return self._error(405, "GET /healthz")
                self.request_counts["health"] += 1
                return 200, {"ok": True}
            self.request_counts["errors"] += 1
            return 404, {"error": f"unknown path {path!r}"}
        except SelectionError as exc:
            self.request_counts["errors"] += 1
            return 400, {"error": str(exc)}
        except Exception as exc:  # keep serving whatever happens
            self.request_counts["errors"] += 1
            log.exception("unhandled error on %s %s", method, path)
            return 500, {"error": f"internal error: {type(exc).__name__}"}

    def _error(self, status: int, allowed: str) -> Tuple[int, dict]:
        self.request_counts["errors"] += 1
        return status, {"error": f"use {allowed}"}

    @staticmethod
    def _json_body(body: bytes) -> dict:
        try:
            payload = json.loads(body) if body else {}
        except ValueError as exc:
            raise SelectionError(f"body must be JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise SelectionError("body must be a JSON object")
        return payload

    def stats(self) -> dict:
        return {
            "ok": True,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "requests": dict(self.request_counts),
            "batch": self.batcher.stats(),
            **self.engine.stats(),
        }
