"""A minimal asyncio HTTP/1.1 front end for the selection engine.

Stdlib only — ``asyncio.start_server`` plus a small HTTP/1.1 request
parser (request line, headers, ``Content-Length`` body, keep-alive).
Every response is JSON.  Routes:

* ``POST /select`` — ``{"expression", "dims", ["discriminant"],
  ["annotate"]}`` → one selection, answered through the micro-batcher
  (concurrent requests for the same expression coalesce into a single
  ``select_batch`` call).
* ``POST /select_batch`` — ``{"expression", "dims": [[...], ...],
  ["discriminant"], ["annotate"]}`` → many selections in one round
  trip, bypassing the batcher (the request *is* the batch).
* ``GET /stats`` — LRU hit/miss counters, batching counters, request
  counters, engine configuration.
* ``GET /healthz`` — liveness probe.

Client errors (unknown expression/discriminant, malformed dims or
JSON) are HTTP 400 with ``{"error": ...}``; unexpected failures are
logged and answered 500 without tearing down the connection.

Overload and shutdown are first-class (the resilience layer):

* a per-request **deadline** answers 503 ``deadline exceeded`` when a
  dispatch overruns its budget;
* a **max-inflight** bound sheds excess load with an immediate 503
  instead of queueing without limit;
* :meth:`SelectionService.drain` (wired to SIGTERM by the CLI) stops
  accepting, lets every in-flight request finish and flush its
  response — zero dropped answers — then closes idle keep-alive
  connections and reports final stats.

``GET /stats`` carries a ``resilience`` section: shed and
deadline-exceeded counters, the study store's retry/breaker state
(when the store is remote), and the active fault plan's injection
counters.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from typing import Optional, Set, Tuple

from repro.resilience import faults
from repro.service.batching import SelectionBatcher
from repro.service.engine import SelectionEngine, SelectionError

log = logging.getLogger("repro.service")

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest accepted request body.
MAX_BODY_BYTES = 1 << 20

#: Largest accepted request line / header line.
_MAX_LINE_BYTES = 16 << 10


class _BadRequest(Exception):
    """Unparseable HTTP; answered once, then the connection closes."""


class SelectionService:
    """The HTTP server: engine + batcher behind ``asyncio.start_server``."""

    def __init__(
        self,
        engine: SelectionEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 1024,
        deadline: Optional[float] = None,
        max_inflight: Optional[int] = None,
    ) -> None:
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.engine = engine
        self.batcher = SelectionBatcher(engine, max_batch=max_batch)
        self.host = host
        self.port = port
        self.deadline = deadline
        self.max_inflight = max_inflight
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.monotonic()
        self._inflight = 0
        self._quiet: Optional[asyncio.Event] = None  # set when inflight==0
        self._draining = False
        self._conn_tasks: Set[asyncio.Task] = set()
        self.request_counts = {
            "select": 0,
            "select_batch": 0,
            "stats": 0,
            "health": 0,
            "errors": 0,
            "shed": 0,
            "deadline_exceeded": 0,
        }

    async def start(self) -> "SelectionService":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Port 0 means "pick one"; report what the OS picked.
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        self._quiet = asyncio.Event()
        self._quiet.set()
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self) -> dict:
        """Graceful shutdown: stop accepting, finish in-flight work.

        The SIGTERM path.  Closes the listener first (no new
        connections), waits for every in-flight request to write its
        response — zero dropped answers — then closes the idle
        keep-alive connections that are parked waiting for a next
        request.  Returns the final stats snapshot so the caller can
        flush it.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self._quiet is not None and self._inflight:
            self._quiet.clear()
            await self._quiet.wait()
        # Nothing is mid-request now; connections still open are idle
        # readers, and responses already carried ``Connection: close``.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        return self.stats()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _begin_request(self) -> None:
        self._inflight += 1
        if self._quiet is not None:
            self._quiet.clear()

    def _end_request(self) -> None:
        self._inflight -= 1
        if self._inflight == 0 and self._quiet is not None:
            self._quiet.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    self.request_counts["errors"] += 1
                    await self._respond(
                        writer, 400, {"error": str(exc)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                method, path, body, keep_alive = request
                self._begin_request()
                try:
                    status, payload = await self._answer(method, path, body)
                    if self._draining:
                        keep_alive = False  # finish this one, then close
                    await self._respond(writer, status, payload, keep_alive)
                finally:
                    self._end_request()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            TimeoutError,
        ):
            pass  # client went away mid-request
        except asyncio.CancelledError:
            pass  # server shutdown with this keep-alive connection open
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.CancelledError,
            ):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        """One parsed request, or None on a clean end-of-stream."""
        try:
            line = await reader.readline()
        except ValueError:  # line longer than the stream limit
            raise _BadRequest("request line too long") from None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(f"malformed request line: {line!r}")
        method, target, version = parts
        headers = {}
        while True:
            try:
                header_line = await reader.readline()
            except ValueError:
                raise _BadRequest("header line too long") from None
            if len(header_line) > _MAX_LINE_BYTES:
                raise _BadRequest("header line too long")
            if header_line in (b"\r\n", b"\n"):
                break
            if not header_line:
                return None  # EOF mid-headers
            name, _sep, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _BadRequest(
                f"bad Content-Length: {raw_length!r}"
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadRequest(f"body too large: {length} bytes")
        body = await reader.readexactly(length) if length else b""
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep_alive = connection != "close"
        else:
            keep_alive = connection == "keep-alive"
        return method, target, body, keep_alive

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
    ) -> None:
        data = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _answer(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict]:
        """Dispatch under the overload policy: shed, then deadline.

        Only the selection routes are subject to shedding and
        deadlines — ``/stats`` and ``/healthz`` must stay observable
        exactly when the service is struggling.
        """
        route = path.split("?", 1)[0]
        if route in ("/select", "/select_batch"):
            if (
                self.max_inflight is not None
                and self._inflight > self.max_inflight
            ):
                self.request_counts["shed"] += 1
                self.request_counts["errors"] += 1
                return 503, {
                    "error": (
                        f"overloaded: {self._inflight} requests in flight "
                        f"(max {self.max_inflight})"
                    )
                }
            if self.deadline is not None:
                try:
                    return await asyncio.wait_for(
                        self._dispatch(method, path, body),
                        timeout=self.deadline,
                    )
                except asyncio.TimeoutError:
                    self.request_counts["deadline_exceeded"] += 1
                    self.request_counts["errors"] += 1
                    return 503, {
                        "error": (
                            f"deadline exceeded "
                            f"({self.deadline * 1000:.0f} ms)"
                        )
                    }
        return await self._dispatch(method, path, body)

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict]:
        path = path.split("?", 1)[0]
        try:
            kind = faults.inject("service.request")
            if kind == "delay":
                await asyncio.sleep(faults.delay_seconds())
            elif kind is not None:
                raise RuntimeError(f"injected fault: service.request {kind}")
            if path == "/select":
                if method != "POST":
                    return self._error(405, "POST /select")
                request = self._json_body(body)
                selection = await self.batcher.select(
                    request.get("expression"),
                    request.get("dims"),
                    discriminant=request.get("discriminant"),
                    annotate=bool(request.get("annotate", True)),
                )
                self.request_counts["select"] += 1
                return 200, selection.to_payload()
            if path == "/select_batch":
                if method != "POST":
                    return self._error(405, "POST /select_batch")
                request = self._json_body(body)
                dims_list = request.get("dims")
                if not isinstance(dims_list, list):
                    raise SelectionError(
                        "select_batch needs 'dims': a list of dims lists"
                    )
                selections = self.engine.select_many(
                    request.get("expression"),
                    dims_list,
                    discriminant=request.get("discriminant"),
                    annotate=bool(request.get("annotate", True)),
                )
                self.request_counts["select_batch"] += 1
                return 200, {
                    "selections": [s.to_payload() for s in selections]
                }
            if path == "/stats":
                if method != "GET":
                    return self._error(405, "GET /stats")
                self.request_counts["stats"] += 1
                return 200, self.stats()
            if path == "/healthz":
                if method != "GET":
                    return self._error(405, "GET /healthz")
                self.request_counts["health"] += 1
                return 200, {"ok": True}
            self.request_counts["errors"] += 1
            return 404, {"error": f"unknown path {path!r}"}
        except SelectionError as exc:
            self.request_counts["errors"] += 1
            return 400, {"error": str(exc)}
        except Exception as exc:  # keep serving whatever happens
            self.request_counts["errors"] += 1
            log.exception("unhandled error on %s %s", method, path)
            return 500, {"error": f"internal error: {type(exc).__name__}"}

    def _error(self, status: int, allowed: str) -> Tuple[int, dict]:
        self.request_counts["errors"] += 1
        return status, {"error": f"use {allowed}"}

    @staticmethod
    def _json_body(body: bytes) -> dict:
        try:
            payload = json.loads(body) if body else {}
        except ValueError as exc:
            raise SelectionError(f"body must be JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise SelectionError("body must be a JSON object")
        return payload

    def stats(self) -> dict:
        return {
            "ok": True,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "requests": dict(self.request_counts),
            "batch": self.batcher.stats(),
            "resilience": {
                "deadline_seconds": self.deadline,
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "draining": self._draining,
                "shed": self.request_counts["shed"],
                "deadline_exceeded": self.request_counts[
                    "deadline_exceeded"
                ],
                "faults": faults.injected_stats(),
            },
            **self.engine.stats(),
        }
