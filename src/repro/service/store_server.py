"""CLI for the shared study-store server.

Serve a local store to remote runner workers, benchmark processes and
selection services::

    PYTHONPATH=src python -m repro.service.store_server \
        --store sqlite --cache-dir .study-cache --port 8765

Clients point at it with store kind ``remote`` and target
``host:port`` — e.g. warm it through the parallel runner from another
machine::

    PYTHONPATH=src python -m repro.runner \
        --store remote --cache-dir hostname:8765 --jobs 4

See :mod:`repro.service.remote` for the wire protocol.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import List, Optional

from repro.figures.cache import (
    CACHE_DIR_ENV,
    LOCAL_STORE_KINDS,
    make_store,
)
from repro.service.remote import StudyStoreServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.store_server",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port; 0 picks a free one (default: 8765)",
    )
    parser.add_argument(
        "--store",
        choices=LOCAL_STORE_KINDS,
        default="json",
        help="backing store kind (default: json)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"backing store directory (default: ${CACHE_DIR_ENV})",
    )
    return parser


async def _serve(server: StudyStoreServer) -> None:
    await server.start()
    print(
        f"study store ({server.backing.kind}) listening on "
        f"{server.host}:{server.port}",
        flush=True,
    )
    # SIGTERM/SIGINT stop accepting and let in-flight frames finish
    # (server.stop waits for the listener to close); stats flush so an
    # orchestrator's logs record what the process did.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # platform without loop signal handlers
    await stop.wait()
    await server.stop()
    print(f"store server drained: {json.dumps(server.stats())}", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        print(
            f"error: no backing store directory; pass --cache-dir or set "
            f"{CACHE_DIR_ENV}",
            file=sys.stderr,
        )
        return 2
    backing = make_store(args.store, cache_dir)
    server = StudyStoreServer(backing, host=args.host, port=args.port)
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        pass
    finally:
        backing.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
