"""CLI for the selection service.

Start an HTTP selection API over a study store::

    PYTHONPATH=src python -m repro.service \
        --store sqlite --cache-dir .study-cache --port 8373 \
        --warm chain4 aatb

then ask it which algorithm to run::

    curl -s -X POST http://127.0.0.1:8373/select \
        -d '{"expression": "aatb", "dims": [100, 200, 300]}'

Without ``--store`` the service computes studies locally on demand —
slower on the first request per expression, but fully self-contained.
See docs/service.md for the API.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from dataclasses import replace
from typing import List, Optional

from repro.core.searchspace import NAMED_BOXES
from repro.figures.cache import (
    CACHE_DIR_ENV,
    STORE_KINDS,
    StudyStore,
    make_store,
)
from repro.service.engine import DEFAULT_LRU_CAPACITY, SelectionEngine
from repro.service.http import SelectionService


def _positive_int(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8373,
        help="bind port; 0 picks a free one (default: 8373)",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="study scale the service answers from (default: quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="machine seed (default: 0)"
    )
    parser.add_argument(
        "--box",
        choices=tuple(sorted(NAMED_BOXES)),
        default="paper_box",
        help="search-space box of the backing studies (default: paper_box)",
    )
    parser.add_argument(
        "--store",
        choices=STORE_KINDS,
        default=None,
        help="study store backend; omit to compute studies locally",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="store directory, or host:port with --store remote "
        f"(default: ${CACHE_DIR_ENV})",
    )
    parser.add_argument(
        "--lru-capacity",
        type=_positive_int,
        default=DEFAULT_LRU_CAPACITY,
        help=f"hot-study LRU capacity (default: {DEFAULT_LRU_CAPACITY})",
    )
    parser.add_argument(
        "--discriminant",
        default="hybrid",
        help="default selection discriminant (default: hybrid)",
    )
    parser.add_argument(
        "--warm",
        nargs="*",
        default=(),
        metavar="EXPR",
        help="expressions whose studies to pre-load before serving",
    )
    parser.add_argument(
        "--deadline-ms",
        type=_positive_int,
        default=None,
        metavar="MS",
        help="per-request deadline in milliseconds; overruns answer "
        "503 (default: no deadline)",
    )
    parser.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=None,
        metavar="N",
        help="shed selection requests beyond N in flight with an "
        "immediate 503 (default: unbounded)",
    )
    parser.add_argument(
        "--retries",
        type=_positive_int,
        default=None,
        metavar="N",
        help="total attempts per remote-store round trip "
        "(default: the store's policy, 3; only with --store remote)",
    )
    return parser


def _build_store(args: argparse.Namespace) -> Optional[StudyStore]:
    if args.store is None:
        return None
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        raise SystemExit(
            f"error: --store {args.store} needs --cache-dir or "
            f"${CACHE_DIR_ENV}"
        )
    store = make_store(args.store, cache_dir)
    if args.retries is not None and hasattr(store, "retry"):
        store.retry = replace(store.retry, attempts=args.retries)
    return store


async def _serve(service: SelectionService, warm: List[str]) -> None:
    await service.start()
    if warm:
        sources = service.engine.warm(warm)
        for name, source in zip(warm, sources):
            print(f"warmed {name}: {source}", flush=True)
    print(f"selection service listening on {service.address}", flush=True)
    # start() already accepts connections; all that remains is to wait
    # for a shutdown signal, then drain: stop accepting, finish every
    # in-flight request (zero dropped responses), flush final stats.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # platform without loop signal handlers
    await stop.wait()
    print("draining (SIGTERM/SIGINT): stopped accepting", flush=True)
    final = await service.drain()
    print(f"drained: {json.dumps(final)}", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    store = _build_store(args)
    try:
        engine = SelectionEngine(
            scale=args.scale,
            seed=args.seed,
            box=args.box,
            store=store,
            lru_capacity=args.lru_capacity,
            default_discriminant=args.discriminant,
        )
    except ValueError as exc:
        parser.error(str(exc))
    service = SelectionService(
        engine,
        host=args.host,
        port=args.port,
        deadline=(
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        ),
        max_inflight=args.max_inflight,
    )
    try:
        asyncio.run(_serve(service, list(args.warm)))
    except KeyboardInterrupt:
        pass
    finally:
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
