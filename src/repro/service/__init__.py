"""Selection-as-a-service: the pipeline's decision function, served.

The end product of the paper's pipeline is a decision function —
"given an expression and instance dims, which algorithm?" — and this
package stands it up as a long-lived asyncio HTTP service
(``python -m repro.service``) instead of an in-process call:

* :class:`SelectionEngine` answers selections through the registered
  discriminants (min-FLOPs / profiled-time / the paper's §5 hybrid /
  benchmark-sum) and annotates each answer with whether the instance
  falls inside a known anomalous region of the expression's study.
* Studies come through a capacity-bounded :class:`LruCache` reading
  through the configured :class:`repro.figures.cache.StudyStore`; an
  unreachable or cold store degrades to local computation — the
  service keeps serving.
* :class:`SelectionBatcher` coalesces concurrent requests for the same
  expression into one ``select_batch`` call, index-identical to
  per-request selection.
* :class:`SelectionService` is the HTTP/1.1 front end (stdlib asyncio
  only): ``POST /select``, ``POST /select_batch``, ``GET /stats``,
  ``GET /healthz``.

The third store backend lives here too: ``python -m
repro.service.store_server`` serves a json/sqlite store over a
length-prefixed TCP protocol, and
:class:`repro.service.remote.RemoteStudyStore` (store kind
``remote``) is its client.  See ``docs/service.md``.
"""

from repro.service.batching import SelectionBatcher
from repro.service.engine import (
    Selection,
    SelectionEngine,
    SelectionError,
    StudyProvider,
)
from repro.service.http import SelectionService
from repro.service.lru import LruCache

__all__ = [
    "LruCache",
    "Selection",
    "SelectionBatcher",
    "SelectionEngine",
    "SelectionError",
    "SelectionService",
    "StudyProvider",
]
