"""The ``remote`` study store: length-prefixed TCP client and server.

Completes the json/sqlite/remote :class:`~repro.figures.cache.StudyStore`
triad.  A store server process (``python -m repro.service.store_server``)
owns a local backing store (json directory or sqlite database) and
serves it over a trivial wire protocol; any number of runner workers,
benchmark processes or selection services point at it with store kind
``remote`` and target ``host:port`` — machines that share no
filesystem can share one store.

Wire protocol (version 1): each message is a frame —

    4-byte big-endian unsigned length | UTF-8 JSON of that length

Requests/responses are JSON objects::

    {"op": "ping"}                           → {"ok": true, "pong": true}
    {"op": "load", "key": {scale, seed, expression, box}}
                                             → {"ok": true, "payload": text|null}
    {"op": "save", "key": {...}, "payload": text}
                                             → {"ok": true}

The payload is the *canonical study text* of
:func:`repro.figures.cache.encode_study`, relayed opaquely in both
directions — so a study that crossed the wire is byte-identical to one
written by a local store, and the server never re-encodes anything.

:class:`RemoteStudyStore` is a keyed read-through client honouring the
best-effort store contract: an unreachable or misbehaving server is a
cache miss (load) or a no-op (save) with a log line, never a pipeline
error — callers degrade to local computation and keep going.
"""

from __future__ import annotations

import asyncio
import json
import logging
import socket
import struct
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.figures.cache import (
    StudyKey,
    StudyStore,
    register_store_kind,
)

log = logging.getLogger("repro.service")

_HEADER = struct.Struct(">I")

#: Upper bound on one frame; a quick-scale study is ~100 KiB and a
#: full-scale one a few MiB, so this is generous headroom, not a limit
#: anyone should meet.
MAX_FRAME_BYTES = 64 << 20

#: Client-side socket timeout (connect and per-call), seconds.
DEFAULT_TIMEOUT = 5.0


def encode_frame(message: dict) -> bytes:
    data = json.dumps(message, separators=(",", ":")).encode()
    if len(data) > MAX_FRAME_BYTES:
        raise ValueError(f"frame too large: {len(data)} bytes")
    return _HEADER.pack(len(data)) + data


def parse_address(target: Union[str, Path]) -> Tuple[str, int]:
    """``host:port`` out of a store target (string or Path-like)."""
    text = str(target)
    host, _sep, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            f"remote store target must be host:port, got {text!r}"
        )
    return host, int(port)


def _key_to_payload(key: StudyKey) -> dict:
    return {
        "scale": key.scale,
        "seed": key.seed,
        "expression": key.expression,
        "box": key.box,
    }


def _key_from_payload(payload: dict) -> StudyKey:
    return StudyKey(
        scale=str(payload["scale"]),
        seed=int(payload["seed"]),
        expression=str(payload["expression"]),
        box=str(payload["box"]),
    )


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


class RemoteStudyStore(StudyStore):
    """Keyed read-through client of a study-store server.

    One persistent connection per store instance, re-established once
    per call on a stale socket.  Every failure path degrades to a miss
    or a no-op per the :class:`StudyStore` best-effort contract.
    """

    kind = "remote"

    def __init__(
        self, target: Union[str, Path], timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        self.host, self.port = parse_address(target)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect(self) -> Optional[socket.socket]:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            log.warning(
                "remote store %s unreachable (%s); degrading to misses",
                self.address, exc,
            )
            return None
        self._sock = sock
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _recv_exact(self, sock: socket.socket, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ConnectionError("server closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _request(self, message: dict) -> Optional[dict]:
        """One round trip; None on any failure (after one reconnect)."""
        frame = encode_frame(message)
        for attempt in (0, 1):
            sock = self._connect()
            if sock is None:
                return None
            try:
                sock.sendall(frame)
                (length,) = _HEADER.unpack(self._recv_exact(sock, 4))
                if length > MAX_FRAME_BYTES:
                    raise ConnectionError(f"oversized frame: {length}")
                response = json.loads(self._recv_exact(sock, length))
            except (OSError, ConnectionError, ValueError) as exc:
                # A stale keep-alive socket fails the first attempt;
                # reconnect once before giving up on this call.
                self._drop()
                if attempt:
                    log.warning(
                        "remote store %s call failed (%s: %s)",
                        self.address, type(exc).__name__, exc,
                    )
                    return None
                continue
            if not isinstance(response, dict) or not response.get("ok"):
                log.warning(
                    "remote store %s rejected %s: %s",
                    self.address, message.get("op"),
                    (response or {}).get("error"),
                )
                return None
            return response
        return None

    def ping(self) -> bool:
        return self._request({"op": "ping"}) is not None

    def load_text(self, key: StudyKey) -> Optional[str]:
        response = self._request(
            {"op": "load", "key": _key_to_payload(key)}
        )
        if response is None:
            return None
        payload = response.get("payload")
        return payload if isinstance(payload, str) else None

    def save_text(self, key: StudyKey, text: str) -> None:
        self._request(
            {"op": "save", "key": _key_to_payload(key), "payload": text}
        )

    def close(self) -> None:
        self._drop()


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------


class StudyStoreServer:
    """Serve a backing :class:`StudyStore` over the frame protocol."""

    def __init__(
        self,
        backing: StudyStore,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.backing = backing
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.loads = 0
        self.saves = 0
        self.errors = 0

    async def start(self) -> "StudyStoreServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                except asyncio.IncompleteReadError:
                    break  # clean end-of-stream
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    break  # drop abusive connections
                data = await reader.readexactly(length)
                writer.write(encode_frame(self._respond(data)))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown with this connection open
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.CancelledError,
            ):
                pass

    def _respond(self, data: bytes) -> dict:
        try:
            request = json.loads(data)
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True, "store": self.backing.kind}
            if op == "load":
                key = _key_from_payload(request["key"])
                self.loads += 1
                return {"ok": True, "payload": self.backing.load_text(key)}
            if op == "save":
                key = _key_from_payload(request["key"])
                payload = request["payload"]
                if not isinstance(payload, str):
                    raise TypeError("save payload must be a string")
                self.backing.save_text(key, payload)
                self.saves += 1
                return {"ok": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:
            self.errors += 1
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }


register_store_kind("remote", lambda target: RemoteStudyStore(target))
