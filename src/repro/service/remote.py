"""The ``remote`` study store: length-prefixed TCP client and server.

Completes the json/sqlite/remote :class:`~repro.figures.cache.StudyStore`
triad.  A store server process (``python -m repro.service.store_server``)
owns a local backing store (json directory or sqlite database) and
serves it over a trivial wire protocol; any number of runner workers,
benchmark processes or selection services point at it with store kind
``remote`` and target ``host:port`` — machines that share no
filesystem can share one store.

Wire protocol (version 1): each message is a frame —

    4-byte big-endian unsigned length | UTF-8 JSON of that length

Requests/responses are JSON objects::

    {"op": "ping"}                           → {"ok": true, "pong": true}
    {"op": "load", "key": {scale, seed, expression, box}}
                                             → {"ok": true, "payload": text|null}
    {"op": "save", "key": {...}, "payload": text}
                                             → {"ok": true}

The payload is the *canonical study text* of
:func:`repro.figures.cache.encode_study`, relayed opaquely in both
directions — so a study that crossed the wire is byte-identical to one
written by a local store, and the server never re-encodes anything.
The length prefix is bounded on **both** ends (:data:`MAX_FRAME_BYTES`):
an oversize prefix is a clear protocol error, never an unbounded read
or allocation.

:class:`RemoteStudyStore` is a keyed read-through client honouring the
best-effort store contract through the shared resilience layer: each
round trip runs under a :class:`~repro.resilience.RetryPolicy`
(transient transport failures — a stale keep-alive socket, a dropped
frame — are retried with deterministic backoff), and a
:class:`~repro.resilience.CircuitBreaker` opens after consecutive
transport failures so a dead server costs a dictionary lookup per call
instead of a connect timeout.  Exhausted retries and an open breaker
are a cache miss (load) or a no-op (save) with a log line, never a
pipeline error — callers degrade to local computation and keep going.

Fault sites (:mod:`repro.resilience.faults`): ``remote.send`` /
``remote.recv`` on the client, ``server.respond`` on the server.
"""

from __future__ import annotations

import asyncio
import json
import logging
import socket
import struct
import time
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.figures.cache import (
    StudyKey,
    StudyStore,
    register_store_kind,
)
from repro.resilience import CircuitBreaker, RetryError, RetryPolicy, faults

log = logging.getLogger("repro.service")

_HEADER = struct.Struct(">I")

#: Upper bound on one frame, enforced by client and server alike; a
#: quick-scale study is ~100 KiB and a full-scale one a few MiB, so
#: this is generous headroom, not a limit anyone should meet.
MAX_FRAME_BYTES = 64 << 20

#: Client-side socket timeout (connect and per-call), seconds.
DEFAULT_TIMEOUT = 5.0

#: Default retry schedule of a remote round trip.
DEFAULT_RETRY = RetryPolicy(
    attempts=3, base_delay=0.02, multiplier=2.0, max_delay=0.25
)

#: Default breaker: open after 5 consecutive transport failures,
#: half-open probe after 5 seconds.
DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_RECOVERY = 5.0


def encode_frame(message: dict) -> bytes:
    data = json.dumps(message, separators=(",", ":")).encode()
    if len(data) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame too large: {len(data)} bytes (max {MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(data)) + data


def parse_address(target: Union[str, Path]) -> Tuple[str, int]:
    """``host:port`` out of a store target (string or Path-like)."""
    text = str(target)
    host, _sep, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            f"remote store target must be host:port, got {text!r}"
        )
    return host, int(port)


def _key_to_payload(key: StudyKey) -> dict:
    return {
        "scale": key.scale,
        "seed": key.seed,
        "expression": key.expression,
        "box": key.box,
    }


def _key_from_payload(payload: dict) -> StudyKey:
    return StudyKey(
        scale=str(payload["scale"]),
        seed=int(payload["seed"]),
        expression=str(payload["expression"]),
        box=str(payload["box"]),
    )


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


class RemoteStudyStore(StudyStore):
    """Keyed read-through client of a study-store server.

    One persistent connection per store instance, re-established per
    retry attempt on a stale socket.  Every failure path degrades to a
    miss or a no-op per the :class:`StudyStore` best-effort contract;
    the retry policy and circuit breaker decide how hard to try first.
    """

    kind = "remote"

    def __init__(
        self,
        target: Union[str, Path],
        timeout: float = DEFAULT_TIMEOUT,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.host, self.port = parse_address(target)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=DEFAULT_BREAKER_THRESHOLD,
            recovery_seconds=DEFAULT_BREAKER_RECOVERY,
            name=f"remote:{self.address}",
        )
        self.retries = 0
        self.transport_failures = 0
        self.protocol_rejections = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        timeout = self.retry.attempt_timeout or self.timeout
        sock = socket.create_connection(
            (self.host, self.port), timeout=timeout
        )
        self._sock = sock
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _recv_exact(self, sock: socket.socket, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ConnectionError("server closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _round_trip(self, frame: bytes) -> dict:
        """Send one frame, read one response; raise on any failure.

        The socket is dropped on every failure path, so the next
        attempt (this call's retry, or the next store call) starts
        from a fresh connection.
        """
        sock = self._connect()
        try:
            kind = faults.inject("remote.send")
            if kind == "delay":
                time.sleep(faults.delay_seconds())
            elif kind in ("reset", "crash", "error"):
                raise ConnectionResetError(
                    "injected fault: remote.send reset"
                )
            elif kind == "torn":
                sock.sendall(frame[: max(5, len(frame) // 2)])
                raise ConnectionError(
                    "injected fault: remote.send torn frame"
                )
            elif kind == "corrupt":
                frame = _HEADER.pack(len(frame) - 4) + b"\x00" * (
                    len(frame) - 4
                )
            sock.sendall(frame)
            kind = faults.inject("remote.recv")
            if kind == "delay":
                time.sleep(faults.delay_seconds())
            elif kind is not None:
                raise ConnectionResetError(
                    f"injected fault: remote.recv {kind}"
                )
            (length,) = _HEADER.unpack(self._recv_exact(sock, 4))
            if length > MAX_FRAME_BYTES:
                raise ConnectionError(
                    f"oversized response frame: {length} bytes "
                    f"(max {MAX_FRAME_BYTES})"
                )
            return json.loads(self._recv_exact(sock, length))
        except BaseException:
            self._drop()
            raise

    def _request(self, message: dict) -> Optional[dict]:
        """One logical request under retry + breaker; None on failure."""
        frame = encode_frame(message)
        if not self.breaker.allow():
            return None  # open circuit: degrade instantly to a miss
        try:
            response = self.retry.run(
                lambda: self._round_trip(frame),
                site="remote.send",
                retriable=(OSError, ValueError),
                on_retry=lambda attempt, exc: self._count_retry(),
            )
        except RetryError as exc:
            self.transport_failures += 1
            self.breaker.record_failure()
            log.warning(
                "remote store %s call failed (%s); degrading to a miss",
                self.address, exc,
            )
            return None
        self.breaker.record_success()
        if not isinstance(response, dict) or not response.get("ok"):
            # A protocol-level rejection is a healthy transport: the
            # server answered.  It never trips the breaker.
            self.protocol_rejections += 1
            log.warning(
                "remote store %s rejected %s: %s",
                self.address, message.get("op"),
                (response or {}).get("error"),
            )
            return None
        return response

    def _count_retry(self) -> None:
        self.retries += 1

    def ping(self) -> bool:
        return self._request({"op": "ping"}) is not None

    def load_text(self, key: StudyKey) -> Optional[str]:
        response = self._request(
            {"op": "load", "key": _key_to_payload(key)}
        )
        if response is None:
            return None
        payload = response.get("payload")
        return payload if isinstance(payload, str) else None

    def save_text(self, key: StudyKey, text: str) -> None:
        self._request(
            {"op": "save", "key": _key_to_payload(key), "payload": text}
        )

    def resilience_stats(self) -> dict:
        """Retry/breaker counters for ``GET /stats`` and diagnostics."""
        return {
            "retries": self.retries,
            "transport_failures": self.transport_failures,
            "protocol_rejections": self.protocol_rejections,
            "breaker": self.breaker.stats(),
        }

    def close(self) -> None:
        self._drop()


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------


class StudyStoreServer:
    """Serve a backing :class:`StudyStore` over the frame protocol.

    The connection loop must survive anything a client can send:
    truncated frames, non-JSON payloads, oversize length prefixes and
    mid-frame disconnects are per-connection events — answered with a
    clear error frame where a response is still possible, counted, and
    never allowed to kill the accept loop.
    """

    def __init__(
        self,
        backing: StudyStore,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.backing = backing
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.loads = 0
        self.saves = 0
        self.errors = 0
        self.oversized = 0
        self.malformed = 0

    async def start(self) -> "StudyStoreServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def stats(self) -> dict:
        return {
            "loads": self.loads,
            "saves": self.saves,
            "errors": self.errors,
            "oversized": self.oversized,
            "malformed": self.malformed,
        }

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        self.malformed += 1  # truncated length prefix
                    break  # end-of-stream
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    # Refuse with a clear error instead of attempting
                    # an unbounded read/alloc, then drop the client —
                    # the stream offset is unrecoverable.
                    self.oversized += 1
                    writer.write(encode_frame({
                        "ok": False,
                        "error": (
                            f"frame length {length} exceeds "
                            f"{MAX_FRAME_BYTES} bytes"
                        ),
                    }))
                    await writer.drain()
                    break
                try:
                    data = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    self.malformed += 1  # disconnected mid-frame
                    break
                response = encode_frame(self._respond(data))
                kind = faults.inject("server.respond")
                if kind == "delay":
                    await asyncio.sleep(faults.delay_seconds())
                    kind = None
                if kind in ("reset", "crash", "error"):
                    break  # drop the connection without answering
                if kind == "corrupt":
                    # Valid frame, garbage payload: the client's JSON
                    # parse fails and its retry policy takes over.
                    response = _HEADER.pack(len(response) - 4) + b"\x00" * (
                        len(response) - 4
                    )
                elif kind == "torn":
                    writer.write(response[: max(5, len(response) // 2)])
                    await writer.drain()
                    break
                writer.write(response)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown with this connection open
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.CancelledError,
            ):
                pass

    def _respond(self, data: bytes) -> dict:
        try:
            request = json.loads(data)
            if not isinstance(request, dict):
                raise TypeError(
                    f"request must be a JSON object, "
                    f"got {type(request).__name__}"
                )
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True, "store": self.backing.kind}
            if op == "load":
                key = _key_from_payload(request["key"])
                self.loads += 1
                return {"ok": True, "payload": self.backing.load_text(key)}
            if op == "save":
                key = _key_from_payload(request["key"])
                payload = request["payload"]
                if not isinstance(payload, str):
                    raise TypeError("save payload must be a string")
                self.backing.save_text(key, payload)
                self.saves += 1
                return {"ok": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:
            self.errors += 1
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }


register_store_kind("remote", lambda target: RemoteStudyStore(target))
