"""Micro-batching: coalesce concurrent selections into one batch call.

Every request that is *waiting in the event loop at the same moment*
for the same ``(expression, discriminant, annotate)`` bucket is
answered by a single :meth:`SelectionEngine.select_many` call.  The
mechanism is the event loop itself: the first request of a bucket
schedules a drain with ``loop.call_soon``, which runs only after every
already-ready callback — so all connection handlers that parsed a
request in the current iteration append to the bucket before the drain
fires.  Under load the batch grows with concurrency; with a single
idle client it degenerates to batches of one, with no added latency
(no timer, no artificial delay).

Batched selection is index-identical to per-request selection: the
engine always selects through ``select_batch``, whose tie rule (lowest
algorithm index) is the repo-wide batching contract.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.engine import Selection, SelectionEngine

#: A bucket identity: same expression, discriminant and annotation
#: flag can share one select_batch call.
_BucketKey = Tuple[str, Optional[str], bool]


class SelectionBatcher:
    """Coalesce concurrent ``select`` awaits into ``select_many`` calls."""

    def __init__(
        self, engine: SelectionEngine, max_batch: int = 1024
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self.max_batch = max_batch
        self._pending: Dict[
            _BucketKey, List[Tuple[Sequence[int], asyncio.Future]]
        ] = {}
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_seen = 0

    async def select(
        self,
        expression: str,
        dims: Sequence[int],
        discriminant: Optional[str] = None,
        annotate: bool = True,
    ) -> Selection:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket_key: _BucketKey = (expression, discriminant, annotate)
        bucket = self._pending.get(bucket_key)
        if bucket is None:
            bucket = self._pending[bucket_key] = []
            loop.call_soon(self._drain, bucket_key)
        bucket.append((dims, future))
        if len(bucket) >= self.max_batch:
            self._drain(bucket_key)
        return await future

    def _drain(self, bucket_key: _BucketKey) -> None:
        bucket = self._pending.pop(bucket_key, None)
        if not bucket:
            return  # already drained by the max_batch fast path
        expression, discriminant, annotate = bucket_key
        try:
            selections = self.engine.select_many(
                expression,
                [dims for dims, _future in bucket],
                discriminant=discriminant,
                annotate=annotate,
            )
        except Exception as exc:
            for _dims, future in bucket:
                if not future.done():
                    future.set_exception(exc)
            return
        self.batches += 1
        self.batched_requests += len(bucket)
        self.max_batch_seen = max(self.max_batch_seen, len(bucket))
        for (_dims, future), selection in zip(bucket, selections):
            if not future.done():
                future.set_result(selection)

    def stats(self) -> dict:
        return {
            "batches": self.batches,
            "requests": self.batched_requests,
            "max_batch": self.max_batch_seen,
            "coalesced": self.batched_requests - self.batches,
        }
