"""The selection engine: discriminant answers over cached studies.

:class:`SelectionEngine` is the synchronous core the HTTP layer wraps.
At construction it builds the simulated paper machine, benchmarks the
one-off kernel performance profiles (paper §5's per-machine pass) and
instantiates every registered discriminant; per request it validates
the expression and dims, picks via ``select_batch`` (so batched and
per-request selections are index-identical by construction) and
annotates the answer with study context — whether the instance lies in
a known anomalous region of the expression's study.

Studies flow through :class:`StudyProvider`: an in-process
:class:`~repro.service.lru.LruCache` over hot ``(expression, box)``
studies, reading through the configured
:class:`~repro.figures.cache.StudyStore`.  Degradation is graceful by
design — a cold, corrupted, or unreachable store is a miss that falls
back to local computation with a log line, never a failed request.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.simulated import SimulatedBackend
from repro.core.discriminants import (
    BenchmarkDiscriminant,
    Discriminant,
    FlopsProfileHybrid,
    MinFlopsDiscriminant,
    ProfiledTimeDiscriminant,
)
from repro.core.searchspace import NAMED_BOXES
from repro.experiments.regions import Regions
from repro.expressions.base import Algorithm, Expression
from repro.expressions.codegen import codegen_stats
from repro.expressions.scheduler import scheduler_stats
from repro.expressions.registry import (
    expression_name_help,
    get_expression,
    is_known_expression,
)
from repro.ablation.components import ablation_stats
from repro.figures.cache import StudyKey, StudyStore
from repro.figures.common import FigureConfig, compute_study_results
from repro.machine.presets import paper_machine
from repro.profiles.benchmark import PROFILE_AXIS, standard_profiles
from repro.service.lru import LruCache

log = logging.getLogger("repro.service")

__all__ = ["PROFILE_AXIS", "SelectionEngine", "SelectionError"]

#: Default capacity of the hot-study LRU.
DEFAULT_LRU_CAPACITY = 8

_SCALES = ("quick", "full")

_MISS = object()


class SelectionError(ValueError):
    """A request the engine cannot serve; maps to HTTP 400."""


@dataclass(frozen=True)
class Selection:
    """One answered selection request."""

    expression: str
    dims: Tuple[int, ...]
    discriminant: str
    algorithm_index: int
    algorithm_name: str
    n_algorithms: int
    #: None when study context was skipped or unavailable.
    in_known_anomaly_region: Optional[bool]
    #: Where the study context came from:
    #: "lru" | "store" | "computed" | "unavailable" | "skipped".
    study_source: str

    def to_payload(self) -> dict:
        return {
            "expression": self.expression,
            "dims": list(self.dims),
            "discriminant": self.discriminant,
            "algorithm": {
                "index": self.algorithm_index,
                "name": self.algorithm_name,
                "of": self.n_algorithms,
            },
            "in_known_anomaly_region": self.in_known_anomaly_region,
            "study_source": self.study_source,
        }


def instance_in_regions(regions: Regions, dims: Sequence[int]) -> bool:
    """Whether dims fall in any known anomalous region's bounding box.

    Experiment 2 traverses one axis at a time, so a region is recorded
    as an origin plus per-dimension extents; the membership test here
    is the region's axis-aligned bounding box (extent interval where
    one was walked, the origin value elsewhere) — the standard convex
    over-approximation of the traversed cross.
    """
    for region in regions.regions:
        for i, value in enumerate(dims):
            extent = region.extents.get(i)
            if extent is not None:
                if not extent.lo <= value <= extent.hi:
                    break
            elif value != region.origin[i]:
                break
        else:
            return True
    return False


class StudyProvider:
    """Keyed read-through study access: LRU → store → local compute."""

    def __init__(
        self,
        store: Optional[StudyStore],
        scale: str = "quick",
        seed: int = 0,
        box: str = "paper_box",
        capacity: int = DEFAULT_LRU_CAPACITY,
    ) -> None:
        self.store = store
        self.scale = scale
        self.seed = seed
        self.box = box
        self.lru = LruCache(capacity)
        self.store_hits = 0
        self.store_misses = 0
        self.store_errors = 0
        self.computed = 0

    def key_for(self, expression: str) -> StudyKey:
        return StudyKey(
            scale=self.scale,
            seed=self.seed,
            expression=expression,
            box=self.box,
        )

    def get(self, expression: str) -> Tuple[Optional[dict], str]:
        """The study dict for an expression, and where it came from.

        Never raises: a store problem degrades to local computation,
        and a failing local computation yields ``(None,
        "unavailable")`` so selection proceeds without annotation.
        """
        cached = self.lru.get(expression, _MISS)
        if cached is not _MISS:
            return cached, "lru"
        study: Optional[dict] = None
        source = "unavailable"
        if self.store is not None:
            key = self.key_for(expression)
            try:
                study = self.store.load(key)
            except Exception as exc:
                self.store_errors += 1
                log.warning(
                    "store load failed for %s (%s: %s); computing locally",
                    key.slug, type(exc).__name__, exc,
                )
            else:
                if study is None:
                    self.store_misses += 1
                else:
                    self.store_hits += 1
                    source = "store"
        if study is None:
            config = FigureConfig(
                scale=self.scale, seed=self.seed, box=self.box
            )
            try:
                results = compute_study_results(config, expression)
            except Exception as exc:
                log.error(
                    "local study computation failed for %s (%s: %s)",
                    expression, type(exc).__name__, exc,
                )
                return None, "unavailable"
            study = dict(
                zip(("search", "regions", "prediction", "confusion"), results)
            )
            self.computed += 1
            source = "computed"
            if self.store is not None:
                try:
                    self.store.save(self.key_for(expression), *results)
                except Exception as exc:
                    self.store_errors += 1
                    log.warning(
                        "store save failed for %s (%s: %s)",
                        expression, type(exc).__name__, exc,
                    )
        self.lru.put(expression, study)
        return study, source

    def stats(self) -> dict:
        store_stats = {
            "kind": self.store.kind if self.store is not None else None,
            "hits": self.store_hits,
            "misses": self.store_misses,
            "errors": self.store_errors,
            "computed_locally": self.computed,
        }
        # The remote backend carries retry/breaker counters; surface
        # them so GET /stats shows how hard the store is degrading.
        resilience = getattr(self.store, "resilience_stats", None)
        if callable(resilience):
            store_stats["resilience"] = resilience()
        return {
            "lru": self.lru.stats(),
            "store": store_stats,
        }


class SelectionEngine:
    """Answer "which algorithm?" for ``(expression, dims)`` requests."""

    def __init__(
        self,
        scale: str = "quick",
        seed: int = 0,
        box: str = "paper_box",
        store: Optional[StudyStore] = None,
        lru_capacity: int = DEFAULT_LRU_CAPACITY,
        default_discriminant: str = "hybrid",
    ) -> None:
        if scale not in _SCALES:
            raise ValueError(f"scale must be one of {_SCALES}, got {scale!r}")
        if box not in NAMED_BOXES:
            raise ValueError(
                f"box must be one of {tuple(sorted(NAMED_BOXES))}, "
                f"got {box!r}"
            )
        self.scale = scale
        self.seed = seed
        self.box = box
        self.backend = SimulatedBackend(paper_machine(seed=seed))
        # The shared PROFILE_AXIS grid (repro.profiles.benchmark) —
        # the same profiles the ablation harness's detector ensemble
        # benchmarks, so service picks and harness picks agree.
        profiles = standard_profiles(self.backend)
        self.discriminants: Dict[str, Discriminant] = {
            "min-flops": MinFlopsDiscriminant(),
            "profiled-time": ProfiledTimeDiscriminant(profiles),
            "hybrid": FlopsProfileHybrid(profiles, margin=0.5),
            "benchmark-sum": BenchmarkDiscriminant(self.backend),
        }
        if default_discriminant not in self.discriminants:
            raise ValueError(
                f"unknown default discriminant {default_discriminant!r}; "
                f"known: {'/'.join(sorted(self.discriminants))}"
            )
        self.default_discriminant = default_discriminant
        self.studies = StudyProvider(
            store, scale=scale, seed=seed, box=box, capacity=lru_capacity
        )
        self._expressions: Dict[str, Expression] = {}
        self._algorithms: Dict[str, Tuple[Algorithm, ...]] = {}
        self.selections_served = 0

    # ------------------------------------------------------------------
    # Request validation
    # ------------------------------------------------------------------

    def expression_for(self, name: str) -> Expression:
        if not isinstance(name, str) or not name:
            raise SelectionError("request needs an 'expression' name")
        expression = self._expressions.get(name)
        if expression is None:
            if not is_known_expression(name):
                raise SelectionError(
                    f"unknown expression {name!r}; {expression_name_help()}"
                )
            expression = get_expression(name)
            self._expressions[name] = expression
            self._algorithms[name] = expression.algorithms()
        return expression

    def algorithms_for(self, name: str) -> Tuple[Algorithm, ...]:
        self.expression_for(name)
        return self._algorithms[name]

    def discriminant_for(self, name: Optional[str]) -> Tuple[str, Discriminant]:
        key = name or self.default_discriminant
        discriminant = self.discriminants.get(key)
        if discriminant is None:
            raise SelectionError(
                f"unknown discriminant {key!r}; "
                f"known: {'/'.join(sorted(self.discriminants))}"
            )
        return key, discriminant

    def _validated_dims(
        self, expression: Expression, dims: Sequence[int]
    ) -> Tuple[int, ...]:
        if not isinstance(dims, (list, tuple)):
            raise SelectionError(
                f"dims must be a list of integers, got {type(dims).__name__}"
            )
        if len(dims) != expression.n_dims:
            raise SelectionError(
                f"{expression.name} takes {expression.n_dims} dims, "
                f"got {len(dims)}"
            )
        try:
            values = tuple(int(v) for v in dims)
        except (TypeError, ValueError):
            raise SelectionError(
                f"dims must be integers, got {dims!r}"
            ) from None
        if any(v < 1 for v in values):
            raise SelectionError(f"dims must be positive, got {values}")
        return values

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def select_many(
        self,
        expression_name: str,
        dims_list: Sequence[Sequence[int]],
        discriminant: Optional[str] = None,
        annotate: bool = True,
    ) -> List[Selection]:
        """One ``select_batch`` call answering many requests at once."""
        expression = self.expression_for(expression_name)
        algorithms = self.algorithms_for(expression_name)
        disc_name, disc = self.discriminant_for(discriminant)
        instances = [
            self._validated_dims(expression, dims) for dims in dims_list
        ]
        if not instances:
            return []
        choices = disc.select_batch(algorithms, instances)
        study: Optional[dict] = None
        source = "skipped"
        if annotate:
            study, source = self.studies.get(expression_name)
        selections = []
        for dims, choice in zip(instances, choices):
            index = int(choice)
            in_region = (
                instance_in_regions(study["regions"], dims)
                if study is not None
                else None
            )
            selections.append(
                Selection(
                    expression=expression_name,
                    dims=dims,
                    discriminant=disc_name,
                    algorithm_index=index,
                    algorithm_name=algorithms[index].name,
                    n_algorithms=len(algorithms),
                    in_known_anomaly_region=in_region,
                    study_source=source,
                )
            )
        self.selections_served += len(selections)
        return selections

    def select(
        self,
        expression_name: str,
        dims: Sequence[int],
        discriminant: Optional[str] = None,
        annotate: bool = True,
    ) -> Selection:
        """A single request — a one-element batch, by construction."""
        return self.select_many(
            expression_name, [dims], discriminant=discriminant,
            annotate=annotate,
        )[0]

    def warm(self, expression_names: Sequence[str]) -> List[str]:
        """Pre-load studies into the LRU; returns the warmed sources."""
        sources = []
        for name in expression_names:
            self.expression_for(name)
            _study, source = self.studies.get(name)
            sources.append(source)
        return sources

    def stats(self) -> dict:
        return {
            "selections_served": self.selections_served,
            "engine": {
                "scale": self.scale,
                "seed": self.seed,
                "box": self.box,
                "default_discriminant": self.default_discriminant,
                "discriminants": sorted(self.discriminants),
                "expressions_loaded": sorted(self._expressions),
            },
            "codegen": codegen_stats(),
            "scheduler": scheduler_stats(),
            "ablation": ablation_stats(),
            **self.studies.stats(),
        }
