"""A capacity-bounded LRU cache with hit/miss/eviction counters.

The selection service keeps hot ``(expression, box)`` studies in
process behind the on-disk/remote :class:`~repro.figures.cache.StudyStore`;
the counters feed ``GET /stats`` so operators can size the capacity
against the live working set.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Tuple


class LruCache:
    """Least-recently-used mapping holding at most ``capacity`` entries."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership probe; does not touch recency or the counters."""
        return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Current keys, least-recently-used first."""
        return tuple(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value (marking it most-recent), else ``default``."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the coldest past capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
