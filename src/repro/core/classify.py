"""Instance evaluation and the paper's §3.3 anomaly classification.

For one instance, every equivalent algorithm is measured; then:

* the **cheapest** set holds the algorithms of minimum FLOP count;
* the **fastest** set holds the algorithms of minimum measured time;
* the **time score** is the fraction of time saved by the overall
  fastest relative to the best (fastest) minimum-FLOP algorithm,
  ``1 - t_min / t_best_cheapest``;
* the **FLOP score** is the fraction of extra FLOPs the fastest
  algorithm spends, ``1 - f_min / f_fastest`` (in ``[0, 1)``).

An instance is an **anomaly** at threshold θ when the time score
exceeds θ — picking by FLOPs forfeits more than θ of the attainable
performance.  The paper uses θ = 10% in Experiment 1 and 5% in
Experiments 2–3.

The batch entry points (:func:`evaluate_instances` /
:func:`classify_batch`) evaluate whole instance sets at once through
the backends' batch API and apply the rule above with row-wise array
arithmetic.  Every operation is either exact (integer mins, masked
selections, comparisons of values below 2**53) or the elementwise
float64 op the scalar path performs, so a batched verdict equals the
scalar verdict bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.expressions.base import Algorithm

#: Relative tolerance when intersecting "minimum" sets: measured times
#: are floats, FLOP counts exact ints; both use the same rule.
_REL_TOL = 1e-9


@dataclass(frozen=True)
class Evaluation:
    """All algorithms of one expression measured at one instance."""

    instance: Tuple[int, ...]
    algorithm_names: Tuple[str, ...]
    flops: Tuple[int, ...]
    seconds: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not (
            len(self.algorithm_names) == len(self.flops) == len(self.seconds)
        ):
            raise ValueError("ragged evaluation")
        if not self.algorithm_names:
            raise ValueError("evaluation needs at least one algorithm")

    def cheapest_indices(self) -> List[int]:
        fmin = min(self.flops)
        return [
            i for i, f in enumerate(self.flops) if f <= fmin * (1 + _REL_TOL)
        ]

    def fastest_indices(self) -> List[int]:
        tmin = min(self.seconds)
        return [
            i for i, t in enumerate(self.seconds) if t <= tmin * (1 + _REL_TOL)
        ]


@dataclass(frozen=True)
class Verdict:
    """The §3.3 classification of one evaluated instance."""

    is_anomaly: bool
    time_score: float
    flop_score: float
    threshold: float
    cheapest: Tuple[str, ...]
    fastest: Tuple[str, ...]


def evaluate_instance(
    backend: Backend,
    algorithms: Sequence[Algorithm],
    instance: Sequence[int],
) -> Evaluation:
    """Measure every algorithm at one instance on the given backend."""
    instance = tuple(int(d) for d in instance)
    return Evaluation(
        instance=instance,
        algorithm_names=tuple(a.name for a in algorithms),
        flops=tuple(int(a.flops(instance)) for a in algorithms),
        seconds=tuple(
            float(backend.time_algorithm(a, instance)) for a in algorithms
        ),
    )


def classify(evaluation: Evaluation, threshold: float = 0.10) -> Verdict:
    """Apply the paper's anomaly rule to an evaluation."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    cheapest = evaluation.cheapest_indices()
    fastest = evaluation.fastest_indices()
    t_min = min(evaluation.seconds)
    t_best_cheapest = min(evaluation.seconds[i] for i in cheapest)
    time_score = 1.0 - t_min / t_best_cheapest
    f_min = min(evaluation.flops)
    f_fastest = min(evaluation.flops[i] for i in fastest)
    flop_score = 1.0 - f_min / f_fastest if f_fastest else 0.0
    return Verdict(
        is_anomaly=time_score > threshold,
        time_score=time_score,
        flop_score=flop_score,
        threshold=threshold,
        cheapest=tuple(evaluation.algorithm_names[i] for i in cheapest),
        fastest=tuple(evaluation.algorithm_names[i] for i in fastest),
    )


@dataclass(frozen=True)
class BatchEvaluation:
    """All algorithms of one expression measured at many instances.

    ``instances`` is ``(n, n_dims)`` int64, ``flops`` is ``(n, A)``
    int64 and ``seconds`` is ``(n, A)`` float64, with one column per
    algorithm.  Row ``i`` carries exactly the data of the scalar
    :class:`Evaluation` of instance ``i`` (see :meth:`evaluation`).
    """

    instances: np.ndarray
    algorithm_names: Tuple[str, ...]
    flops: np.ndarray
    seconds: np.ndarray

    def __post_init__(self) -> None:
        n, a = self.seconds.shape
        if self.flops.shape != (n, a) or self.instances.shape[0] != n:
            raise ValueError("ragged batch evaluation")
        if len(self.algorithm_names) != a or a == 0:
            raise ValueError("batch evaluation needs at least one algorithm")

    def __len__(self) -> int:
        return self.instances.shape[0]

    def evaluation(self, i: int) -> Evaluation:
        """Row ``i`` as a scalar :class:`Evaluation`."""
        return Evaluation(
            instance=tuple(int(v) for v in self.instances[i]),
            algorithm_names=self.algorithm_names,
            flops=tuple(int(f) for f in self.flops[i]),
            seconds=tuple(float(s) for s in self.seconds[i]),
        )


def batch_flops(
    algorithms: Sequence[Algorithm], instances_matrix: np.ndarray
) -> np.ndarray:
    """Exact ``(n, A)`` int64 FLOP counts, one column per algorithm.

    Algorithms carrying a codegen provider evaluate through their
    compiled column expression; plans sharing one FLOP polynomial
    share one compiled function *object*, so those evaluations are
    deduped by function identity and computed once per batch (aatb's
    five algorithms, for instance, hold only three distinct
    polynomials).  Algorithms without a provider fall back to the
    interpreted whole-column polynomial evaluation.
    """
    n = instances_matrix.shape[0]
    out = np.empty((n, len(algorithms)), dtype=np.int64)
    shared: dict = {}
    columns = None
    for j, algorithm in enumerate(algorithms):
        fn = algorithm.flops_batch_function()
        if fn is not None:
            key = id(fn)
            column = shared.get(key)
            if column is None:
                column = shared[key] = fn(instances_matrix)
            out[:, j] = column
        else:
            if columns is None:
                columns = tuple(
                    instances_matrix[:, i]
                    for i in range(instances_matrix.shape[1])
                )
            out[:, j] = np.asarray(algorithm.flops(columns), dtype=np.int64)
    return out


def evaluate_instances(
    backend: Backend,
    algorithms: Sequence[Algorithm],
    instances: Sequence[Sequence[int]],
    predict: bool = False,
) -> BatchEvaluation:
    """Measure every algorithm at every instance on the given backend.

    FLOP counts come from evaluating each algorithm's polynomial over
    whole instance columns; times come from the backend's batch API
    (vectorized on the simulated machine, a scalar loop otherwise).
    With ``predict=True`` the seconds are the benchmark-based
    predictions (``Backend.predict_times``) instead of whole-algorithm
    measurements — Experiment 3's view of the same instances.
    """
    arr = np.asarray(instances, dtype=np.int64)
    if arr.ndim != 2:
        raise ValueError(
            f"instances must be a (n, n_dims) matrix, got shape {arr.shape!r}"
        )
    if predict:
        # One matrix call so the backend can dedupe identical
        # (kernel, dims) benchmarks across *plans*, not just within
        # one plan's instances.
        seconds = backend.predict_times_matrix(algorithms, arr)
    else:
        seconds = np.stack(
            [backend.time_algorithms(a, arr) for a in algorithms], axis=1
        )
    return BatchEvaluation(
        instances=arr,
        algorithm_names=tuple(a.name for a in algorithms),
        flops=batch_flops(algorithms, arr),
        seconds=seconds,
    )


def classify_batch(
    batch: BatchEvaluation, threshold: float = 0.10
) -> Tuple[Verdict, ...]:
    """Apply the paper's anomaly rule to every row of a batch."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    flops, seconds = batch.flops, batch.seconds
    f_min = flops.min(axis=1)
    cheap_mask = flops <= f_min[:, None] * (1 + _REL_TOL)
    t_min = seconds.min(axis=1)
    fast_mask = seconds <= t_min[:, None] * (1 + _REL_TOL)
    t_best_cheapest = np.where(cheap_mask, seconds, np.inf).min(axis=1)
    time_scores = 1.0 - t_min / t_best_cheapest
    f_fastest = np.where(fast_mask, flops, np.iinfo(np.int64).max).min(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        flop_scores = np.where(
            f_fastest != 0, 1.0 - f_min / f_fastest, 0.0
        )
    anomalies = time_scores > threshold
    names = batch.algorithm_names

    # The same cheapest/fastest membership patterns recur across most
    # rows of a batch; intern the name tuples by mask bit-pattern.
    # One ``tobytes`` per whole mask matrix (bool = 1 byte, C order)
    # and per-row byte slices as cache keys — no per-row numpy calls
    # on the hit path, and cheap/fast rows share one cache since the
    # key width is the same.
    width = len(names)
    cheap_bytes = cheap_mask.tobytes()
    fast_bytes = fast_mask.tobytes()
    name_cache: dict = {}

    def names_for(buffer: bytes, i: int, mask: np.ndarray) -> Tuple[str, ...]:
        key = buffer[i * width:(i + 1) * width]
        got = name_cache.get(key)
        if got is None:
            got = tuple(names[j] for j in np.nonzero(mask[i])[0])
            name_cache[key] = got
        return got

    return tuple(
        Verdict(
            is_anomaly=is_anomaly,
            time_score=time_score,
            flop_score=flop_score,
            threshold=threshold,
            cheapest=names_for(cheap_bytes, i, cheap_mask),
            fastest=names_for(fast_bytes, i, fast_mask),
        )
        for i, (is_anomaly, time_score, flop_score) in enumerate(
            zip(
                anomalies.tolist(),
                time_scores.tolist(),
                flop_scores.tolist(),
            )
        )
    )
