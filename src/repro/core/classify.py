"""Instance evaluation and the paper's §3.3 anomaly classification.

For one instance, every equivalent algorithm is measured; then:

* the **cheapest** set holds the algorithms of minimum FLOP count;
* the **fastest** set holds the algorithms of minimum measured time;
* the **time score** is the fraction of time saved by the overall
  fastest relative to the best (fastest) minimum-FLOP algorithm,
  ``1 - t_min / t_best_cheapest``;
* the **FLOP score** is the fraction of extra FLOPs the fastest
  algorithm spends, ``1 - f_min / f_fastest`` (in ``[0, 1)``).

An instance is an **anomaly** at threshold θ when the time score
exceeds θ — picking by FLOPs forfeits more than θ of the attainable
performance.  The paper uses θ = 10% in Experiment 1 and 5% in
Experiments 2–3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.backends.base import Backend
from repro.expressions.base import Algorithm

#: Relative tolerance when intersecting "minimum" sets: measured times
#: are floats, FLOP counts exact ints; both use the same rule.
_REL_TOL = 1e-9


@dataclass(frozen=True)
class Evaluation:
    """All algorithms of one expression measured at one instance."""

    instance: Tuple[int, ...]
    algorithm_names: Tuple[str, ...]
    flops: Tuple[int, ...]
    seconds: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not (
            len(self.algorithm_names) == len(self.flops) == len(self.seconds)
        ):
            raise ValueError("ragged evaluation")
        if not self.algorithm_names:
            raise ValueError("evaluation needs at least one algorithm")

    def cheapest_indices(self) -> List[int]:
        fmin = min(self.flops)
        return [
            i for i, f in enumerate(self.flops) if f <= fmin * (1 + _REL_TOL)
        ]

    def fastest_indices(self) -> List[int]:
        tmin = min(self.seconds)
        return [
            i for i, t in enumerate(self.seconds) if t <= tmin * (1 + _REL_TOL)
        ]


@dataclass(frozen=True)
class Verdict:
    """The §3.3 classification of one evaluated instance."""

    is_anomaly: bool
    time_score: float
    flop_score: float
    threshold: float
    cheapest: Tuple[str, ...]
    fastest: Tuple[str, ...]


def evaluate_instance(
    backend: Backend,
    algorithms: Sequence[Algorithm],
    instance: Sequence[int],
) -> Evaluation:
    """Measure every algorithm at one instance on the given backend."""
    instance = tuple(int(d) for d in instance)
    return Evaluation(
        instance=instance,
        algorithm_names=tuple(a.name for a in algorithms),
        flops=tuple(int(a.flops(instance)) for a in algorithms),
        seconds=tuple(
            float(backend.time_algorithm(a, instance)) for a in algorithms
        ),
    )


def classify(evaluation: Evaluation, threshold: float = 0.10) -> Verdict:
    """Apply the paper's anomaly rule to an evaluation."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    cheapest = evaluation.cheapest_indices()
    fastest = evaluation.fastest_indices()
    t_min = min(evaluation.seconds)
    t_best_cheapest = min(evaluation.seconds[i] for i in cheapest)
    time_score = 1.0 - t_min / t_best_cheapest
    f_min = min(evaluation.flops)
    f_fastest = min(evaluation.flops[i] for i in fastest)
    flop_score = 1.0 - f_min / f_fastest if f_fastest else 0.0
    return Verdict(
        is_anomaly=time_score > threshold,
        time_score=time_score,
        flop_score=flop_score,
        threshold=threshold,
        cheapest=tuple(evaluation.algorithm_names[i] for i in cheapest),
        fastest=tuple(evaluation.algorithm_names[i] for i in fastest),
    )
