"""Symbolic FLOP analysis: what a compiler can decide before run time.

The paper's motivating setting (§5): operand sizes may be unknown at
compile time.  Because every algorithm's FLOP count is a *polynomial*
in the instance dims (kernel FLOP formulas are polynomial and dims
map straight through), we can:

* print the exact polynomial (:func:`flop_polynomial`), and
* with some dims fixed and others ranging over an interval, compute
  which algorithms can be FLOP-cheapest for *some* assignment —
  everything else is discarded at compile time
  (:func:`possibly_cheapest`).

The polynomial arithmetic is a small self-contained implementation
(the ``SizeVarAllocator``-style symbolic-shape machinery of
torchdynamo/torchinductor inspired the dim-as-symbol approach, but a
full sympy dependency is unnecessary for degree-3 polynomials).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.expressions.base import Algorithm

#: Grid-enumeration budget for the exact analysis.
_EXACT_LIMIT = 300_000


class Poly:
    """Multivariate polynomial with exact integer-friendly coefficients.

    Monomials are exponent tuples over ``n_vars`` variables.  Supports
    ``+`` and ``*`` with Polys and numbers — enough to flow through
    any FLOP formula.
    """

    __slots__ = ("n_vars", "coeffs")

    def __init__(
        self, n_vars: int, coeffs: Dict[Tuple[int, ...], float] | None = None
    ) -> None:
        self.n_vars = n_vars
        self.coeffs: Dict[Tuple[int, ...], float] = {}
        if coeffs:
            for mono, coeff in coeffs.items():
                if coeff:
                    self.coeffs[mono] = coeff

    # -- construction ---------------------------------------------------

    @classmethod
    def variable(cls, index: int, n_vars: int) -> "Poly":
        mono = tuple(1 if i == index else 0 for i in range(n_vars))
        return cls(n_vars, {mono: 1})

    @classmethod
    def constant(cls, value, n_vars: int) -> "Poly":
        return cls(n_vars, {(0,) * n_vars: value})

    def _coerce(self, other) -> "Poly":
        if isinstance(other, Poly):
            if other.n_vars != self.n_vars:
                raise ValueError("mixed variable spaces")
            return other
        return Poly.constant(other, self.n_vars)

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other) -> "Poly":
        other = self._coerce(other)
        out = dict(self.coeffs)
        for mono, coeff in other.coeffs.items():
            out[mono] = out.get(mono, 0) + coeff
        return Poly(self.n_vars, out)

    __radd__ = __add__

    def __mul__(self, other) -> "Poly":
        other = self._coerce(other)
        out: Dict[Tuple[int, ...], float] = {}
        for m1, c1 in self.coeffs.items():
            for m2, c2 in other.coeffs.items():
                mono = tuple(a + b for a, b in zip(m1, m2))
                out[mono] = out.get(mono, 0) + c1 * c2
        return Poly(self.n_vars, out)

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return self.n_vars == other.n_vars and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.n_vars, frozenset(self.coeffs.items())))

    # -- queries --------------------------------------------------------

    @property
    def degree(self) -> int:
        return max((sum(m) for m in self.coeffs), default=0)

    def evaluate(self, values: Sequence[float]) -> float:
        if len(values) != self.n_vars:
            raise ValueError("wrong number of values")
        total = 0.0
        for mono, coeff in self.coeffs.items():
            term = coeff
            for value, exponent in zip(values, mono):
                if exponent:
                    term *= value**exponent
            total += term
        return total

    def render(self, names: Sequence[str]) -> str:
        """Human-readable form, highest-degree terms first."""
        if len(names) != self.n_vars:
            raise ValueError("need one name per variable")
        if not self.coeffs:
            return "0"
        parts = []
        for mono in sorted(
            self.coeffs, key=lambda m: (-sum(m), tuple(-e for e in m))
        ):
            coeff = self.coeffs[mono]
            factors = []
            if coeff != 1 or not any(mono):
                factors.append(f"{coeff:g}")
            for name, exponent in zip(names, mono):
                if exponent == 1:
                    factors.append(name)
                elif exponent > 1:
                    factors.append(f"{name}^{exponent}")
            parts.append("*".join(factors))
        return " + ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Poly({self.render([f'x{i}' for i in range(self.n_vars)])})"


def flop_polynomial(algorithm: Algorithm, n_dims: int | None = None) -> Poly:
    """The algorithm's FLOP count as an explicit polynomial."""
    if n_dims is None:
        from repro.expressions.registry import get_expression

        n_dims = get_expression(algorithm.expression).n_dims
    variables = [Poly.variable(i, n_dims) for i in range(n_dims)]
    total = algorithm.flops(variables)
    if not isinstance(total, Poly):  # constant-FLOP corner case
        total = Poly.constant(total, n_dims)
    return total


@dataclass(frozen=True)
class CheapestAnalysis:
    """Result of :func:`possibly_cheapest`.

    ``certain``     indices provably FLOP-cheapest for some assignment;
    ``candidates``  indices that cannot be ruled out (⊇ certain);
    ``exact``       True when the whole grid was enumerated, making
                    ``certain == candidates`` a complete answer;
    ``witnesses``   one witness instance per certain index.
    """

    certain: Tuple[int, ...]
    candidates: Tuple[int, ...]
    exact: bool
    witnesses: Dict[int, Tuple[int, ...]]


def possibly_cheapest(
    algorithms: Sequence[Algorithm],
    fixed: Dict[int, int],
    bounds_lo: Sequence[int],
    bounds_hi: Sequence[int],
) -> CheapestAnalysis:
    """Which algorithms can be FLOP-cheapest for *some* free-dim values?

    ``fixed`` maps dim index → known compile-time size; the remaining
    dims range over ``[bounds_lo[i], bounds_hi[i]]``.  Small spaces are
    enumerated exhaustively (exact); large ones are sampled on a dense
    sub-grid, in which case ``candidates`` additionally keeps any
    algorithm coming within 2% of the minimum somewhere (near-misses a
    coarse grid might have separated from a true win).
    """
    if not algorithms:
        raise ValueError("need at least one algorithm")
    n_dims = len(bounds_lo)
    if len(bounds_hi) != n_dims:
        raise ValueError("bounds length mismatch")
    free_dims = [i for i in range(n_dims) if i not in fixed]
    for dim, value in fixed.items():
        if not 0 <= dim < n_dims:
            raise ValueError(f"fixed dim {dim} out of range")
        if value < 1:
            raise ValueError("fixed sizes must be positive")

    polynomials = [flop_polynomial(a, n_dims) for a in algorithms]

    sizes = [bounds_hi[i] - bounds_lo[i] + 1 for i in free_dims]
    total_points = 1
    for size in sizes:
        total_points *= size
    exact = total_points <= _EXACT_LIMIT

    def axis_values(dim: int) -> List[int]:
        lo, hi = bounds_lo[dim], bounds_hi[dim]
        if exact or lo == hi:
            return list(range(lo, hi + 1))
        # Dense sub-grid including both endpoints.
        count = max(2, int(round(_EXACT_LIMIT ** (1 / len(free_dims)))))
        count = min(count, hi - lo + 1, 512)
        step = (hi - lo) / (count - 1)
        return sorted({int(round(lo + k * step)) for k in range(count)})

    certain: Dict[int, Tuple[int, ...]] = {}
    near: set = set()
    grids = [axis_values(dim) for dim in free_dims]
    for combo in itertools.product(*grids):
        point = [0] * n_dims
        for dim, value in fixed.items():
            point[dim] = value
        for dim, value in zip(free_dims, combo):
            point[dim] = value
        counts = [p.evaluate(point) for p in polynomials]
        minimum = min(counts)
        for i, count in enumerate(counts):
            if count == minimum:
                certain.setdefault(i, tuple(point))
            elif not exact and count <= minimum * 1.02:
                near.add(i)

    certain_idx = tuple(sorted(certain))
    candidates = certain_idx if exact else tuple(sorted(set(certain) | near))
    return CheapestAnalysis(
        certain=certain_idx,
        candidates=candidates,
        exact=exact,
        witnesses=certain,
    )
