"""Core layer: anomaly classification, search space, discriminants."""

from repro.core.classify import Evaluation, Verdict, classify, evaluate_instance
from repro.core.searchspace import Box, paper_box

__all__ = [
    "Box",
    "Evaluation",
    "Verdict",
    "classify",
    "evaluate_instance",
    "paper_box",
]
