"""Core layer: anomaly classification, search space, discriminants."""

from repro.core.classify import (
    BatchEvaluation,
    Evaluation,
    Verdict,
    classify,
    classify_batch,
    evaluate_instance,
    evaluate_instances,
)
from repro.core.searchspace import Box, paper_box

__all__ = [
    "BatchEvaluation",
    "Box",
    "Evaluation",
    "Verdict",
    "classify",
    "classify_batch",
    "evaluate_instance",
    "evaluate_instances",
    "paper_box",
]
