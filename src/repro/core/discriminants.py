"""Algorithm-selection discriminants (paper §5).

A discriminant picks one algorithm for an instance *without measuring
the candidate algorithms on that instance*:

* :class:`MinFlopsDiscriminant` — minimum FLOP count; what Linnea,
  Armadillo and Julia implement (the paper's subject).
* :class:`ProfiledTimeDiscriminant` — minimum time predicted from
  one-off interpolated kernel performance profiles.
* :class:`FlopsProfileHybrid` — the paper's conjectured combination:
  shortlist by FLOPs (discard anything more than ``margin`` above the
  minimum), then rank the shortlist by profile-predicted time.
* :class:`BenchmarkDiscriminant` — per-instance isolated kernel
  benchmarks, summed (Experiment 3's predictor, an oracle-ish upper
  bound that still misses inter-kernel cache effects).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.backends.base import Backend
from repro.expressions.base import Algorithm
from repro.kernels.types import KernelName
from repro.profiles.benchmark import Profile


class Discriminant:
    """Interface: pick the index of the algorithm to run."""

    name: str = ""

    def select(
        self, algorithms: Sequence[Algorithm], instance: Sequence[int]
    ) -> int:
        raise NotImplementedError

    def select_batch(
        self,
        algorithms: Sequence[Algorithm],
        instances: Sequence[Sequence[int]],
    ) -> List[int]:
        """Pick per instance; ties break to the lowest index, exactly
        like :meth:`select`.  Override when the scoring vectorizes."""
        return [self.select(algorithms, inst) for inst in instances]


class MinFlopsDiscriminant(Discriminant):
    name = "min-flops"

    def select(
        self, algorithms: Sequence[Algorithm], instance: Sequence[int]
    ) -> int:
        flop_counts = [int(a.flops(instance)) for a in algorithms]
        return flop_counts.index(min(flop_counts))

    def select_batch(
        self,
        algorithms: Sequence[Algorithm],
        instances: Sequence[Sequence[int]],
    ) -> List[int]:
        from repro.core.classify import batch_flops

        arr = np.asarray(instances, dtype=np.int64)
        return np.argmin(batch_flops(algorithms, arr), axis=1).tolist()


class _ProfileMixin:
    def __init__(self, profiles: Dict[KernelName, Profile]) -> None:
        self.profiles = profiles

    def predicted_time(
        self, algorithm: Algorithm, instance: Sequence[int]
    ) -> float:
        total = 0.0
        for call in algorithm.kernel_calls(tuple(instance)):
            profile = self.profiles.get(call.kernel)
            if profile is None:
                raise KeyError(
                    f"no profile for kernel {call.kernel.value}"
                )
            total += profile.predict(call.dims)
        return total

    def predicted_times_batch(
        self, algorithm: Algorithm, instances_matrix: np.ndarray
    ) -> np.ndarray:
        """Profile-predicted times for all instances as one array.

        The call batches come from the algorithm's compiled builder
        when it carries one (shape indices resolved at codegen time),
        else from running the calls builder once over whole instance
        columns — its kernel *structure* is instance-independent
        either way.  Each call slot then interpolates through
        :meth:`repro.profiles.benchmark.Profile.predict_batch`.  Call
        slots accumulate in the same order as the scalar loop, and the
        scalar ``Profile.predict`` is a one-row batch, so the summed
        times equal :meth:`predicted_time` bit for bit.
        """
        n = instances_matrix.shape[0]
        total = np.zeros(n, dtype=np.float64)
        for call_batch in algorithm.kernel_call_batches(instances_matrix):
            profile = self.profiles.get(call_batch.kernel)
            if profile is None:
                raise KeyError(
                    f"no profile for kernel {call_batch.kernel.value}"
                )
            total += profile.predict_batch(call_batch.dims)
        return total


class ProfiledTimeDiscriminant(_ProfileMixin, Discriminant):
    name = "profiled-time"

    def select(
        self, algorithms: Sequence[Algorithm], instance: Sequence[int]
    ) -> int:
        times = [self.predicted_time(a, instance) for a in algorithms]
        return times.index(min(times))

    def select_batch(
        self,
        algorithms: Sequence[Algorithm],
        instances: Sequence[Sequence[int]],
    ) -> List[int]:
        if len(instances) == 0:
            return []
        arr = np.asarray(instances, dtype=np.int64)
        times = np.stack(
            [self.predicted_times_batch(a, arr) for a in algorithms],
            axis=1,
        )
        return np.argmin(times, axis=1).tolist()


class FlopsProfileHybrid(_ProfileMixin, Discriminant):
    """Shortlist by FLOPs, then rank the shortlist by profiled time.

    Tie behaviour is guaranteed: when several shortlisted algorithms
    share the minimum profile-predicted time, the *lowest algorithm
    index* wins — exactly the rule every other discriminant applies
    (``list.index(min(...))`` / first ``argmin``), so a hybrid pick is
    reproducible and comparable across discriminants.
    """

    def __init__(
        self, profiles: Dict[KernelName, Profile], margin: float = 0.5
    ) -> None:
        super().__init__(profiles)
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = margin
        self.name = f"flops+profile(margin={margin:g})"

    def select(
        self, algorithms: Sequence[Algorithm], instance: Sequence[int]
    ) -> int:
        flop_counts = [int(a.flops(instance)) for a in algorithms]
        cutoff = min(flop_counts) * (1.0 + self.margin)
        shortlist = [
            i for i, flops in enumerate(flop_counts) if flops <= cutoff
        ]
        times = {
            i: self.predicted_time(algorithms[i], instance)
            for i in shortlist
        }
        # min() keeps the first of equally-fast candidates, and the
        # shortlist is in ascending index order: ties break low.
        return min(shortlist, key=times.__getitem__)

    def select_batch(
        self,
        algorithms: Sequence[Algorithm],
        instances: Sequence[Sequence[int]],
    ) -> List[int]:
        if len(instances) == 0:
            return []
        from repro.core.classify import batch_flops

        arr = np.asarray(instances, dtype=np.int64)
        flops = batch_flops(algorithms, arr)
        cutoff = flops.min(axis=1) * (1.0 + self.margin)
        shortlisted = flops <= cutoff[:, None]
        # Like the scalar path, only shortlisted algorithms are ever
        # profiled; a column no instance shortlists stays +inf.
        times = np.full(flops.shape, np.inf)
        for j, algorithm in enumerate(algorithms):
            if shortlisted[:, j].any():
                times[:, j] = self.predicted_times_batch(algorithm, arr)
        # argmin over +inf-masked times: first (lowest-index) minimum
        # inside the shortlist, matching the scalar tie rule.
        return np.argmin(
            np.where(shortlisted, times, np.inf), axis=1
        ).tolist()


class BenchmarkDiscriminant(Discriminant):
    name = "benchmark-sum"

    def __init__(self, backend: Backend) -> None:
        self.backend = backend

    def select(
        self, algorithms: Sequence[Algorithm], instance: Sequence[int]
    ) -> int:
        times = [
            self.backend.predict_time(a, instance) for a in algorithms
        ]
        return times.index(min(times))

    def select_batch(
        self,
        algorithms: Sequence[Algorithm],
        instances: Sequence[Sequence[int]],
    ) -> List[int]:
        # One matrix call so the backend can dedupe identical
        # (kernel, dims) benchmarks across plans (see
        # Backend.predict_times_matrix).
        times = self.backend.predict_times_matrix(algorithms, instances)
        return np.argmin(times, axis=1).tolist()
