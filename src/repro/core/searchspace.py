"""Instance search spaces: integer boxes of operand dimensions.

The paper explores dims independently drawn from ``[20, 1200]``
(its Table: 20..1200 per dimension) — :func:`paper_box`.  Larger
exploration volumes are registered by name in :data:`NAMED_BOXES`
(:func:`named_box`), so figure configs and study-cache keys can refer
to a box with a stable string.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

PAPER_LOW = 20
PAPER_HIGH = 1200


@dataclass(frozen=True)
class Box:
    """An axis-aligned integer box; samples are uniform per axis."""

    lows: Tuple[int, ...]
    highs: Tuple[int, ...]

    def __init__(self, lows: Sequence[int], highs: Sequence[int]) -> None:
        lows = tuple(int(v) for v in lows)
        highs = tuple(int(v) for v in highs)
        if len(lows) != len(highs):
            raise ValueError("lows/highs length mismatch")
        if not lows:
            raise ValueError("box needs at least one dimension")
        if any(lo > hi for lo, hi in zip(lows, highs)):
            raise ValueError(f"empty box: {lows} .. {highs}")
        if any(lo < 1 for lo in lows):
            raise ValueError("dimensions must be positive")
        object.__setattr__(self, "lows", lows)
        object.__setattr__(self, "highs", highs)

    @property
    def n_dims(self) -> int:
        return len(self.lows)

    def sample(self, rng: random.Random) -> Tuple[int, ...]:
        """One uniform sample; deterministic given the caller's rng."""
        return tuple(
            rng.randint(lo, hi) for lo, hi in zip(self.lows, self.highs)
        )

    def contains(self, instance: Sequence[int]) -> bool:
        return len(instance) == self.n_dims and all(
            lo <= v <= hi
            for v, lo, hi in zip(instance, self.lows, self.highs)
        )

    def clamp(self, instance: Sequence[int]) -> Tuple[int, ...]:
        return tuple(
            min(max(int(v), lo), hi)
            for v, lo, hi in zip(instance, self.lows, self.highs)
        )

    def span(self, dim: int) -> int:
        return self.highs[dim] - self.lows[dim]


def paper_box(n_dims: int) -> Box:
    """The paper's exploration box: every dim in [20, 1200]."""
    return Box((PAPER_LOW,) * n_dims, (PAPER_HIGH,) * n_dims)


#: Named per-dim ranges usable as the ``box`` knob of a figure config.
#: ``paper_box`` is the paper's [20, 1200]; the wider boxes keep the
#: paper's lower edge (small dims drive the anomalies) and extend the
#: upper edge beyond the published search volume.
NAMED_BOXES: Dict[str, Tuple[int, int]] = {
    "paper_box": (PAPER_LOW, PAPER_HIGH),
    "wide_box": (PAPER_LOW, 2 * PAPER_HIGH),
    "huge_box": (PAPER_LOW, 4 * PAPER_HIGH),
}


def named_box(name: str, n_dims: int) -> Box:
    """Resolve a registered box name to a concrete ``n_dims`` box."""
    try:
        low, high = NAMED_BOXES[name]
    except KeyError:
        raise KeyError(
            f"unknown box {name!r}; known: {', '.join(sorted(NAMED_BOXES))}"
        ) from None
    return Box((low,) * n_dims, (high,) * n_dims)
