"""Instance search spaces: integer boxes of operand dimensions.

The paper explores dims independently drawn from ``[20, 1200]``
(its Table: 20..1200 per dimension) — :func:`paper_box`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence, Tuple

PAPER_LOW = 20
PAPER_HIGH = 1200


@dataclass(frozen=True)
class Box:
    """An axis-aligned integer box; samples are uniform per axis."""

    lows: Tuple[int, ...]
    highs: Tuple[int, ...]

    def __init__(self, lows: Sequence[int], highs: Sequence[int]) -> None:
        lows = tuple(int(v) for v in lows)
        highs = tuple(int(v) for v in highs)
        if len(lows) != len(highs):
            raise ValueError("lows/highs length mismatch")
        if not lows:
            raise ValueError("box needs at least one dimension")
        if any(lo > hi for lo, hi in zip(lows, highs)):
            raise ValueError(f"empty box: {lows} .. {highs}")
        if any(lo < 1 for lo in lows):
            raise ValueError("dimensions must be positive")
        object.__setattr__(self, "lows", lows)
        object.__setattr__(self, "highs", highs)

    @property
    def n_dims(self) -> int:
        return len(self.lows)

    def sample(self, rng: random.Random) -> Tuple[int, ...]:
        """One uniform sample; deterministic given the caller's rng."""
        return tuple(
            rng.randint(lo, hi) for lo, hi in zip(self.lows, self.highs)
        )

    def contains(self, instance: Sequence[int]) -> bool:
        return len(instance) == self.n_dims and all(
            lo <= v <= hi
            for v, lo, hi in zip(instance, self.lows, self.highs)
        )

    def clamp(self, instance: Sequence[int]) -> Tuple[int, ...]:
        return tuple(
            min(max(int(v), lo), hi)
            for v, lo, hi in zip(instance, self.lows, self.highs)
        )

    def span(self, dim: int) -> int:
        return self.highs[dim] - self.lows[dim]


def paper_box(n_dims: int) -> Box:
    """The paper's exploration box: every dim in [20, 1200]."""
    return Box((PAPER_LOW,) * n_dims, (PAPER_HIGH,) * n_dims)
