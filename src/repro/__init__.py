"""repro — reproduction of conf_icpp_LopezKB22.

"FLOPs as a discriminant for dense linear algebra algorithms": does
minimum-FLOP algorithm selection (Linnea, Armadillo, Julia) actually
pick the fastest algorithm?  The paper finds ~10% anomaly rates on
``A Aᵀ B`` and rare-but-real anomalies on matrix chains.

Layered architecture::

    kernels      KernelName + per-kernel FLOP formulas
    machine      MachineModel / NoiseModel / spec / presets
    backends     SimulatedBackend (analytic timing), RealBlasBackend
    expressions  expression IR + algorithm compiler + family registry
    core         classify / searchspace / discriminants / symbolic
    profiles     kernel benchmarking + abrupt-change detection
    experiments  random_search / explore_regions / prediction
    analysis     selection quality / confusion / traces
    figures      regenerators for Figures 1, 6-11 and Tables 1-2
"""

from __future__ import annotations

from repro.backends.simulated import SimulatedBackend
from repro.core.classify import Verdict, classify, evaluate_instance
from repro.core.discriminants import (
    BenchmarkDiscriminant,
    FlopsProfileHybrid,
    MinFlopsDiscriminant,
    ProfiledTimeDiscriminant,
)
from repro.core.searchspace import Box, paper_box
from repro.expressions import optimal_parenthesisation
from repro.expressions.registry import get_expression

__version__ = "0.1.0"

__all__ = [
    "BenchmarkDiscriminant",
    "Box",
    "FlopsProfileHybrid",
    "MinFlopsDiscriminant",
    "ProfiledTimeDiscriminant",
    "SimulatedBackend",
    "Verdict",
    "classify",
    "evaluate_instance",
    "get_expression",
    "optimal_parenthesisation",
    "paper_box",
]
