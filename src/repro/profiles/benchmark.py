"""Kernel performance profiles: benchmark once per machine, reuse forever.

A profile stores measured isolated-kernel times on a per-axis size
grid and predicts the time of an arbitrary call by multilinear
interpolation in log-log space (BLAS times are near power-law in each
dimension, so log-log interpolation stays accurate across the
20..1400 range with a handful of grid points).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.kernels.types import KERNEL_ARITY, KernelName


@dataclass(frozen=True)
class Profile:
    kernel: KernelName
    axes: Tuple[Tuple[int, ...], ...]
    times: np.ndarray  # shape = tuple(len(axis) for axis in axes)

    def __post_init__(self) -> None:
        expected = tuple(len(axis) for axis in self.axes)
        if tuple(self.times.shape) != expected:
            raise ValueError(
                f"times shape {self.times.shape} != grid {expected}"
            )
        if any(len(axis) < 2 for axis in self.axes):
            raise ValueError("each axis needs at least two grid points")
        object.__setattr__(self, "_log_times", np.log(self.times))

    @property
    def n_points(self) -> int:
        return int(self.times.size)

    def predict(self, dims: Sequence[int]) -> float:
        """Interpolated time for one call; clamped outside the grid."""
        if len(dims) != len(self.axes):
            raise ValueError(
                f"{self.kernel.value} takes {len(self.axes)} dims"
            )
        log_times = self._log_times
        # Per-axis: find bracketing grid cell and log-space weight.
        corners = []
        for value, axis in zip(dims, self.axes):
            v = min(max(float(value), axis[0]), axis[-1])
            hi = 1
            while hi < len(axis) - 1 and axis[hi] < v:
                hi += 1
            lo = hi - 1
            weight = (math.log(v) - math.log(axis[lo])) / (
                math.log(axis[hi]) - math.log(axis[lo])
            )
            corners.append((lo, hi, weight))
        # Multilinear blend over the 2^n cell corners.
        total = 0.0
        n = len(corners)
        for mask in range(1 << n):
            weight = 1.0
            index = []
            for axis_i, (lo, hi, w) in enumerate(corners):
                if mask >> axis_i & 1:
                    weight *= w
                    index.append(hi)
                else:
                    weight *= 1.0 - w
                    index.append(lo)
            if weight:
                total += weight * float(log_times[tuple(index)])
        return math.exp(total)


def build_profile(
    backend: Backend, kernel: KernelName, axes: Sequence[Sequence[int]]
) -> Profile:
    """Benchmark one kernel over the full grid of axis values."""
    axes_t = tuple(tuple(int(v) for v in axis) for axis in axes)
    if len(axes_t) != KERNEL_ARITY[kernel]:
        raise ValueError(
            f"{kernel.value} takes {KERNEL_ARITY[kernel]} axes, "
            f"got {len(axes_t)}"
        )
    shape = tuple(len(axis) for axis in axes_t)
    # One batched timing call over the whole grid (C-order, so the
    # reshape matches np.ndindex iteration).
    grid = [
        tuple(axis[i] for axis, i in zip(axes_t, index))
        for index in np.ndindex(*shape)
    ]
    times = backend.time_kernels(kernel, grid).reshape(shape)
    return Profile(kernel=kernel, axes=axes_t, times=times)


def build_all_profiles(
    backend: Backend,
    axes_by_kernel: Dict[KernelName, Sequence[Sequence[int]]],
) -> Dict[KernelName, Profile]:
    """The one-off per-machine benchmarking pass (paper §5's proposal)."""
    return {
        kernel: build_profile(backend, kernel, axes)
        for kernel, axes in axes_by_kernel.items()
    }
