"""Kernel performance profiles: benchmark once per machine, reuse forever.

A profile stores measured isolated-kernel times on a per-axis size
grid and predicts the time of an arbitrary call by multilinear
interpolation in log-log space (BLAS times are near power-law in each
dimension, so log-log interpolation stays accurate across the
20..1400 range with a handful of grid points).

Prediction is batch-first: :meth:`Profile.predict_batch` interpolates
whole ``(n, arity)`` dim matrices with array arithmetic, and the
scalar :meth:`Profile.predict` *is* a one-row batch — so scalar and
batched predictions are bit-for-bit identical by construction (the
repo-wide batching contract, see ``tests/test_batch_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.kernels.types import KERNEL_ARITY, KernelName


@dataclass(frozen=True)
class Profile:
    kernel: KernelName
    axes: Tuple[Tuple[int, ...], ...]
    times: np.ndarray  # shape = tuple(len(axis) for axis in axes)

    def __post_init__(self) -> None:
        expected = tuple(len(axis) for axis in self.axes)
        if tuple(self.times.shape) != expected:
            raise ValueError(
                f"times shape {self.times.shape} != grid {expected}"
            )
        if any(len(axis) < 2 for axis in self.axes):
            raise ValueError("each axis needs at least two grid points")
        flat_log = np.log(np.ascontiguousarray(self.times)).reshape(-1)
        object.__setattr__(self, "_flat_log_times", flat_log)
        # Row-major strides (in elements) into the flattened grid, and
        # per-axis float views + log views for the interpolation.
        strides = np.ones(len(self.axes), dtype=np.int64)
        for i in range(len(self.axes) - 2, -1, -1):
            strides[i] = strides[i + 1] * len(self.axes[i + 1])
        object.__setattr__(self, "_strides", strides)
        axes_f = tuple(
            np.asarray(axis, dtype=np.float64) for axis in self.axes
        )
        object.__setattr__(self, "_axes_f", axes_f)
        object.__setattr__(
            self, "_log_axes", tuple(np.log(a) for a in axes_f)
        )

    @property
    def n_points(self) -> int:
        return int(self.times.size)

    def predict(self, dims: Sequence[int]) -> float:
        """Interpolated time for one call; clamped outside the grid."""
        return float(self.predict_batch(np.asarray(dims)[None, :])[0])

    def predict_batch(self, dims_matrix: np.ndarray) -> np.ndarray:
        """Interpolated times for ``(n, arity)`` calls at once.

        Vectorized log-log multilinear interpolation: per axis, the
        bracketing grid cell and log-space weight for every row; then
        the blend over the 2^arity cell corners as array arithmetic.
        Values outside the grid are clamped, exactly like the scalar
        path (which is this method on a one-row matrix).
        """
        dims = np.asarray(dims_matrix, dtype=np.float64)
        if dims.ndim != 2 or dims.shape[1] != len(self.axes):
            raise ValueError(
                f"{self.kernel.value} takes (n, {len(self.axes)}) dims, "
                f"got shape {dims.shape!r}"
            )
        n = dims.shape[0]
        n_axes = len(self.axes)
        lows = np.empty((n, n_axes), dtype=np.int64)
        weights = np.empty((n, n_axes), dtype=np.float64)
        for axis_i, (axis_f, log_axis) in enumerate(
            zip(self._axes_f, self._log_axes)
        ):
            v = np.clip(dims[:, axis_i], axis_f[0], axis_f[-1])
            hi = np.clip(
                np.searchsorted(axis_f, v, side="left"), 1, len(axis_f) - 1
            )
            lo = hi - 1
            lows[:, axis_i] = lo
            weights[:, axis_i] = (np.log(v) - log_axis[lo]) / (
                log_axis[hi] - log_axis[lo]
            )
        # Multilinear blend over the 2^n cell corners, accumulated in
        # the same corner order (and per-axis factor order) as the
        # scalar loop used to, so results are reproducible bit-for-bit.
        total = np.zeros(n, dtype=np.float64)
        flat_log = self._flat_log_times
        strides = self._strides
        for mask in range(1 << n_axes):
            weight = np.ones(n, dtype=np.float64)
            flat_index = np.zeros(n, dtype=np.int64)
            for axis_i in range(n_axes):
                if mask >> axis_i & 1:
                    weight = weight * weights[:, axis_i]
                    flat_index += (lows[:, axis_i] + 1) * strides[axis_i]
                else:
                    weight = weight * (1.0 - weights[:, axis_i])
                    flat_index += lows[:, axis_i] * strides[axis_i]
            total += weight * flat_log[flat_index]
        return np.exp(total)


def build_profile(
    backend: Backend, kernel: KernelName, axes: Sequence[Sequence[int]]
) -> Profile:
    """Benchmark one kernel over the full grid of axis values."""
    axes_t = tuple(tuple(int(v) for v in axis) for axis in axes)
    if len(axes_t) != KERNEL_ARITY[kernel]:
        raise ValueError(
            f"{kernel.value} takes {KERNEL_ARITY[kernel]} axes, "
            f"got {len(axes_t)}"
        )
    shape = tuple(len(axis) for axis in axes_t)
    # One batched timing call over the whole grid (C-order, so the
    # reshape matches np.ndindex iteration).
    grid = [
        tuple(axis[i] for axis, i in zip(axes_t, index))
        for index in np.ndindex(*shape)
    ]
    times = backend.time_kernels(kernel, grid).reshape(shape)
    return Profile(kernel=kernel, axes=axes_t, times=times)


#: Per-dimension grid of the standard profile-benchmarking pass —
#: shared by the selection service, the discriminant ablation bench
#: and the ablation harness so their profile-based discriminants are
#: comparable.
PROFILE_AXIS = (24, 64, 160, 400, 800, 1400)


def build_all_profiles(
    backend: Backend,
    axes_by_kernel: Dict[KernelName, Sequence[Sequence[int]]],
) -> Dict[KernelName, Profile]:
    """The one-off per-machine benchmarking pass (paper §5's proposal)."""
    return {
        kernel: build_profile(backend, kernel, axes)
        for kernel, axes in axes_by_kernel.items()
    }


def standard_profiles(backend: Backend) -> Dict[KernelName, Profile]:
    """Every kernel profiled over the :data:`PROFILE_AXIS` grid."""
    return build_all_profiles(
        backend,
        {
            kernel: (PROFILE_AXIS,) * KERNEL_ARITY[kernel]
            for kernel in KernelName
        },
    )
