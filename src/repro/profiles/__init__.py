"""Profiles layer: one-off kernel benchmarking and profile analysis."""

from repro.profiles.benchmark import Profile, build_all_profiles, build_profile

__all__ = ["Profile", "build_all_profiles", "build_profile"]
