"""Efficiency scans and abrupt-change detection (paper §4.3, §5).

The paper distinguishes *abrupt* region boundaries (caused by
internal kernel-variant dispatch) from *gradual* ones.  Scanning a
kernel's efficiency along one dimension and flagging jumps between
consecutive samples localises the abrupt frontiers — the places where
the paper conjectures FLOP-based selection is least trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.backends.base import Backend
from repro.kernels.flops import kernel_flops
from repro.kernels.types import KernelName


@dataclass(frozen=True)
class AbruptChange:
    """One detected jump: efficiency steps from ``before`` to ``after``
    when the scanned dimension reaches ``position``."""

    kernel: KernelName
    axis: int
    position: int
    before: float
    after: float

    @property
    def magnitude(self) -> float:
        return abs(self.after - self.before)


def scan_efficiency(
    backend: Backend,
    kernel: KernelName,
    base: Sequence[int],
    axis: int,
    positions: Iterable[int],
) -> List[Tuple[int, float]]:
    """Measure kernel efficiency along one dimension.

    ``base`` supplies the fixed dims; ``base[axis]`` is replaced by
    each position.  Efficiency is FLOPs / (measured time x peak).
    The whole scan is one batched timing call.
    """
    base = list(base)
    if not 0 <= axis < len(base):
        raise ValueError(f"axis {axis} out of range for {base!r}")
    dims_list = [
        tuple(
            int(position) if i == axis else int(d)
            for i, d in enumerate(base)
        )
        for position in positions
    ]
    if not dims_list:
        return []
    seconds = backend.time_kernels(kernel, dims_list)
    peak = backend.peak_flops
    return [
        (dims[axis], float(kernel_flops(kernel, dims)) / (s * peak))
        for dims, s in zip(dims_list, seconds.tolist())
    ]


def find_abrupt_changes(
    series: Sequence[Tuple[int, float]],
    *,
    kernel: KernelName,
    axis: int,
    threshold: float = 0.08,
) -> List[AbruptChange]:
    """Jumps larger than ``threshold`` between consecutive samples."""
    changes: List[AbruptChange] = []
    for (_, before), (position, after) in zip(series, series[1:]):
        if abs(after - before) > threshold:
            changes.append(
                AbruptChange(
                    kernel=kernel,
                    axis=axis,
                    position=position,
                    before=before,
                    after=after,
                )
            )
    return changes
