"""Real-BLAS backend: the paper's measurement protocol on this host.

Times actual ``dgemm``/``dsyrk``/``dsymm`` executions (through SciPy
when available, NumPy otherwise) with cache flushing between
repetitions and median-of-k timing.  ``peak_flops`` is the *practical*
peak — the best measured GEMM rate — so efficiencies are relative to
what this host's BLAS can actually do, as in the paper's Figure 1.
"""

from __future__ import annotations

import time
import zlib
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.expressions import blas
from repro.expressions.base import Algorithm
from repro.expressions.registry import get_expression
from repro.kernels.flops import kernel_flops
from repro.kernels.types import KernelName


class RealBlasBackend(Backend):
    def __init__(
        self,
        reps: int = 5,
        flush_bytes: int = 32 * 1024 * 1024,
        seed: int = 0,
    ) -> None:
        if reps < 1:
            raise ValueError("reps must be >= 1")
        self.reps = reps
        self.seed = seed
        self._flush_buffer = np.zeros(max(flush_bytes, 8) // 8)
        self._peak: Optional[float] = None
        self._operand_cache: Dict[Tuple[str, Tuple[int, ...]], list] = {}

    # ------------------------------------------------------------------
    # Measurement plumbing
    # ------------------------------------------------------------------

    def _flush_cache(self) -> None:
        # Touch a buffer larger than LLC so prior operands are evicted.
        self._flush_buffer += 1.0

    def _median_time(self, fn) -> float:
        samples = []
        for _ in range(self.reps):
            self._flush_cache()
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[len(samples) // 2]

    def _operands_for(self, algorithm: Algorithm, instance: Sequence[int]):
        key = (algorithm.expression, tuple(int(d) for d in instance))
        if key not in self._operand_cache:
            expression = get_expression(algorithm.expression)
            digest = zlib.crc32(repr(key).encode())
            rng = np.random.default_rng((self.seed, digest))
            self._operand_cache[key] = expression.make_operands(key[1], rng)
        return self._operand_cache[key]

    # ------------------------------------------------------------------
    # Backend interface
    # ------------------------------------------------------------------

    @property
    def peak_flops(self) -> float:
        """Best measured GEMM FLOP rate on this host (lazily probed)."""
        if self._peak is None:
            rng = np.random.default_rng(self.seed)
            best = 0.0
            for size in (256, 384, 512):
                a = rng.standard_normal((size, size))
                b = rng.standard_normal((size, size))
                seconds = self._median_time(lambda: blas.gemm(a, b))
                best = max(best, 2.0 * size**3 / seconds)
            self._peak = best
        return self._peak

    def time_algorithm(self, algorithm: Algorithm, instance: Sequence[int]) -> float:
        operands = self._operands_for(algorithm, instance)
        return self._median_time(lambda: algorithm.execute(operands))

    def time_algorithms(
        self, algorithm: Algorithm, instances: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Amortized batch timing: operand generation hoisted per region.

        Same semantics as the base-class loop, but the executor binding
        and every instance's operand set are resolved *before* the
        timed region, so the flush-time-flush cadence of
        :meth:`_median_time` covers only kernel execution — the
        scheduler's fused executors (one buffer across an ADD chain,
        no copy-to-full materialization) then show up undiluted.
        """
        execute = algorithm.execute
        operand_sets = [
            self._operands_for(algorithm, instance) for instance in instances
        ]
        return np.array(
            [
                self._median_time(lambda ops=operands: execute(ops))
                for operands in operand_sets
            ],
            dtype=np.float64,
        )

    def time_kernel(self, kernel: KernelName, dims: Sequence[int]) -> float:
        rng = np.random.default_rng((self.seed, *map(int, dims)))
        if kernel is KernelName.GEMM:
            m, n, k = dims
            a = rng.standard_normal((m, k))
            b = rng.standard_normal((k, n))
            return self._median_time(lambda: blas.gemm(a, b))
        if kernel is KernelName.SYRK:
            n, k = dims
            a = rng.standard_normal((n, k))
            return self._median_time(lambda: blas.syrk_lower(a))
        if kernel is KernelName.ADD:
            m, n = dims
            a = rng.standard_normal((m, n))
            b = rng.standard_normal((m, n))
            return self._median_time(lambda: blas.add(a, b))
        if kernel is KernelName.TRSM:
            m, n = dims
            l = np.tril(rng.standard_normal((m, m))) + m * np.eye(m)
            b = rng.standard_normal((m, n))
            return self._median_time(lambda: blas.trsm(l, b))
        m, n = dims  # SYMM
        s = rng.standard_normal((m, m))
        s = s + s.T
        b = rng.standard_normal((m, n))
        return self._median_time(lambda: blas.symm_lower(s, b))

    # ------------------------------------------------------------------
    # Correctness
    # ------------------------------------------------------------------

    def verify_algorithm(
        self, algorithm: Algorithm, instance: Sequence[int]
    ) -> float:
        """Max relative deviation of the algorithm vs the NumPy reference."""
        expression = get_expression(algorithm.expression)
        rng = np.random.default_rng(self.seed)
        operands = expression.make_operands(tuple(map(int, instance)), rng)
        expected = expression.reference(operands)
        actual = algorithm.execute(operands)
        scale = float(np.max(np.abs(expected))) or 1.0
        return float(np.max(np.abs(actual - expected))) / scale

    def flops_estimate(self, algorithm: Algorithm, instance: Sequence[int]) -> int:
        return int(algorithm.flops(tuple(map(int, instance))))
