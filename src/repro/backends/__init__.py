"""Backend layer: things that can time algorithms and kernels."""

from repro.backends.base import Backend
from repro.backends.simulated import SimulatedBackend

__all__ = ["Backend", "SimulatedBackend"]
