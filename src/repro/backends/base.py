"""The backend interface shared by the simulated and real machines.

A backend answers three timing questions:

* ``time_algorithm``  — run a whole algorithm (kernels back to back,
  inter-kernel effects included) and report the median wall time;
* ``time_kernel``     — run one isolated kernel call with a clean
  cache (the paper's benchmark protocol);
* ``predict_time``    — sum the isolated kernel times of an algorithm
  (Experiment 3's benchmark-based predictor).

Each question also has a batch form (``time_algorithms``,
``time_kernels``, ``predict_times``) taking many instances at once and
returning a float64 array.  The defaults below answer a batch with a
scalar loop, so a backend only has to implement the per-instance
protocol — :class:`repro.backends.real.RealBlasBackend` times real
BLAS calls one at a time, unchanged — while
:class:`repro.backends.simulated.SimulatedBackend` overrides the batch
methods with fully vectorized evaluation.

Experiment code is backend-agnostic: everything under
:mod:`repro.core`, :mod:`repro.experiments` and :mod:`repro.analysis`
works identically against either backend.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.expressions.base import Algorithm
from repro.kernels.types import KernelName

#: Hashable identity of one concrete kernel call — the dedupe unit for
#: benchmark-based prediction.
_CallKey = Tuple[KernelName, Tuple[int, ...]]


class Backend(abc.ABC):
    @property
    @abc.abstractmethod
    def peak_flops(self) -> float:
        """FLOP/s the machine can sustain at best (efficiency = 1)."""

    @abc.abstractmethod
    def time_algorithm(self, algorithm: Algorithm, instance: Sequence[int]) -> float:
        ...

    @abc.abstractmethod
    def time_kernel(self, kernel: KernelName, dims: Sequence[int]) -> float:
        ...

    def predict_time(self, algorithm: Algorithm, instance: Sequence[int]) -> float:
        """Benchmark-based prediction, timing each distinct call once.

        An algorithm may issue the same ``(kernel, dims)`` call more
        than once; re-running the benchmark for every occurrence would
        be wasted wall time on a real machine, so distinct calls are
        timed once and the measured values reused per occurrence (the
        dedupe lives in :meth:`predict_times`).
        """
        return float(self.predict_times(algorithm, [instance])[0])

    # ------------------------------------------------------------------
    # Batch API — scalar-loop defaults; override for vectorized paths
    # ------------------------------------------------------------------

    def time_algorithms(
        self, algorithm: Algorithm, instances: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Measured times of one algorithm at many instances."""
        return np.array(
            [self.time_algorithm(algorithm, inst) for inst in instances],
            dtype=np.float64,
        )

    def time_kernels(
        self, kernel: KernelName, dims: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Isolated benchmark times of one kernel at many dims."""
        return np.array(
            [self.time_kernel(kernel, d) for d in dims], dtype=np.float64
        )

    def predict_times(
        self,
        algorithm: Algorithm,
        instances: Sequence[Sequence[int]],
        timed: Optional[Dict[_CallKey, float]] = None,
    ) -> np.ndarray:
        """Benchmark-based predictions at many instances.

        Dedupes identical ``(kernel, dims)`` calls across the *whole*
        batch — on a real machine, predicting a dense grid of
        instances re-times mostly-overlapping kernel sets, and one
        benchmark per distinct call is all the protocol needs.

        ``timed`` optionally carries the benchmark memo in from the
        caller, extending the dedupe across several algorithms of one
        evaluation batch (see :meth:`predict_times_matrix`); mutated
        in place.
        """
        if timed is None:
            timed = {}
        out = np.empty(len(instances), dtype=np.float64)
        for i, instance in enumerate(instances):
            total = 0.0
            for call in algorithm.kernel_calls(
                tuple(int(v) for v in instance)
            ):
                key = (call.kernel, tuple(int(d) for d in call.dims))
                if key not in timed:
                    timed[key] = self.time_kernel(call.kernel, call.dims)
                total += timed[key]
            out[i] = total
        return out

    def predict_times_matrix(
        self,
        algorithms: Sequence[Algorithm],
        instances: Sequence[Sequence[int]],
    ) -> np.ndarray:
        """``(n, A)`` predictions, one column per algorithm.

        One benchmark memo is shared across *all* the algorithms:
        equivalent plans of one expression overlap heavily in their
        kernel calls (every aatb variant times a ``(d0, d2)``-shaped
        product, say), so on a real machine each distinct call is
        benchmarked once per evaluation batch rather than once per
        plan.  Backends whose prediction is context-dependent (the
        simulated machine folds the algorithm name into its noise
        stream) override :meth:`predict_times` to ignore ``timed``,
        which makes this exactly the per-algorithm column stack.
        """
        timed: Dict[_CallKey, float] = {}
        return np.stack(
            [
                self.predict_times(a, instances, timed=timed)
                for a in algorithms
            ],
            axis=1,
        )
