"""The backend interface shared by the simulated and real machines.

A backend answers three timing questions:

* ``time_algorithm``  — run a whole algorithm (kernels back to back,
  inter-kernel effects included) and report the median wall time;
* ``time_kernel``     — run one isolated kernel call with a clean
  cache (the paper's benchmark protocol);
* ``predict_time``    — sum the isolated kernel times of an algorithm
  (Experiment 3's benchmark-based predictor).

Experiment code is backend-agnostic: everything under
:mod:`repro.core`, :mod:`repro.experiments` and :mod:`repro.analysis`
works identically against either backend.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.expressions.base import Algorithm
from repro.kernels.types import KernelName


class Backend(abc.ABC):
    @property
    @abc.abstractmethod
    def peak_flops(self) -> float:
        """FLOP/s the machine can sustain at best (efficiency = 1)."""

    @abc.abstractmethod
    def time_algorithm(self, algorithm: Algorithm, instance: Sequence[int]) -> float:
        ...

    @abc.abstractmethod
    def time_kernel(self, kernel: KernelName, dims: Sequence[int]) -> float:
        ...

    def predict_time(self, algorithm: Algorithm, instance: Sequence[int]) -> float:
        return sum(
            self.time_kernel(call.kernel, call.dims)
            for call in algorithm.kernel_calls(instance)
        )
