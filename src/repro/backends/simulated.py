"""The deterministic simulated backend.

Delegates all timing to a :class:`repro.machine.machine.MachineModel`;
see that module for the analytic effects (ramps, variant dispatch,
thread balance, inter-kernel cache interference, noise).  A small
memo keeps repeated evaluations of the same (algorithm, instance)
cheap — the experiment pipelines revisit points constantly, and the
model is stateless so memoisation is exact.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.backends.base import Backend
from repro.expressions.base import Algorithm
from repro.kernels.types import KernelName
from repro.machine.machine import MachineModel


class SimulatedBackend(Backend):
    def __init__(self, machine: Optional[MachineModel] = None) -> None:
        if machine is None:
            from repro.machine.presets import paper_machine

            machine = paper_machine()
        self.machine = machine
        self._algorithm_memo: Dict[Tuple[str, Tuple[int, ...]], float] = {}
        self._kernel_memo: Dict[Tuple[KernelName, Tuple[int, ...]], float] = {}

    @property
    def peak_flops(self) -> float:
        return self.machine.peak_flops

    def time_algorithm(self, algorithm: Algorithm, instance: Sequence[int]) -> float:
        key = (algorithm.name, tuple(int(d) for d in instance))
        cached = self._algorithm_memo.get(key)
        if cached is None:
            calls = algorithm.kernel_calls(key[1])
            cached = self.machine.measure_algorithm(calls, context=algorithm.name)
            self._algorithm_memo[key] = cached
        return cached

    def predict_time(self, algorithm: Algorithm, instance: Sequence[int]) -> float:
        key = ("predict:" + algorithm.name, tuple(int(d) for d in instance))
        cached = self._algorithm_memo.get(key)
        if cached is None:
            calls = algorithm.kernel_calls(key[1])
            cached = self.machine.predict_algorithm(calls, context=algorithm.name)
            self._algorithm_memo[key] = cached
        return cached

    def time_kernel(self, kernel: KernelName, dims: Sequence[int]) -> float:
        key = (kernel, tuple(int(d) for d in dims))
        cached = self._kernel_memo.get(key)
        if cached is None:
            cached = self.machine.measure_kernel(kernel, key[1])
            self._kernel_memo[key] = cached
        return cached

    def kernel_efficiency(self, kernel: KernelName, dims: Sequence[int]) -> float:
        """Noise-free analytic efficiency (used by Figure 1's ideal curves)."""
        return self.machine.efficiency(kernel, dims)
