"""The deterministic simulated backend.

Delegates all timing to a :class:`repro.machine.machine.MachineModel`;
see that module for the analytic effects (ramps, variant dispatch,
thread balance, inter-kernel cache interference, noise).  Results are
memoised in an array-backed store — the experiment pipelines revisit
points constantly, and the model is stateless so memoisation is exact.

The batch methods are the fast path: a whole batch of instances flows
through the vectorized machine in one call.  An algorithm's kernel
structure is instance-independent (only the dims vary), so the call
sequence is built *once* by feeding the calls builder whole instance
columns — the same polynomial machinery that serves the symbolic
analysis — and stacking the resulting per-call dim columns into
``(n, arity)`` matrices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.expressions.base import Algorithm
from repro.expressions.scheduler import scheduled_call_batches, scheduled_calls
from repro.kernels.types import KernelCallBatch, KernelName
from repro.machine.machine import MachineModel


class _ArrayMemo:
    """Append-only float64 store indexed by instance-row byte keys.

    Values live in one contiguous array so a batch lookup is a single
    vectorized gather; the dict maps each key (the raw little-endian
    int64 bytes of an instance row) to its row index only.
    """

    __slots__ = ("_index", "_values", "_size")

    def __init__(self) -> None:
        self._index: Dict[bytes, int] = {}
        self._values = np.empty(1024, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def get(self, key: bytes) -> Optional[float]:
        row = self._index.get(key)
        return None if row is None else float(self._values[row])

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._values.shape[0]
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.float64)
            grown[: self._size] = self._values[: self._size]
            self._values = grown

    def put(self, key: bytes, value: float) -> None:
        if key in self._index:
            return
        self._reserve(1)
        self._values[self._size] = value
        self._index[key] = self._size
        self._size += 1

    def put_many(self, keys: Sequence[bytes], values: np.ndarray) -> None:
        """Insert distinct fresh keys with their computed values."""
        self._reserve(len(keys))
        index, size = self._index, self._size
        self._values[size:size + len(keys)] = values
        for key in keys:
            index[key] = size
            size += 1
        self._size = size

    def rows(self, keys: Sequence[bytes]) -> np.ndarray:
        """Row index per key, -1 where missing."""
        index = self._index
        return np.fromiter(
            (index.get(key, -1) for key in keys),
            dtype=np.int64,
            count=len(keys),
        )

    def fill_rows(self, rows: np.ndarray, positions, keys) -> None:
        index = self._index
        for position in positions:
            rows[position] = index[keys[position]]

    def gather(self, rows: np.ndarray) -> np.ndarray:
        return self._values[rows]


def _row_keys(arr: np.ndarray) -> List[bytes]:
    """Hashable per-row keys: each row's raw int64 bytes."""
    width = arr.shape[1] * 8
    buffer = arr.tobytes()
    return [buffer[i:i + width] for i in range(0, len(buffer), width)]


def _instance_key(instance) -> bytes:
    return np.asarray(
        [int(d) for d in instance], dtype=np.int64
    ).tobytes()


class SimulatedBackend(Backend):
    def __init__(self, machine: Optional[MachineModel] = None) -> None:
        if machine is None:
            from repro.machine.presets import paper_machine

            machine = paper_machine()
        self.machine = machine
        self._memos: Dict[Tuple[str, str], _ArrayMemo] = {}

    def _memo(self, kind: str, name: str) -> _ArrayMemo:
        memo = self._memos.get((kind, name))
        if memo is None:
            memo = self._memos[(kind, name)] = _ArrayMemo()
        return memo

    @property
    def peak_flops(self) -> float:
        return self.machine.peak_flops

    # ------------------------------------------------------------------
    # Scalar protocol
    # ------------------------------------------------------------------

    def time_algorithm(self, algorithm: Algorithm, instance: Sequence[int]) -> float:
        memo = self._memo("time", algorithm.name)
        key = _instance_key(instance)
        cached = memo.get(key)
        if cached is None:
            instance = tuple(int(d) for d in instance)
            calls = self._scheduled(algorithm, algorithm.kernel_calls(instance))
            cached = self.machine.measure_algorithm(calls, context=algorithm.name)
            memo.put(key, cached)
        return cached

    def predict_time(self, algorithm: Algorithm, instance: Sequence[int]) -> float:
        memo = self._memo("predict", algorithm.name)
        key = _instance_key(instance)
        cached = memo.get(key)
        if cached is None:
            instance = tuple(int(d) for d in instance)
            calls = self._scheduled(algorithm, algorithm.kernel_calls(instance))
            cached = self.machine.predict_algorithm(calls, context=algorithm.name)
            memo.put(key, cached)
        return cached

    def time_kernel(self, kernel: KernelName, dims: Sequence[int]) -> float:
        memo = self._memo("kernel", kernel.value)
        key = _instance_key(dims)
        cached = memo.get(key)
        if cached is None:
            cached = self.machine.measure_kernel(
                kernel, tuple(int(d) for d in dims)
            )
            memo.put(key, cached)
        return cached

    def kernel_efficiency(self, kernel: KernelName, dims: Sequence[int]) -> float:
        """Noise-free analytic efficiency (used by Figure 1's ideal curves)."""
        return self.machine.efficiency(kernel, dims)

    # ------------------------------------------------------------------
    # Batch protocol — vectorized through the machine
    # ------------------------------------------------------------------

    @staticmethod
    def _instances_matrix(instances) -> np.ndarray:
        arr = np.asarray(instances, dtype=np.int64)
        if arr.ndim != 2:
            raise ValueError(
                f"instances must be a (n, n_dims) matrix, got shape {arr.shape!r}"
            )
        return arr

    def _scheduled(self, algorithm: Algorithm, calls):
        # Non-default machine schedules permute each plan's step order
        # by the model's interference term (the schedule-as-scenario
        # axis); the default schedule returns the calls untouched.
        if self.machine.schedule == "default":
            return calls
        return scheduled_calls(algorithm, calls, self.machine)

    def _batched_calls(
        self, algorithm: Algorithm, arr: np.ndarray
    ) -> Tuple[KernelCallBatch, ...]:
        # Compiled per-plan builder when the algorithm carries one
        # (shape indices resolved at codegen time); interpreted
        # column batching otherwise.  Same batches either way.
        batches = algorithm.kernel_call_batches(arr)
        if self.machine.schedule == "default":
            return batches
        return scheduled_call_batches(algorithm, batches, self.machine)

    def _memoised_batch(
        self,
        memo: _ArrayMemo,
        arr: np.ndarray,
        compute,
    ) -> np.ndarray:
        """Gather ``arr`` rows from ``memo``, batch-computing the misses.

        ``compute`` maps a sub-matrix of ``arr`` rows to values; each
        distinct missing row is computed exactly once.
        """
        keys = _row_keys(arr)
        rows = memo.rows(keys)
        missing_positions = np.nonzero(rows < 0)[0].tolist()
        if missing_positions:
            first_seen: Dict[bytes, int] = {}
            for position in missing_positions:
                first_seen.setdefault(keys[position], position)
            values = compute(arr[list(first_seen.values())])
            memo.put_many(list(first_seen), values)
            memo.fill_rows(rows, missing_positions, keys)
        return memo.gather(rows)

    def time_algorithms(
        self, algorithm: Algorithm, instances: Sequence[Sequence[int]]
    ) -> np.ndarray:
        arr = self._instances_matrix(instances)
        if arr.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        return self._memoised_batch(
            self._memo("time", algorithm.name),
            arr,
            lambda sub: self.machine.measure_algorithm_batch(
                self._batched_calls(algorithm, sub), context=algorithm.name
            ),
        )

    def predict_times(
        self,
        algorithm: Algorithm,
        instances: Sequence[Sequence[int]],
        timed=None,
    ) -> np.ndarray:
        # ``timed`` (the real-backend cross-plan benchmark memo) is
        # deliberately ignored: the machine folds the algorithm name
        # into every measurement's noise stream, so predictions are
        # context-dependent and cannot be shared across plans.  The
        # noise-free dedupe lives in MachineModel's base-seconds
        # cache instead.
        arr = self._instances_matrix(instances)
        if arr.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        return self._memoised_batch(
            self._memo("predict", algorithm.name),
            arr,
            lambda sub: self.machine.predict_algorithm_batch(
                self._batched_calls(algorithm, sub), context=algorithm.name
            ),
        )

    def time_kernels(
        self, kernel: KernelName, dims: Sequence[Sequence[int]]
    ) -> np.ndarray:
        arr = np.asarray(dims, dtype=np.int64)
        if arr.ndim != 2:
            raise ValueError(
                f"dims must be a (n, arity) matrix, got shape {arr.shape!r}"
            )
        if arr.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        return self._memoised_batch(
            self._memo("kernel", kernel.value),
            arr,
            lambda sub: self.machine.measure_kernel_batch(kernel, sub),
        )
