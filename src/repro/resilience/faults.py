"""Deterministic fault injection, keyed by named sites.

A :class:`FaultPlan` is a seeded schedule of failures for the
infrastructure, in the same spirit as the ablation studies for the
science: perturb the system, then assert its *answers* did not change
— study payloads stay byte-identical, selections index-identical.

Sites are stable dotted names at the places failures really happen:

=================== ====================================================
``remote.send``     client → store-server round trip (before send)
``remote.recv``     client receiving the response
``server.respond``  store server writing a response frame
``store.load``      any :class:`~repro.figures.cache.StudyStore` load
``store.save``      any store save
``worker.run``      a runner worker starting a study
``service.request`` the selection service dispatching a request
=================== ====================================================

Kinds: ``reset`` (connection reset), ``torn`` (partial frame then
drop), ``delay`` (sleep :attr:`FaultPlan.delay` seconds), ``corrupt``
(payload mangled), ``crash`` (worker process exits hard; applied only
inside child processes), ``error`` (an injected exception).  Each site
realizes the kinds that make sense for it and ignores the rest.

Activation: set ``REPRO_FAULTS``, e.g.::

    REPRO_FAULTS="seed=7;delay=0.05;remote.send=reset:2;store.load=corrupt:*@0.5"

``seed=N`` seeds the schedule, ``delay=S`` sets the delay-fault
duration, and every other clause is ``site=kind[:times][@rate]`` —
inject ``kind`` at ``site`` for the first ``times`` eligible calls
(``*`` = unlimited, default 1), where a call is eligible with
probability ``rate`` (default 1.0) decided by a pure hash of
``(seed, site, call_index)``.  The whole schedule is a deterministic
function of the plan, never of wall-clock entropy: the same plan
against the same workload injects the same faults.

Decisions and counters are per process (workers inherit the
environment, so a plan follows a runner into its pool).  Tests can
bypass the environment with :func:`set_plan`.
"""

from __future__ import annotations

import hashlib
import logging
import os
import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

log = logging.getLogger("repro.resilience")

#: Environment variable holding a fault-plan spec; empty/unset = off.
FAULTS_ENV = "REPRO_FAULTS"

KINDS = ("reset", "torn", "delay", "corrupt", "crash", "error")

SITES = (
    "remote.send",
    "remote.recv",
    "server.respond",
    "store.load",
    "store.save",
    "worker.run",
    "service.request",
)

_SYNTAX = (
    "clauses are ';'-separated: 'seed=N', 'delay=S', or "
    "'site=kind[:times][@rate]' with site in "
    + "/".join(SITES)
    + " and kind in "
    + "/".join(KINDS)
)

#: Default duration of an injected ``delay`` fault, seconds.
DEFAULT_DELAY = 0.01


def _fraction(seed: int, site: str, index: int) -> float:
    digest = hashlib.blake2b(
        f"faults:{seed}:{site}:{index}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


def corrupt_text(text: str) -> str:
    """Deterministically mangle a payload so any parser rejects it."""
    return "\x00chaos\x00" + text


@dataclass(frozen=True)
class FaultRule:
    """Inject ``kind`` at ``site`` ``times`` times at ``rate``."""

    site: str
    kind: str
    times: Optional[int] = 1  # None = unlimited
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: "
                + "/".join(SITES)
            )
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: "
                + "/".join(KINDS)
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or '*', got {self.times}")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")


class FaultPlan:
    """A seeded, per-site fault schedule with per-process counters."""

    def __init__(
        self,
        rules: Tuple[FaultRule, ...] = (),
        seed: int = 0,
        delay: float = DEFAULT_DELAY,
    ) -> None:
        by_site: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in by_site:
                raise ValueError(
                    f"duplicate fault rule for site {rule.site!r}"
                )
            by_site[rule.site] = rule
        self.rules = by_site
        self.seed = seed
        self.delay = delay
        self._calls: Dict[str, int] = {}
        self._injected: Dict[str, int] = {}

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """A plan from the ``REPRO_FAULTS`` clause syntax."""
        seed = 0
        delay = DEFAULT_DELAY
        rules = []
        for clause in re.split(r"[;,]", spec):
            clause = clause.strip()
            if not clause:
                continue
            name, sep, value = clause.partition("=")
            name, value = name.strip(), value.strip()
            if not sep or not name or not value:
                raise ValueError(
                    f"malformed fault clause {clause!r}; {_SYNTAX}"
                )
            if name == "seed":
                try:
                    seed = int(value)
                except ValueError:
                    raise ValueError(
                        f"seed must be an integer, got {value!r}"
                    ) from None
                continue
            if name == "delay":
                try:
                    delay = float(value)
                except ValueError:
                    raise ValueError(
                        f"delay must be a number, got {value!r}"
                    ) from None
                continue
            spec_part, _at, rate_part = value.partition("@")
            kind, _colon, times_part = spec_part.partition(":")
            times: Optional[int] = 1
            if times_part:
                if times_part == "*":
                    times = None
                else:
                    try:
                        times = int(times_part)
                    except ValueError:
                        raise ValueError(
                            f"times must be an integer or '*', "
                            f"got {times_part!r}"
                        ) from None
            rate = 1.0
            if rate_part:
                try:
                    rate = float(rate_part)
                except ValueError:
                    raise ValueError(
                        f"rate must be a number, got {rate_part!r}"
                    ) from None
            rules.append(
                FaultRule(site=name, kind=kind.strip(), times=times, rate=rate)
            )
        return cls(tuple(rules), seed=seed, delay=delay)

    def decide(self, site: str) -> Optional[str]:
        """The fault kind to inject for this call at ``site``, or None.

        Advances the site's call counter either way, so the schedule
        is a function of call order alone.
        """
        rule = self.rules.get(site)
        if rule is None:
            return None
        index = self._calls.get(site, 0)
        self._calls[site] = index + 1
        injected = self._injected.get(site, 0)
        if rule.times is not None and injected >= rule.times:
            return None
        if rule.rate < 1.0 and _fraction(self.seed, site, index) >= rule.rate:
            return None
        self._injected[site] = injected + 1
        return rule.kind

    def stats(self) -> dict:
        return {
            "seed": self.seed,
            "rules": {
                site: f"{rule.kind}:{'*' if rule.times is None else rule.times}"
                + (f"@{rule.rate}" if rule.rate < 1.0 else "")
                for site, rule in self.rules.items()
            },
            "calls": dict(self._calls),
            "injected": dict(self._injected),
        }


# ----------------------------------------------------------------------
# Process-wide activation (explicit plan, or the environment)
# ----------------------------------------------------------------------

_explicit: Optional[FaultPlan] = None
_env_plan: Optional[FaultPlan] = None
_env_raw: Optional[str] = None


def set_plan(plan: Optional[FaultPlan]) -> None:
    """Activate a plan directly (tests); None restores env control."""
    global _explicit
    _explicit = plan


def active_plan() -> Optional[FaultPlan]:
    """The plan in force: :func:`set_plan`'s, else ``REPRO_FAULTS``.

    The environment string is re-checked on every call (it is one dict
    probe) but parsed only when it changes; an unparseable value is
    logged once and treated as no plan — fault injection must never
    take the pipeline down by itself.
    """
    global _env_plan, _env_raw
    if _explicit is not None:
        return _explicit
    raw = os.environ.get(FAULTS_ENV, "")
    if raw != _env_raw:
        _env_raw = raw
        if not raw.strip():
            _env_plan = None
        else:
            try:
                _env_plan = FaultPlan.parse(raw)
            except ValueError as exc:
                log.error("ignoring invalid %s: %s", FAULTS_ENV, exc)
                _env_plan = None
    return _env_plan


def inject(site: str) -> Optional[str]:
    """The fault kind to apply at ``site`` now, or None (the hot path)."""
    plan = active_plan()
    return None if plan is None else plan.decide(site)


def delay_seconds() -> float:
    """Duration a ``delay`` fault should sleep."""
    plan = active_plan()
    return DEFAULT_DELAY if plan is None else plan.delay


def injected_stats() -> dict:
    """The active plan's counters (for ``GET /stats``); {} when off."""
    plan = active_plan()
    return {} if plan is None else plan.stats()
