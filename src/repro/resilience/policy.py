"""Bounded retries: exponential backoff with deterministic jitter.

A :class:`RetryPolicy` is an immutable description of *how* to retry —
how many attempts, how the delay grows, how much seeded jitter spreads
simultaneous retriers, and how much total time the whole loop may
spend.  The jitter is a pure function of ``(seed, site, attempt)``
(the same blake2b-mixing idiom the noise model uses), so two runs of
the same schedule sleep identically and a chaos test replays exactly.

Per-attempt timeouts are advisory here: a synchronous call cannot be
preempted from the outside, so callers enforce them at the I/O layer
(the remote store sets its socket timeout from
:attr:`RetryPolicy.attempt_timeout`) while the policy enforces the
*overall* deadline by refusing to launch an attempt that no longer
fits the budget.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


class RetryError(Exception):
    """Every attempt failed; carries the last underlying error."""

    def __init__(self, site: str, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"{site or 'call'} failed after {attempts} attempt(s): "
            f"{type(last).__name__}: {last}"
        )
        self.site = site
        self.attempts = attempts
        self.last = last


def _fraction(seed: int, site: str, index: int) -> float:
    """Deterministic uniform [0, 1) from (seed, site, index)."""
    digest = hashlib.blake2b(
        f"{seed}:{site}:{index}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts, exponential backoff, seeded jitter, deadline."""

    #: Total attempts (1 = no retries).
    attempts: int = 3
    #: Delay before the first retry, seconds.
    base_delay: float = 0.02
    #: Backoff growth per retry.
    multiplier: float = 2.0
    #: Cap on any single delay, seconds.
    max_delay: float = 1.0
    #: Jitter fraction: each delay is scaled by ``1 + U * jitter``
    #: with ``U`` deterministic in [0, 1).
    jitter: float = 0.5
    #: Seed of the jitter stream.
    seed: int = 0
    #: Overall wall-clock budget across all attempts and sleeps,
    #: seconds; None = unbounded.
    deadline: Optional[float] = None
    #: Advisory per-attempt timeout for callers that can enforce one
    #: (e.g. a socket timeout); None = caller default.
    attempt_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def backoff(self, site: str, retry_index: int) -> float:
        """The delay before retry ``retry_index`` (0 = first retry)."""
        delay = min(
            self.base_delay * self.multiplier**retry_index, self.max_delay
        )
        return delay * (1.0 + _fraction(self.seed, site, retry_index) * self.jitter)

    def delays(self, site: str) -> Tuple[float, ...]:
        """Every inter-attempt delay of a full schedule, in order."""
        return tuple(
            self.backoff(site, index) for index in range(self.attempts - 1)
        )

    def run(
        self,
        fn: Callable[[], T],
        site: str = "",
        retriable: Tuple[Type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Call ``fn`` under this policy; raise :class:`RetryError`.

        ``on_retry(attempt_index, error)`` fires before each sleep —
        callers use it to count retries for their stats.  A
        non-retriable exception propagates immediately.
        """
        start = clock()
        last: Optional[BaseException] = None
        made = 0
        for attempt in range(self.attempts):
            if attempt:
                delay = self.backoff(site, attempt - 1)
                if (
                    self.deadline is not None
                    and clock() - start + delay >= self.deadline
                ):
                    break  # the budget no longer fits another attempt
                if on_retry is not None:
                    on_retry(attempt, last)  # type: ignore[arg-type]
                sleep(delay)
            made += 1
            try:
                return fn()
            except retriable as exc:
                last = exc
                if (
                    self.deadline is not None
                    and clock() - start >= self.deadline
                ):
                    break
        assert last is not None
        raise RetryError(site, made, last)
