"""Resilience: retries, circuit breaking, and deterministic faults.

The reproduction grew into a distributed system — a selection service,
a remote TCP study store, a process-pool runner — and this package is
the one shared layer its failure behavior goes through:

* :class:`RetryPolicy` — bounded attempts with exponential backoff,
  deterministic seeded jitter, and an overall deadline.  Wrapped
  around remote-store round trips and the runner's sequential
  resubmission after a broken worker pool.
* :class:`CircuitBreaker` — closed → open after N consecutive
  failures, a half-open probe after a recovery window, so a dead
  store server costs one short-circuited check per call instead of a
  full connect timeout.
* :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness.  A seeded :class:`FaultPlan` keyed by *site*
  (``remote.send``, ``store.load``, ``worker.run``, …) injects
  connection resets, torn frames, delays, corrupt payloads and worker
  crashes, activated via the ``REPRO_FAULTS`` environment variable —
  so chaos tests can assert that study payloads stay byte-identical
  and selections index-identical under every fault schedule.

Everything here is deterministic by construction: backoff jitter and
fault schedules derive from seeds, never from wall-clock entropy, so a
chaos run is exactly reproducible.
"""

from repro.resilience.breaker import BreakerOpen, CircuitBreaker
from repro.resilience.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultRule,
    active_plan,
    corrupt_text,
    delay_seconds,
    inject,
    injected_stats,
    set_plan,
)
from repro.resilience.policy import RetryError, RetryPolicy

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultRule",
    "RetryError",
    "RetryPolicy",
    "active_plan",
    "corrupt_text",
    "delay_seconds",
    "inject",
    "injected_stats",
    "set_plan",
]
