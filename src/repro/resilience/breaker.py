"""Circuit breaker: stop paying for a dependency that is down.

Classic three-state machine around an unreliable call site:

* **closed** — calls flow; consecutive failures are counted, and the
  Nth in a row opens the circuit.
* **open** — calls are refused instantly (:meth:`CircuitBreaker.allow`
  returns False) until a recovery window has elapsed.  This is the
  whole point: a dead store server costs one dictionary lookup per
  call instead of a full connect timeout.
* **half-open** — after the window, exactly one probe call is let
  through; success closes the circuit, failure re-opens it for
  another window.

The clock is injectable so tests drive the recovery window
deterministically instead of sleeping through it.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple


class BreakerOpen(Exception):
    """Raised by :meth:`CircuitBreaker.acquire` while the circuit is open."""


class CircuitBreaker:
    """Closed → open after N consecutive failures; half-open probe."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_seconds < 0:
            raise ValueError(
                f"recovery_seconds must be >= 0, got {recovery_seconds}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.clock = clock
        self.name = name
        self.state = "closed"
        self.consecutive_failures = 0
        self.short_circuited = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: (state, at_seconds) history, newest last (bounded).
        self.transitions: List[Tuple[str, float]] = []

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        self.transitions.append((state, self.clock()))
        del self.transitions[:-32]  # keep the tail only

    def allow(self) -> bool:
        """Whether a call may proceed right now (counts refusals)."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self._opened_at >= self.recovery_seconds:
                self._transition("half-open")
                self._probe_inflight = True
                return True  # the probe
            self.short_circuited += 1
            return False
        # half-open: one probe at a time.
        if self._probe_inflight:
            self.short_circuited += 1
            return False
        self._probe_inflight = True
        return True

    def acquire(self) -> None:
        """:meth:`allow` as an exception, for ``raise``-style callers."""
        if not self.allow():
            raise BreakerOpen(
                f"circuit {self.name or 'breaker'} is {self.state} "
                f"({self.consecutive_failures} consecutive failures)"
            )

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_inflight = False
        self._transition("closed")

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self._probe_inflight = False
        if self.state == "half-open":
            # The probe failed: straight back to open, fresh window.
            self._opened_at = self.clock()
            self._transition("open")
        elif (
            self.state == "closed"
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self.clock()
            self._transition("open")

    def stats(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "recovery_seconds": self.recovery_seconds,
            "short_circuited": self.short_circuited,
            "transitions": [state for state, _at in self.transitions],
        }
