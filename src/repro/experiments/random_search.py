"""Experiment 1: random search for anomalous instances (paper §4.1).

Sample instances uniformly from the box, measure every equivalent
algorithm, classify, and collect anomalies until a target count or a
sample budget is reached.  Abundance is anomalies per sample drawn.

Sampling proceeds in batches: a chunk of instances is drawn (in the
same rng order a point-by-point loop would use), evaluated through the
backend's batch API in one call, and the verdicts scanned in draw
order — so results are identical for every ``batch_size``, including
the degenerate scalar loop ``batch_size=1``.  When a target anomaly
count is hit mid-chunk the scan stops exactly where the scalar loop
would have, and the surplus evaluations only warm the backend memo.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.backends.base import Backend
from repro.core.classify import Verdict, classify_batch, evaluate_instances
from repro.core.searchspace import Box
from repro.expressions.base import Expression

#: Chunk size balancing vectorization width against overshoot past a
#: ``target_anomalies`` stop.
DEFAULT_BATCH_SIZE = 128


@dataclass(frozen=True)
class Anomaly:
    instance: Tuple[int, ...]
    verdict: Verdict


@dataclass(frozen=True)
class SearchResult:
    expression: str
    threshold: float
    anomalies: Tuple[Anomaly, ...]
    n_samples: int

    @property
    def abundance(self) -> float:
        """Fraction of sampled instances that are anomalous."""
        return len(self.anomalies) / self.n_samples if self.n_samples else 0.0

    @property
    def time_scores(self) -> Tuple[float, ...]:
        return tuple(a.verdict.time_score for a in self.anomalies)

    @property
    def flop_scores(self) -> Tuple[float, ...]:
        return tuple(a.verdict.flop_score for a in self.anomalies)


def random_search(
    backend: Backend,
    expression: Expression,
    box: Box,
    threshold: float = 0.10,
    target_anomalies: int | None = None,
    max_samples: int = 10_000,
    seed: int = 0,
    batch_size: int | None = None,
) -> SearchResult:
    if box.n_dims != expression.n_dims:
        raise ValueError(
            f"{expression.name} needs a {expression.n_dims}-dim box"
        )
    if max_samples < 1:
        raise ValueError("max_samples must be positive")
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZE
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    rng = random.Random(seed)
    algorithms = expression.algorithms()
    anomalies: List[Anomaly] = []
    n_samples = 0
    done = target_anomalies is not None and target_anomalies <= 0
    while not done and n_samples < max_samples:
        chunk = min(batch_size, max_samples - n_samples)
        instances = [box.sample(rng) for _ in range(chunk)]
        verdicts = classify_batch(
            evaluate_instances(backend, algorithms, instances),
            threshold=threshold,
        )
        for instance, verdict in zip(instances, verdicts):
            n_samples += 1
            if verdict.is_anomaly:
                anomalies.append(Anomaly(instance=instance, verdict=verdict))
                if (
                    target_anomalies is not None
                    and len(anomalies) >= target_anomalies
                ):
                    done = True
                    break
    return SearchResult(
        expression=expression.name,
        threshold=threshold,
        anomalies=tuple(anomalies),
        n_samples=n_samples,
    )
