"""Experiment 1: random search for anomalous instances (paper §4.1).

Sample instances uniformly from the box, measure every equivalent
algorithm, classify, and collect anomalies until a target count or a
sample budget is reached.  Abundance is anomalies per sample drawn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.backends.base import Backend
from repro.core.classify import Verdict, classify, evaluate_instance
from repro.core.searchspace import Box
from repro.expressions.base import Expression


@dataclass(frozen=True)
class Anomaly:
    instance: Tuple[int, ...]
    verdict: Verdict


@dataclass(frozen=True)
class SearchResult:
    expression: str
    threshold: float
    anomalies: Tuple[Anomaly, ...]
    n_samples: int

    @property
    def abundance(self) -> float:
        """Fraction of sampled instances that are anomalous."""
        return len(self.anomalies) / self.n_samples if self.n_samples else 0.0

    @property
    def time_scores(self) -> Tuple[float, ...]:
        return tuple(a.verdict.time_score for a in self.anomalies)

    @property
    def flop_scores(self) -> Tuple[float, ...]:
        return tuple(a.verdict.flop_score for a in self.anomalies)


def random_search(
    backend: Backend,
    expression: Expression,
    box: Box,
    threshold: float = 0.10,
    target_anomalies: int | None = None,
    max_samples: int = 10_000,
    seed: int = 0,
) -> SearchResult:
    if box.n_dims != expression.n_dims:
        raise ValueError(
            f"{expression.name} needs a {expression.n_dims}-dim box"
        )
    if max_samples < 1:
        raise ValueError("max_samples must be positive")
    rng = random.Random(seed)
    algorithms = expression.algorithms()
    anomalies: List[Anomaly] = []
    n_samples = 0
    while n_samples < max_samples and (
        target_anomalies is None or len(anomalies) < target_anomalies
    ):
        instance = box.sample(rng)
        n_samples += 1
        evaluation = evaluate_instance(backend, algorithms, instance)
        verdict = classify(evaluation, threshold=threshold)
        if verdict.is_anomaly:
            anomalies.append(Anomaly(instance=instance, verdict=verdict))
    return SearchResult(
        expression=expression.name,
        threshold=threshold,
        anomalies=tuple(anomalies),
        n_samples=n_samples,
    )
