"""Experiment 3: predicting anomalies from isolated kernel benchmarks.

For every cell the region traversal classified (ground truth), build
the same classification from *predicted* algorithm times — the sum of
each algorithm's isolated kernel benchmark times.  Agreement means an
anomaly could have been anticipated from one-off per-kernel data; the
disagreements measure what only inter-kernel (cache) effects explain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.backends.base import Backend
from repro.core.classify import Evaluation, classify
from repro.experiments.regions import Regions
from repro.expressions.base import Expression


@dataclass(frozen=True)
class PredictionRecord:
    instance: Tuple[int, ...]
    actual_anomaly: bool
    predicted_anomaly: bool
    actual_score: float
    predicted_score: float


@dataclass(frozen=True)
class Prediction:
    expression: str
    threshold: float
    records: Tuple[PredictionRecord, ...]


def predict_from_benchmarks(
    backend: Backend,
    expression: Expression,
    regions: Regions,
) -> Prediction:
    if regions.expression != expression.name:
        raise ValueError(
            f"regions are for {regions.expression!r}, "
            f"not {expression.name!r}"
        )
    algorithms = expression.algorithms()
    records: List[PredictionRecord] = []
    for cell in regions.cells:
        predicted = Evaluation(
            instance=cell.instance,
            algorithm_names=tuple(a.name for a in algorithms),
            flops=tuple(int(a.flops(cell.instance)) for a in algorithms),
            seconds=tuple(
                float(backend.predict_time(a, cell.instance))
                for a in algorithms
            ),
        )
        verdict = classify(predicted, threshold=regions.threshold)
        records.append(
            PredictionRecord(
                instance=cell.instance,
                actual_anomaly=cell.is_anomaly,
                predicted_anomaly=verdict.is_anomaly,
                actual_score=cell.time_score,
                predicted_score=verdict.time_score,
            )
        )
    return Prediction(
        expression=expression.name,
        threshold=regions.threshold,
        records=tuple(records),
    )
