"""Experiment 3: predicting anomalies from isolated kernel benchmarks.

For every cell the region traversal classified (ground truth), build
the same classification from *predicted* algorithm times — the sum of
each algorithm's isolated kernel benchmark times.  Agreement means an
anomaly could have been anticipated from one-off per-kernel data; the
disagreements measure what only inter-kernel (cache) effects explain.

All cells are predicted as one batch per algorithm through the
backend's ``predict_times`` — vectorized on the simulated machine, and
deduplicating repeated kernel benchmarks on a real one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.backends.base import Backend
from repro.core.classify import classify_batch, evaluate_instances
from repro.experiments.regions import Regions
from repro.expressions.base import Expression


@dataclass(frozen=True)
class PredictionRecord:
    instance: Tuple[int, ...]
    actual_anomaly: bool
    predicted_anomaly: bool
    actual_score: float
    predicted_score: float


@dataclass(frozen=True)
class Prediction:
    expression: str
    threshold: float
    records: Tuple[PredictionRecord, ...]


def predict_from_benchmarks(
    backend: Backend,
    expression: Expression,
    regions: Regions,
) -> Prediction:
    if regions.expression != expression.name:
        raise ValueError(
            f"regions are for {regions.expression!r}, "
            f"not {expression.name!r}"
        )
    algorithms = expression.algorithms()
    if not regions.cells:
        return Prediction(
            expression=expression.name,
            threshold=regions.threshold,
            records=(),
        )
    predicted = evaluate_instances(
        backend,
        algorithms,
        [cell.instance for cell in regions.cells],
        predict=True,
    )
    verdicts = classify_batch(predicted, threshold=regions.threshold)
    return Prediction(
        expression=expression.name,
        threshold=regions.threshold,
        records=tuple(
            PredictionRecord(
                instance=cell.instance,
                actual_anomaly=cell.is_anomaly,
                predicted_anomaly=verdict.is_anomaly,
                actual_score=cell.time_score,
                predicted_score=verdict.time_score,
            )
            for cell, verdict in zip(regions.cells, verdicts)
        ),
    )
