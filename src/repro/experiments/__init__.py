"""Experiments layer: the paper's three experiment pipelines."""

from repro.experiments.prediction import predict_from_benchmarks
from repro.experiments.random_search import random_search
from repro.experiments.regions import explore_regions

__all__ = ["explore_regions", "predict_from_benchmarks", "random_search"]
