"""Experiment 2: mapping anomalous regions (paper §4.2, §3.4).

From each anomaly found by Experiment 1, traverse every requested
dimension in both directions, classifying as we go.  The paper's
hole-tolerance rule (§3.4.2) keeps walking through up to
``hole_tolerance`` consecutive non-anomalous samples so measurement
noise near the 5% threshold does not truncate a region.

The traversal yields, per region and dimension, the *extent* (the
interval between extreme anomalous positions — its length is the
"thickness" plotted in Figures 7/10) and the set of all evaluated
*cells*, which Experiment 3 reuses as labelled ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.base import Backend
from repro.core.classify import classify, evaluate_instance
from repro.core.searchspace import Box
from repro.expressions.base import Expression

DEFAULT_STEP = 16
DEFAULT_HOLE_TOLERANCE = 2


@dataclass(frozen=True)
class RegionCell:
    """One classified sample produced during region traversal."""

    instance: Tuple[int, ...]
    time_score: float
    is_anomaly: bool


@dataclass(frozen=True)
class DimExtent:
    """Anomalous extent of one region along one dimension."""

    dim: int
    lo: int
    hi: int

    @property
    def thickness(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class Region:
    origin: Tuple[int, ...]
    extents: Dict[int, DimExtent]

    def thickness(self, dim: int) -> int:
        extent = self.extents.get(dim)
        return extent.thickness if extent else 0

    def widest_dim(self) -> int:
        return max(self.extents, key=lambda d: self.extents[d].thickness)


@dataclass(frozen=True)
class Regions:
    expression: str
    threshold: float
    n_dims: int
    regions: Tuple[Region, ...]
    cells: Tuple[RegionCell, ...]

    def thicknesses(self, dim: int) -> List[int]:
        return [r.thickness(dim) for r in self.regions if dim in r.extents]


def _walk(
    backend: Backend,
    algorithms,
    origin: Tuple[int, ...],
    dim: int,
    box: Box,
    threshold: float,
    step: int,
    hole_tolerance: int,
    direction: int,
    cells: List[RegionCell],
) -> int:
    """Walk one direction; return the extreme anomalous position."""
    extreme = origin[dim]
    position = origin[dim]
    holes = 0
    while True:
        position += direction * step
        if not box.lows[dim] <= position <= box.highs[dim]:
            break
        instance = tuple(
            position if i == dim else v for i, v in enumerate(origin)
        )
        verdict = classify(
            evaluate_instance(backend, algorithms, instance),
            threshold=threshold,
        )
        cells.append(
            RegionCell(
                instance=instance,
                time_score=verdict.time_score,
                is_anomaly=verdict.is_anomaly,
            )
        )
        if verdict.is_anomaly:
            extreme = position
            holes = 0
        else:
            holes += 1
            if holes > hole_tolerance:
                break
    return extreme


def explore_regions(
    backend: Backend,
    expression: Expression,
    origins: Sequence[Sequence[int]],
    box: Box,
    threshold: float = 0.05,
    dims: Optional[Sequence[int]] = None,
    step: int = DEFAULT_STEP,
    hole_tolerance: int = DEFAULT_HOLE_TOLERANCE,
) -> Regions:
    if step < 1:
        raise ValueError("step must be positive")
    traversal_dims = tuple(dims) if dims is not None else tuple(
        range(expression.n_dims)
    )
    for dim in traversal_dims:
        if not 0 <= dim < expression.n_dims:
            raise ValueError(f"dim {dim} out of range")
    algorithms = expression.algorithms()
    regions: List[Region] = []
    cells: List[RegionCell] = []
    for origin in origins:
        origin = tuple(int(v) for v in origin)
        verdict = classify(
            evaluate_instance(backend, algorithms, origin),
            threshold=threshold,
        )
        cells.append(
            RegionCell(
                instance=origin,
                time_score=verdict.time_score,
                is_anomaly=verdict.is_anomaly,
            )
        )
        extents: Dict[int, DimExtent] = {}
        if verdict.is_anomaly:
            for dim in traversal_dims:
                lo = _walk(
                    backend, algorithms, origin, dim, box, threshold,
                    step, hole_tolerance, -1, cells,
                )
                hi = _walk(
                    backend, algorithms, origin, dim, box, threshold,
                    step, hole_tolerance, +1, cells,
                )
                extents[dim] = DimExtent(dim=dim, lo=lo, hi=hi)
        regions.append(Region(origin=origin, extents=extents))
    return Regions(
        expression=expression.name,
        threshold=threshold,
        n_dims=expression.n_dims,
        regions=tuple(regions),
        cells=tuple(cells),
    )
