"""Experiment 2: mapping anomalous regions (paper §4.2, §3.4).

From each anomaly found by Experiment 1, traverse every requested
dimension in both directions, classifying as we go.  The paper's
hole-tolerance rule (§3.4.2) keeps walking through up to
``hole_tolerance`` consecutive non-anomalous samples so measurement
noise near the 5% threshold does not truncate a region.

Each directed walk is a *ray* — the step positions from the origin
toward the box face — evaluated in batched rounds: every round sends
the next ``RAY_CHUNK`` steps of every still-live ray through the
backend as one call, and holes are resolved post hoc: the verdicts
are scanned in step order and the walk "stops" at exactly the
position the step-by-step loop would have stopped at.  Up to a chunk
of positions past the stop were still evaluated (they warm the
backend's memo) but are not recorded as cells, so the result is
identical to the scalar traversal.

The traversal yields, per region and dimension, the *extent* (the
interval between extreme anomalous positions — its length is the
"thickness" plotted in Figures 7/10) and the set of all evaluated
*cells*, which Experiment 3 reuses as labelled ground truth.  The
origin's verdict is recorded exactly once per region, and cells are
deduplicated by instance: overlapping walks (rays from nearby origins,
or a repeated origin) contribute one cell per distinct instance, the
first time it is visited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.backends.base import Backend
from repro.core.classify import Verdict, classify_batch, evaluate_instances
from repro.core.searchspace import Box
from repro.expressions.base import Expression

DEFAULT_STEP = 16
DEFAULT_HOLE_TOLERANCE = 2

#: Steps of each ray evaluated per batching round.  Rays stop early
#: (hole rule), so evaluating whole rays at once would waste most of
#: the batch on positions past the stop; chunking bounds the overshoot
#: per ray while every round still batches across *all* live rays.
RAY_CHUNK = 24


@dataclass(frozen=True)
class RegionCell:
    """One classified sample produced during region traversal."""

    instance: Tuple[int, ...]
    time_score: float
    is_anomaly: bool


@dataclass(frozen=True)
class DimExtent:
    """Anomalous extent of one region along one dimension."""

    dim: int
    lo: int
    hi: int

    @property
    def thickness(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class Region:
    origin: Tuple[int, ...]
    extents: Dict[int, DimExtent]

    def thickness(self, dim: int) -> int:
        extent = self.extents.get(dim)
        return extent.thickness if extent else 0

    def widest_dim(self) -> int:
        return max(self.extents, key=lambda d: self.extents[d].thickness)


@dataclass(frozen=True)
class Regions:
    expression: str
    threshold: float
    n_dims: int
    regions: Tuple[Region, ...]
    cells: Tuple[RegionCell, ...]

    def thicknesses(self, dim: int) -> List[int]:
        return [r.thickness(dim) for r in self.regions if dim in r.extents]


class _CellRecorder:
    """Order-preserving cell collector, deduplicated by instance."""

    def __init__(self) -> None:
        self.cells: List[RegionCell] = []
        self._seen: Set[Tuple[int, ...]] = set()

    def record(self, instance: Tuple[int, ...], verdict: Verdict) -> None:
        if instance in self._seen:
            return
        self._seen.add(instance)
        self.cells.append(
            RegionCell(
                instance=instance,
                time_score=verdict.time_score,
                is_anomaly=verdict.is_anomaly,
            )
        )


class _Ray:
    """One directed walk: step positions out to the box face, evaluated
    chunk by chunk until the hole rule stops it."""

    def __init__(
        self, origin: Tuple[int, ...], dim: int, box: Box, step: int,
        direction: int, hole_tolerance: int,
    ) -> None:
        self.origin = origin
        self.dim = dim
        self.hole_tolerance = hole_tolerance
        positions: List[int] = []
        position = origin[dim]
        while True:
            position += direction * step
            if not box.lows[dim] <= position <= box.highs[dim]:
                break
            positions.append(position)
        self.positions = tuple(positions)
        self.verdicts: List[Verdict] = []
        self._holes = 0
        self._stopped = not positions

    def instance_at(self, index: int) -> Tuple[int, ...]:
        return tuple(
            self.positions[index] if i == self.dim else v
            for i, v in enumerate(self.origin)
        )

    def next_chunk(self) -> List[Tuple[int, ...]]:
        """The instances of the next unevaluated chunk; [] when done."""
        if self._stopped:
            return []
        start = len(self.verdicts)
        return [
            self.instance_at(i)
            for i in range(start, min(start + RAY_CHUNK, len(self.positions)))
        ]

    def absorb(self, verdicts: Sequence[Verdict]) -> None:
        """Take one chunk's verdicts and advance the hole-rule scan."""
        for verdict in verdicts:
            self.verdicts.append(verdict)
            if verdict.is_anomaly:
                self._holes = 0
            elif not self._stopped:
                self._holes += 1
                if self._holes > self.hole_tolerance:
                    self._stopped = True
        if len(self.verdicts) == len(self.positions):
            self._stopped = True

    def resolve(
        self, hole_tolerance: int, recorder: _CellRecorder
    ) -> int:
        """Scan the evaluated prefix; return the extreme anomalous position.

        Applies the hole rule post hoc: cells are recorded in step
        order up to (and including) the step where the tolerance is
        exceeded, exactly where a step-by-step walk would stop.
        """
        extreme = self.origin[self.dim]
        holes = 0
        for index, verdict in enumerate(self.verdicts):
            recorder.record(self.instance_at(index), verdict)
            if verdict.is_anomaly:
                extreme = self.positions[index]
                holes = 0
            else:
                holes += 1
                if holes > hole_tolerance:
                    break
        return extreme


def explore_regions(
    backend: Backend,
    expression: Expression,
    origins: Sequence[Sequence[int]],
    box: Box,
    threshold: float = 0.05,
    dims: Optional[Sequence[int]] = None,
    step: int = DEFAULT_STEP,
    hole_tolerance: int = DEFAULT_HOLE_TOLERANCE,
) -> Regions:
    if step < 1:
        raise ValueError("step must be positive")
    traversal_dims = tuple(dims) if dims is not None else tuple(
        range(expression.n_dims)
    )
    for dim in traversal_dims:
        if not 0 <= dim < expression.n_dims:
            raise ValueError(f"dim {dim} out of range")
    algorithms = expression.algorithms()
    normalized = [tuple(int(v) for v in origin) for origin in origins]
    recorder = _CellRecorder()
    origin_verdicts: Tuple[Verdict, ...] = ()
    if normalized:
        origin_verdicts = classify_batch(
            evaluate_instances(backend, algorithms, normalized),
            threshold=threshold,
        )
    # Trace every walk of every anomalous region, then evaluate the
    # rays in rounds: each round batches the next RAY_CHUNK steps of
    # every still-live ray through the backend in one call, and the
    # per-ray hole rule decides which rays continue.  The backend memo
    # and stateless noise make the grouping invisible in the results —
    # only in the wall time.
    rays: Dict[Tuple[int, int, int], _Ray] = {}
    for region_index, (origin, verdict) in enumerate(
        zip(normalized, origin_verdicts)
    ):
        if verdict.is_anomaly:
            for dim in traversal_dims:
                for direction in (-1, +1):
                    rays[(region_index, dim, direction)] = _Ray(
                        origin, dim, box, step, direction, hole_tolerance
                    )
    while True:
        chunks = [(ray, ray.next_chunk()) for ray in rays.values()]
        chunks = [(ray, chunk) for ray, chunk in chunks if chunk]
        if not chunks:
            break
        flat_verdicts = classify_batch(
            evaluate_instances(
                backend,
                algorithms,
                [instance for _, chunk in chunks for instance in chunk],
            ),
            threshold=threshold,
        )
        offset = 0
        for ray, chunk in chunks:
            ray.absorb(flat_verdicts[offset:offset + len(chunk)])
            offset += len(chunk)
    regions: List[Region] = []
    for region_index, (origin, verdict) in enumerate(
        zip(normalized, origin_verdicts)
    ):
        recorder.record(origin, verdict)
        extents: Dict[int, DimExtent] = {}
        if verdict.is_anomaly:
            for dim in traversal_dims:
                lo = rays[(region_index, dim, -1)].resolve(
                    hole_tolerance, recorder
                )
                hi = rays[(region_index, dim, +1)].resolve(
                    hole_tolerance, recorder
                )
                extents[dim] = DimExtent(dim=dim, lo=lo, hi=hi)
        regions.append(Region(origin=origin, extents=extents))
    return Regions(
        expression=expression.name,
        threshold=threshold,
        n_dims=expression.n_dims,
        regions=tuple(regions),
        cells=tuple(recorder.cells),
    )
