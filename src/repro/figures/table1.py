"""Table 1: confusion matrix for benchmark-predicted chain anomalies."""

from __future__ import annotations

from repro.analysis.confusion import ConfusionMatrix
from repro.figures.common import FigureConfig, study_for


def generate(config: FigureConfig) -> ConfusionMatrix:
    return study_for(config, "chain4").confusion


def render(matrix: ConfusionMatrix) -> str:
    return matrix.format_table(
        "Table 1: chain anomalies predicted from kernel benchmarks"
    )
