"""Figure 9: time vs FLOP score scatter for ``A Aᵀ B`` anomalies."""

from __future__ import annotations

from repro.figures.common import FigureConfig
from repro.figures.scatter import ScatterData, generate_scatter, render_scatter


def generate(config: FigureConfig) -> ScatterData:
    return generate_scatter(config, "aatb")


def render(data: ScatterData) -> str:
    return render_scatter(
        data, "Figure 9: A·Aᵀ·B anomalies, time score vs FLOP score"
    )
