"""Figure 10: region thickness per dimension for ``A Aᵀ B``."""

from __future__ import annotations

from repro.figures.common import FigureConfig
from repro.figures.thickness import (
    RegionFigureData,
    generate_thickness,
    render_thickness,
)


def generate(config: FigureConfig) -> RegionFigureData:
    return generate_thickness(config, "aatb")


def render(data: RegionFigureData) -> str:
    return render_thickness(
        data, "Figure 10: A·Aᵀ·B anomalous-region thickness"
    )
