"""Figure 7: region thickness per dimension for the matrix chain."""

from __future__ import annotations

from repro.figures.common import FigureConfig
from repro.figures.thickness import (
    RegionFigureData,
    generate_thickness,
    render_thickness,
)


def generate(config: FigureConfig) -> RegionFigureData:
    return generate_thickness(config, "chain4")


def render(data: RegionFigureData) -> str:
    return render_thickness(data, "Figure 7: chain anomalous-region thickness")
