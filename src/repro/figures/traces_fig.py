"""Shared implementation of the region-trace figures (8 and 11)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.traces import LineTraces, trace_line
from repro.core.searchspace import named_box
from repro.figures.common import REGION_THRESHOLD, FigureConfig, study_for


@dataclass(frozen=True)
class TraceFigureData:
    expression: str
    lines: Tuple[LineTraces, ...]


def generate_chain_lines(
    config: FigureConfig, n_lines: int = 2
) -> TraceFigureData:
    """Lines through the widest dimension of distinct chain regions."""
    study = study_for(config, "chain4")
    box = named_box(config.box, study.expression.n_dims)
    lines: List[LineTraces] = []
    for region in study.regions.regions:
        if not region.extents:
            continue
        lines.append(
            trace_line(
                study.backend,
                study.expression,
                region.origin,
                region.widest_dim(),
                box,
                half_points=10 if not config.is_full else 20,
                threshold=REGION_THRESHOLD,
            )
        )
        if len(lines) == n_lines:
            break
    return TraceFigureData(expression="chain4", lines=tuple(lines))


def generate_aatb_lines(config: FigureConfig) -> TraceFigureData:
    """One line per dimension through one anomalous ``A Aᵀ B`` region."""
    study = study_for(config, "aatb")
    box = named_box(config.box, study.expression.n_dims)
    origin = None
    for region in study.regions.regions:
        if region.extents:
            origin = region.origin
            break
    if origin is None:  # pragma: no cover - search always finds some
        raise RuntimeError("no anomalous region to trace")
    lines = tuple(
        trace_line(
            study.backend,
            study.expression,
            origin,
            dim,
            box,
            half_points=10 if not config.is_full else 20,
            threshold=REGION_THRESHOLD,
        )
        for dim in range(study.expression.n_dims)
    )
    return TraceFigureData(expression="aatb", lines=lines)


def render_traces(data: TraceFigureData, title: str) -> str:
    lines_out = [title]
    for line in data.lines:
        lines_out.append(
            f"  line through {line.origin} along d{line.dim} "
            f"({len(line.anomalous_positions)} of {len(line.positions)} "
            f"positions anomalous)"
        )
        short_names = [
            trace.algorithm_name.split(":", 1)[-1] for trace in line.traces
        ]
        header = f"  {'pos':>6} | " + " ".join(
            f"{name[:14]:>14}" for name in short_names
        )
        lines_out.append(header)
        for i, position in enumerate(line.positions):
            cells = []
            for trace in line.traces:
                point = trace.points[i]
                mark = {"both": "*", "cheapest": "c", "fastest": "f"}.get(
                    point.status, " "
                )
                cells.append(f"{point.total_efficiency:>12.3f}{mark:>2}")
            flag = "ANOM" if position in line.anomalous_positions else ""
            lines_out.append(f"  {position:>6} | " + " ".join(cells) + f" {flag}")
    return "\n".join(lines_out)
