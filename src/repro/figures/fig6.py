"""Figure 6: time vs FLOP score scatter for matrix-chain anomalies."""

from __future__ import annotations

from repro.figures.common import FigureConfig
from repro.figures.scatter import ScatterData, generate_scatter, render_scatter


def generate(config: FigureConfig) -> ScatterData:
    return generate_scatter(config, "chain4")


def render(data: ScatterData) -> str:
    return render_scatter(
        data, "Figure 6: chain anomalies, time score vs FLOP score"
    )
