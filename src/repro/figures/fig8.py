"""Figure 8: chain algorithm efficiencies along two region lines."""

from __future__ import annotations

from repro.figures.common import FigureConfig
from repro.figures.traces_fig import (
    TraceFigureData,
    generate_chain_lines,
    render_traces,
)


def generate(config: FigureConfig) -> TraceFigureData:
    return generate_chain_lines(config, n_lines=2)


def render(data: TraceFigureData) -> str:
    return render_traces(
        data, "Figure 8: chain efficiencies along lines through regions"
    )
