"""Shared figure infrastructure: scale config and the cached study.

A *study* is the full experiment pipeline for one expression —
Experiment 1 (random search), Experiment 2 (region traversal) and
Experiment 3 (benchmark prediction + confusion) — on the paper
machine.  Figures 6-11 and both tables are different views of the
same study, so :func:`study_for` memoises one study per
``(scale, seed, expression, box)`` for the whole process: the
benchmark suite runs each pipeline once however many artefacts it
regenerates.

Setting ``REPRO_CACHE_DIR`` adds an on-disk layer underneath the
process cache (see :mod:`repro.figures.cache`): studies computed by
*any* process land in the configured :class:`~repro.figures.cache.StudyStore`
(versioned-JSON directory by default, SQLite with
``REPRO_CACHE_STORE=sqlite``), and later processes load them instead
of recomputing — repeated artefact regeneration across benchmark runs
becomes near-free, and :class:`repro.runner.StudyRunner` workers use
the same store as their shared result channel.

The exploration volume is a named box (``FigureConfig.box``,
default ``paper_box`` = the paper's [20, 1200] per dim; see
:data:`repro.core.searchspace.NAMED_BOXES`), and participates in the
study key: larger-than-paper boxes are one flag away and never collide
with paper-box cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.ablation.components import get_variant, is_known_variant
from repro.analysis.confusion import ConfusionMatrix, confusion_from_prediction
from repro.figures.cache import StudyKey, store_from_env
from repro.backends.simulated import SimulatedBackend
from repro.core.searchspace import NAMED_BOXES, named_box
from repro.experiments.prediction import Prediction, predict_from_benchmarks
from repro.experiments.random_search import SearchResult, random_search
from repro.experiments.regions import Regions, explore_regions
from repro.expressions.base import Expression
from repro.machine.machine import SCHEDULES

#: Experiment-1 classification threshold (paper §4.1).
SEARCH_THRESHOLD = 0.10
#: Experiment-2/3 threshold (paper §4.2-4.3).
REGION_THRESHOLD = 0.05

_SCALES = ("quick", "full")


@dataclass(frozen=True)
class FigureConfig:
    """Artefact-regeneration scale knobs (see benchmarks/conftest.py)."""

    scale: str = "quick"
    seed: int = 0
    box: str = "paper_box"
    #: Step-schedule policy of the study's machine (see
    #: :data:`repro.machine.machine.SCHEDULES`).  Non-default schedules
    #: reorder plan steps by the interference term — a separate study
    #: scenario with its own cache entries.
    schedule: str = "default"
    #: Named ablation variant of the pipeline (see
    #: :data:`repro.ablation.components.STUDY_VARIANTS`): a different
    #: machine construction, env knobs applied around the pipeline, or
    #: recompilation under a tighter pruning budget.  Non-default
    #: variants are separate study scenarios with their own cache
    #: entries; the default is byte-identical to the pre-ablation
    #: pipeline.
    variant: str = "default"

    def __post_init__(self) -> None:
        if self.scale not in _SCALES:
            raise ValueError(
                f"scale must be one of {_SCALES}, got {self.scale!r}"
            )
        if self.box not in NAMED_BOXES:
            raise ValueError(
                f"box must be one of {tuple(sorted(NAMED_BOXES))}, "
                f"got {self.box!r}"
            )
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"schedule must be one of {SCHEDULES}, "
                f"got {self.schedule!r}"
            )
        if not is_known_variant(self.variant):
            # get_variant's error text lists the known names.
            get_variant(self.variant)

    @property
    def is_full(self) -> bool:
        return self.scale == "full"

    def study_key(self, expression_name: str) -> StudyKey:
        return StudyKey(
            scale=self.scale,
            seed=self.seed,
            expression=expression_name,
            box=self.box,
            schedule=self.schedule,
            variant=self.variant,
        )

    def build_backend(self) -> SimulatedBackend:
        """The study's backend: the variant's machine at this config."""
        variant = get_variant(self.variant)
        return SimulatedBackend(
            variant.build_machine(self.seed, self.schedule)
        )

    def search_params(self, expression_name: str) -> Dict[str, int]:
        # Chain-shaped families (chains, transposed chains, chain
        # sums, add-chains) have sparse anomalies (<1%), so they get a
        # bigger sample budget and a smaller target than the abundant
        # asymmetric-kernel families (aatb, gram<k>, solve<k>).
        if expression_name.startswith(("chain", "tri", "sum", "addchain")):
            if self.is_full:
                return {"target_anomalies": 25, "max_samples": 60_000}
            return {"target_anomalies": 6, "max_samples": 6_000}
        if self.is_full:
            return {"target_anomalies": 150, "max_samples": 20_000}
        return {"target_anomalies": 25, "max_samples": 2_500}

    def region_params(self, expression_name: str) -> Dict[str, int]:
        if self.is_full:
            return {"step": 8, "max_origins": 15}
        return {"step": 16, "max_origins": 5}

    def fig1_sizes(self) -> Tuple[int, ...]:
        if self.is_full:
            return tuple(range(20, 1201, 20))
        return (20, 60, 110, 160, 230, 300, 380, 460, 560, 680, 800,
                930, 1060, 1200)


@dataclass(frozen=True)
class Study:
    """One expression's full experiment pipeline on the paper machine."""

    config: FigureConfig
    expression: Expression
    backend: SimulatedBackend
    search: SearchResult
    regions: Regions
    prediction: Prediction
    confusion: ConfusionMatrix


_STUDY_CACHE: Dict[Tuple[str, int, str, str, str, str], Study] = {}


def compute_study_results(
    config: FigureConfig,
    expression_name: str,
    backend: SimulatedBackend = None,
) -> Tuple[SearchResult, Regions, Prediction, ConfusionMatrix]:
    """Run the full experiment pipeline for one study, uncached.

    This is the deterministic unit of work both :func:`study_for` and
    :mod:`repro.runner` workers execute: results depend only on the
    study key, never on the process that computed them.  A caller that
    keeps using the backend afterwards (``study_for`` attaches it to
    the Study for the trace figures) passes its own, so the pipeline's
    measurement memo stays warm.

    A non-default ``config.variant`` swaps the machine construction,
    recompiles the expression under a pruning budget, and/or applies
    env knobs around the pipeline — all three through the variant
    registry, so the result is still a pure function of the study key.
    """
    variant = get_variant(config.variant)
    expression = variant.expression_for(expression_name)
    if backend is None:
        backend = config.build_backend()
    box = named_box(config.box, expression.n_dims)
    with variant.applied_env():
        search = random_search(
            backend,
            expression,
            box,
            threshold=SEARCH_THRESHOLD,
            seed=config.seed,
            **config.search_params(expression_name),
        )
        region_params = config.region_params(expression_name)
        origins = [
            anomaly.instance
            for anomaly in search.anomalies[: region_params["max_origins"]]
        ]
        regions = explore_regions(
            backend,
            expression,
            origins,
            box,
            threshold=REGION_THRESHOLD,
            step=region_params["step"],
        )
        prediction = predict_from_benchmarks(backend, expression, regions)
    confusion = confusion_from_prediction(prediction)
    return search, regions, prediction, confusion


def study_for(config: FigureConfig, expression_name: str) -> Study:
    """The cached study for one expression at one scale/seed/box."""
    key = (
        config.scale,
        config.seed,
        expression_name,
        config.box,
        config.schedule,
        config.variant,
    )
    if key in _STUDY_CACHE:
        return _STUDY_CACHE[key]

    expression = get_variant(config.variant).expression_for(expression_name)
    backend = config.build_backend()
    store = store_from_env()
    store_key = config.study_key(expression_name)

    if store is not None:
        with store:
            loaded = store.load(store_key)
        if loaded is not None:
            study = Study(
                config=config,
                expression=expression,
                backend=backend,
                search=loaded["search"],
                regions=loaded["regions"],
                prediction=loaded["prediction"],
                confusion=loaded["confusion"],
            )
            _STUDY_CACHE[key] = study
            return study

    search, regions, prediction, confusion = compute_study_results(
        config, expression_name, backend=backend
    )
    study = Study(
        config=config,
        expression=expression,
        backend=backend,
        search=search,
        regions=regions,
        prediction=prediction,
        confusion=confusion,
    )
    _STUDY_CACHE[key] = study
    if store is not None:
        with store:
            store.save(store_key, search, regions, prediction, confusion)
    return study


def clear_study_cache() -> None:
    """Testing hook: drop all memoised studies."""
    _STUDY_CACHE.clear()
