"""On-disk layer for the study cache (``REPRO_CACHE_DIR``).

A computed :class:`repro.figures.common.Study` is fully determined by
``(scale, seed, expression)`` — the backend is deterministic and the
experiment drivers are seeded — so its results can be persisted and
reloaded across processes.  With ``REPRO_CACHE_DIR`` set, regenerating
an artefact a second time (another pytest-benchmark process, a CI
re-run, a notebook restart) costs a JSON read instead of the whole
experiment pipeline.

Entries are versioned JSON files, one per study, named
``study-v{SCHEMA_VERSION}-{scale}-seed{seed}-{expression}.json``.
The schema version participates in both the filename and the payload:
bump :data:`SCHEMA_VERSION` whenever the serialized shape *or the
semantics of the pipeline that produced it* change, and stale entries
are simply never read again.  JSON round-trips Python floats exactly
(``repr`` shortest-float), so a loaded study is bit-for-bit the study
that was saved.

Loading is best-effort: a missing, truncated, or version-mismatched
file silently falls back to recomputation, and writes go through a
temp file + ``os.replace`` so concurrent regenerations never observe a
half-written entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.analysis.confusion import ConfusionMatrix
from repro.core.classify import Verdict
from repro.experiments.prediction import Prediction, PredictionRecord
from repro.experiments.random_search import Anomaly, SearchResult
from repro.experiments.regions import DimExtent, Region, RegionCell, Regions

#: Bump when the payload layout or the producing pipeline changes.
SCHEMA_VERSION = 1

#: Environment variable naming the cache directory; unset disables
#: the disk layer.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def cache_dir_from_env() -> Optional[Path]:
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(value) if value else None


def study_path(cache_dir: Path, scale: str, seed: int, expression: str) -> Path:
    return cache_dir / (
        f"study-v{SCHEMA_VERSION}-{scale}-seed{seed}-{expression}.json"
    )


# ----------------------------------------------------------------------
# Serialization (plain dict/list payloads, exact float round-trip)
# ----------------------------------------------------------------------


def _verdict_to_payload(verdict: Verdict) -> dict:
    return {
        "is_anomaly": verdict.is_anomaly,
        "time_score": verdict.time_score,
        "flop_score": verdict.flop_score,
        "threshold": verdict.threshold,
        "cheapest": list(verdict.cheapest),
        "fastest": list(verdict.fastest),
    }


def _verdict_from_payload(payload: dict) -> Verdict:
    return Verdict(
        is_anomaly=bool(payload["is_anomaly"]),
        time_score=float(payload["time_score"]),
        flop_score=float(payload["flop_score"]),
        threshold=float(payload["threshold"]),
        cheapest=tuple(payload["cheapest"]),
        fastest=tuple(payload["fastest"]),
    )


def _search_to_payload(search: SearchResult) -> dict:
    return {
        "expression": search.expression,
        "threshold": search.threshold,
        "n_samples": search.n_samples,
        "anomalies": [
            {
                "instance": list(anomaly.instance),
                "verdict": _verdict_to_payload(anomaly.verdict),
            }
            for anomaly in search.anomalies
        ],
    }


def _search_from_payload(payload: dict) -> SearchResult:
    return SearchResult(
        expression=payload["expression"],
        threshold=float(payload["threshold"]),
        n_samples=int(payload["n_samples"]),
        anomalies=tuple(
            Anomaly(
                instance=tuple(int(v) for v in entry["instance"]),
                verdict=_verdict_from_payload(entry["verdict"]),
            )
            for entry in payload["anomalies"]
        ),
    )


def _regions_to_payload(regions: Regions) -> dict:
    return {
        "expression": regions.expression,
        "threshold": regions.threshold,
        "n_dims": regions.n_dims,
        "regions": [
            {
                "origin": list(region.origin),
                "extents": [
                    [extent.dim, extent.lo, extent.hi]
                    for extent in region.extents.values()
                ],
            }
            for region in regions.regions
        ],
        "cells": [
            [list(cell.instance), cell.time_score, cell.is_anomaly]
            for cell in regions.cells
        ],
    }


def _regions_from_payload(payload: dict) -> Regions:
    return Regions(
        expression=payload["expression"],
        threshold=float(payload["threshold"]),
        n_dims=int(payload["n_dims"]),
        regions=tuple(
            Region(
                origin=tuple(int(v) for v in entry["origin"]),
                extents={
                    int(dim): DimExtent(dim=int(dim), lo=int(lo), hi=int(hi))
                    for dim, lo, hi in entry["extents"]
                },
            )
            for entry in payload["regions"]
        ),
        cells=tuple(
            RegionCell(
                instance=tuple(int(v) for v in instance),
                time_score=float(time_score),
                is_anomaly=bool(is_anomaly),
            )
            for instance, time_score, is_anomaly in payload["cells"]
        ),
    )


def _prediction_to_payload(prediction: Prediction) -> dict:
    return {
        "expression": prediction.expression,
        "threshold": prediction.threshold,
        "records": [
            [
                list(record.instance),
                record.actual_anomaly,
                record.predicted_anomaly,
                record.actual_score,
                record.predicted_score,
            ]
            for record in prediction.records
        ],
    }


def _prediction_from_payload(payload: dict) -> Prediction:
    return Prediction(
        expression=payload["expression"],
        threshold=float(payload["threshold"]),
        records=tuple(
            PredictionRecord(
                instance=tuple(int(v) for v in instance),
                actual_anomaly=bool(actual),
                predicted_anomaly=bool(predicted),
                actual_score=float(actual_score),
                predicted_score=float(predicted_score),
            )
            for instance, actual, predicted, actual_score, predicted_score
            in payload["records"]
        ),
    )


def _confusion_to_payload(matrix: ConfusionMatrix) -> dict:
    return {
        "true_positive": matrix.true_positive,
        "false_positive": matrix.false_positive,
        "false_negative": matrix.false_negative,
        "true_negative": matrix.true_negative,
    }


def _confusion_from_payload(payload: dict) -> ConfusionMatrix:
    return ConfusionMatrix(
        true_positive=int(payload["true_positive"]),
        false_positive=int(payload["false_positive"]),
        false_negative=int(payload["false_negative"]),
        true_negative=int(payload["true_negative"]),
    )


# ----------------------------------------------------------------------
# Disk I/O
# ----------------------------------------------------------------------


def save_study_payload(
    cache_dir: Path,
    scale: str,
    seed: int,
    expression: str,
    search: SearchResult,
    regions: Regions,
    prediction: Prediction,
    confusion: ConfusionMatrix,
) -> None:
    """Atomically persist one study's results (best effort)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "scale": scale,
        "seed": seed,
        "expression": expression,
        "search": _search_to_payload(search),
        "regions": _regions_to_payload(regions),
        "prediction": _prediction_to_payload(prediction),
        "confusion": _confusion_to_payload(confusion),
    }
    path = study_path(cache_dir, scale, seed, expression)
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(cache_dir), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            os.unlink(tmp_name)
            raise
    except OSError:
        return


def load_study_payload(
    cache_dir: Path, scale: str, seed: int, expression: str
) -> Optional[dict]:
    """Load and validate one study's results; None on any mismatch."""
    path = study_path(cache_dir, scale, seed, expression)
    try:
        with open(path) as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or (
            payload.get("schema") != SCHEMA_VERSION
            or payload.get("scale") != scale
            or payload.get("seed") != seed
            or payload.get("expression") != expression
        ):
            return None
        return {
            "search": _search_from_payload(payload["search"]),
            "regions": _regions_from_payload(payload["regions"]),
            "prediction": _prediction_from_payload(payload["prediction"]),
            "confusion": _confusion_from_payload(payload["confusion"]),
        }
    except (OSError, ValueError, KeyError, TypeError, AttributeError):
        return None
