"""Study stores: the shared on-disk layer of the study cache.

A computed :class:`repro.figures.common.Study` is fully determined by
its :class:`StudyKey` ``(scale, seed, expression, box, schedule)`` —
the backend
is deterministic and the experiment drivers are seeded — so its
results can be persisted and reloaded across processes.  With
``REPRO_CACHE_DIR`` set, regenerating an artefact a second time
(another pytest-benchmark process, a CI re-run, a notebook restart, a
:mod:`repro.runner` worker) costs one store read instead of the whole
experiment pipeline.

Persistence goes through the pluggable :class:`StudyStore` interface
with three backends (pick with ``REPRO_CACHE_STORE``):

* :class:`JsonDirectoryStore` (``json``, the default) — one versioned
  JSON file per study.  Writes are atomic (temp file + ``os.replace``),
  so concurrent regenerations never observe a torn file; two racing
  writers of the same deterministic study simply replace one valid
  payload with an identical one.
* :class:`SqliteStudyStore` (``sqlite``) — one WAL-mode SQLite
  database, one row per study key.  A fleet of
  :class:`repro.runner.StudyRunner` workers shares it without
  per-file races: readers never block, writers serialize on SQLite's
  write lock with a generous busy timeout.
* :class:`repro.service.remote.RemoteStudyStore` (``remote``) — a
  keyed read-through client speaking a length-prefixed TCP protocol to
  a store server process (``python -m repro.service.store_server``),
  so machines that do not share a filesystem can share one store.  The
  "directory" for this kind is the server address, ``host:port``.

Backends register in a factory table (:func:`register_store_kind`);
``remote`` loads lazily so the json/sqlite fast path never imports the
service layer.  Every backend moves *canonical payload text* — the
base class implements ``load``/``save`` on top of ``load_text``/
``save_text`` plus the shared codec — which is what keeps payloads
byte-identical whichever backend (or network hop) carried them.

The schema version participates in the store location (filename /
database name) and the payload: bump :data:`SCHEMA_VERSION` whenever
the serialized shape *or the semantics of the pipeline that produced
it* change, and stale entries are simply never read again.  JSON
round-trips Python floats exactly (``repr`` shortest-float), so a
loaded study is bit-for-bit the study that was saved — and because
serialization is canonical (sorted nothing, insertion order, fixed
separators), any two processes that computed the same study persist
byte-identical payloads.

Loads and saves are best-effort: a missing, truncated, or
version-mismatched entry silently falls back to recomputation, and an
unwritable store degrades to a no-op rather than failing the pipeline.
"""

from __future__ import annotations

import importlib
import json
import os
import sqlite3
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.analysis.confusion import ConfusionMatrix
from repro.core.classify import Verdict
from repro.experiments.prediction import Prediction, PredictionRecord
from repro.experiments.random_search import Anomaly, SearchResult
from repro.experiments.regions import DimExtent, Region, RegionCell, Regions
from repro.resilience import faults

#: Bump when the payload layout or the producing pipeline changes.
#: v2: study keys (and payloads) carry the search ``box`` name.
SCHEMA_VERSION = 2

#: Environment variable naming the cache directory; unset disables
#: the disk layer.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable selecting the store backend (``json`` default).
CACHE_STORE_ENV = "REPRO_CACHE_STORE"

#: Store kinds whose target is a local directory.
LOCAL_STORE_KINDS = ("json", "sqlite")

#: Valid values of :data:`CACHE_STORE_ENV`.  ``remote`` targets a
#: ``host:port`` store server instead of a directory.
STORE_KINDS = ("json", "sqlite", "remote")


@dataclass(frozen=True, order=True)
class StudyKey:
    """Everything that determines one study's results.

    ``schedule`` (the machine's step-schedule policy, see
    :data:`repro.machine.machine.SCHEDULES`) and ``variant`` (a named
    ablation modification of the pipeline, see
    :data:`repro.ablation.components.STUDY_VARIANTS`) participate only
    when they are not the default: default slugs and payloads are
    exactly the pre-scheduler/pre-ablation ones, so every existing
    store entry stays valid and the sha256-pinned payload tests hold
    with both axes present.
    """

    scale: str
    seed: int
    expression: str
    box: str = "paper_box"
    schedule: str = "default"
    variant: str = "default"

    @property
    def slug(self) -> str:
        slug = f"{self.scale}-seed{self.seed}-{self.expression}-{self.box}"
        if self.schedule != "default":
            slug += f"-{self.schedule}"
        if self.variant != "default":
            slug += f"-ablate-{self.variant}"
        return slug


def cache_dir_from_env() -> Optional[Path]:
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(value) if value else None


def store_kind_from_env() -> str:
    value = os.environ.get(CACHE_STORE_ENV, "").strip().lower()
    if not value:
        return STORE_KINDS[0]
    if value not in STORE_KINDS:
        raise ValueError(
            f"{CACHE_STORE_ENV} must be one of {'/'.join(STORE_KINDS)}, "
            f"got {value!r}"
        )
    return value


def study_path(cache_dir: Path, key: StudyKey) -> Path:
    return cache_dir / f"study-v{SCHEMA_VERSION}-{key.slug}.json"


# ----------------------------------------------------------------------
# Serialization (plain dict/list payloads, exact float round-trip)
# ----------------------------------------------------------------------


def _verdict_to_payload(verdict: Verdict) -> dict:
    return {
        "is_anomaly": verdict.is_anomaly,
        "time_score": verdict.time_score,
        "flop_score": verdict.flop_score,
        "threshold": verdict.threshold,
        "cheapest": list(verdict.cheapest),
        "fastest": list(verdict.fastest),
    }


def _verdict_from_payload(payload: dict) -> Verdict:
    return Verdict(
        is_anomaly=bool(payload["is_anomaly"]),
        time_score=float(payload["time_score"]),
        flop_score=float(payload["flop_score"]),
        threshold=float(payload["threshold"]),
        cheapest=tuple(payload["cheapest"]),
        fastest=tuple(payload["fastest"]),
    )


def _search_to_payload(search: SearchResult) -> dict:
    return {
        "expression": search.expression,
        "threshold": search.threshold,
        "n_samples": search.n_samples,
        "anomalies": [
            {
                "instance": list(anomaly.instance),
                "verdict": _verdict_to_payload(anomaly.verdict),
            }
            for anomaly in search.anomalies
        ],
    }


def _search_from_payload(payload: dict) -> SearchResult:
    return SearchResult(
        expression=payload["expression"],
        threshold=float(payload["threshold"]),
        n_samples=int(payload["n_samples"]),
        anomalies=tuple(
            Anomaly(
                instance=tuple(int(v) for v in entry["instance"]),
                verdict=_verdict_from_payload(entry["verdict"]),
            )
            for entry in payload["anomalies"]
        ),
    )


def _regions_to_payload(regions: Regions) -> dict:
    return {
        "expression": regions.expression,
        "threshold": regions.threshold,
        "n_dims": regions.n_dims,
        "regions": [
            {
                "origin": list(region.origin),
                "extents": [
                    [extent.dim, extent.lo, extent.hi]
                    for extent in region.extents.values()
                ],
            }
            for region in regions.regions
        ],
        "cells": [
            [list(cell.instance), cell.time_score, cell.is_anomaly]
            for cell in regions.cells
        ],
    }


def _regions_from_payload(payload: dict) -> Regions:
    return Regions(
        expression=payload["expression"],
        threshold=float(payload["threshold"]),
        n_dims=int(payload["n_dims"]),
        regions=tuple(
            Region(
                origin=tuple(int(v) for v in entry["origin"]),
                extents={
                    int(dim): DimExtent(dim=int(dim), lo=int(lo), hi=int(hi))
                    for dim, lo, hi in entry["extents"]
                },
            )
            for entry in payload["regions"]
        ),
        cells=tuple(
            RegionCell(
                instance=tuple(int(v) for v in instance),
                time_score=float(time_score),
                is_anomaly=bool(is_anomaly),
            )
            for instance, time_score, is_anomaly in payload["cells"]
        ),
    )


def _prediction_to_payload(prediction: Prediction) -> dict:
    return {
        "expression": prediction.expression,
        "threshold": prediction.threshold,
        "records": [
            [
                list(record.instance),
                record.actual_anomaly,
                record.predicted_anomaly,
                record.actual_score,
                record.predicted_score,
            ]
            for record in prediction.records
        ],
    }


def _prediction_from_payload(payload: dict) -> Prediction:
    return Prediction(
        expression=payload["expression"],
        threshold=float(payload["threshold"]),
        records=tuple(
            PredictionRecord(
                instance=tuple(int(v) for v in instance),
                actual_anomaly=bool(actual),
                predicted_anomaly=bool(predicted),
                actual_score=float(actual_score),
                predicted_score=float(predicted_score),
            )
            for instance, actual, predicted, actual_score, predicted_score
            in payload["records"]
        ),
    )


def _confusion_to_payload(matrix: ConfusionMatrix) -> dict:
    return {
        "true_positive": matrix.true_positive,
        "false_positive": matrix.false_positive,
        "false_negative": matrix.false_negative,
        "true_negative": matrix.true_negative,
    }


def _confusion_from_payload(payload: dict) -> ConfusionMatrix:
    return ConfusionMatrix(
        true_positive=int(payload["true_positive"]),
        false_positive=int(payload["false_positive"]),
        false_negative=int(payload["false_negative"]),
        true_negative=int(payload["true_negative"]),
    )


# ----------------------------------------------------------------------
# Canonical study codec (shared by every store backend)
# ----------------------------------------------------------------------


def encode_study(
    key: StudyKey,
    search: SearchResult,
    regions: Regions,
    prediction: Prediction,
    confusion: ConfusionMatrix,
) -> str:
    """One study as canonical JSON text.

    Fixed field order + fixed separators: two processes that computed
    the same deterministic study encode byte-identical text, whichever
    store backend (or worker) persists it.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "scale": key.scale,
        "seed": key.seed,
        "expression": key.expression,
        "box": key.box,
    }
    if key.schedule != "default":
        # Conditional so default-schedule payloads stay byte-identical
        # to every pre-scheduler store entry (and the pinned shas).
        payload["schedule"] = key.schedule
    if key.variant != "default":
        # Same byte-compatibility contract for the ablation axis.
        payload["variant"] = key.variant
    payload.update(
        {
            "search": _search_to_payload(search),
            "regions": _regions_to_payload(regions),
            "prediction": _prediction_to_payload(prediction),
            "confusion": _confusion_to_payload(confusion),
        }
    )
    return json.dumps(payload, separators=(",", ":"))


def decode_study(text: str, key: StudyKey) -> Optional[dict]:
    """Parse and validate study text; None on any mismatch."""
    try:
        payload = json.loads(text)
        if not isinstance(payload, dict) or (
            payload.get("schema") != SCHEMA_VERSION
            or payload.get("scale") != key.scale
            or payload.get("seed") != key.seed
            or payload.get("expression") != key.expression
            or payload.get("box") != key.box
            or payload.get("schedule", "default") != key.schedule
            or payload.get("variant", "default") != key.variant
        ):
            return None
        return {
            "search": _search_from_payload(payload["search"]),
            "regions": _regions_from_payload(payload["regions"]),
            "prediction": _prediction_from_payload(payload["prediction"]),
            "confusion": _confusion_from_payload(payload["confusion"]),
        }
    except (ValueError, KeyError, TypeError, AttributeError):
        return None


# ----------------------------------------------------------------------
# Store backends
# ----------------------------------------------------------------------


class StudyStore:
    """Keyed persistence for study results; load misses return None.

    Implementations must be safe for many concurrent processes: a
    reader never observes a torn payload, and racing writers of the
    same key leave exactly one valid payload behind.  All operations
    are best-effort — storage failures degrade to cache misses, never
    to pipeline errors.

    Backends implement the *text* primitives (``load_text`` /
    ``save_text``); ``load``/``save`` are the canonical codec layered
    on top.  Moving payloads as opaque canonical text is what lets the
    remote backend relay them byte-identically through a server whose
    own backing store is a plain json/sqlite store.
    """

    kind: str = ""

    def load_text(self, key: StudyKey) -> Optional[str]:
        """The stored canonical payload text, or None on a miss."""
        raise NotImplementedError

    def save_text(self, key: StudyKey, text: str) -> None:
        """Persist canonical payload text (best-effort)."""
        raise NotImplementedError

    def load(self, key: StudyKey) -> Optional[dict]:
        kind = faults.inject("store.load")
        if kind == "delay":
            time.sleep(faults.delay_seconds())
        elif kind in ("reset", "error"):
            raise OSError(f"injected fault: store.load {kind}")
        text = self.load_text(key)
        if text is not None and kind in ("corrupt", "torn"):
            # A corrupted or truncated entry must decode to None — a
            # cache miss — so callers recompute and heal the store.
            text = (
                faults.corrupt_text(text)
                if kind == "corrupt"
                else text[: len(text) // 2]
            )
        return None if text is None else decode_study(text, key)

    def save(
        self,
        key: StudyKey,
        search: SearchResult,
        regions: Regions,
        prediction: Prediction,
        confusion: ConfusionMatrix,
    ) -> None:
        text = encode_study(key, search, regions, prediction, confusion)
        kind = faults.inject("store.save")
        if kind == "delay":
            time.sleep(faults.delay_seconds())
        elif kind in ("reset", "error"):
            raise OSError(f"injected fault: store.save {kind}")
        elif kind in ("corrupt", "torn"):
            # Persist a damaged payload: the next load must treat it
            # as a miss and the recompute path must overwrite it with
            # the byte-identical canonical text.
            text = (
                faults.corrupt_text(text)
                if kind == "corrupt"
                else text[: len(text) // 2]
            )
        self.save_text(key, text)

    def raw_payload(self, key: StudyKey) -> Optional[str]:
        """The stored text for a key (testing / equality checks)."""
        return self.load_text(key)

    def close(self) -> None:
        pass

    def __enter__(self) -> "StudyStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class JsonDirectoryStore(StudyStore):
    """Versioned JSON files, one per study, atomically replaced.

    The write goes to a ``mkstemp`` temp file in the same directory and
    lands via ``os.replace``, which is atomic on POSIX and Windows —
    concurrent readers see either no file, the old payload, or the new
    payload, never a prefix.
    """

    kind = "json"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path_for(self, key: StudyKey) -> Path:
        return study_path(self.root, key)

    def load_text(self, key: StudyKey) -> Optional[str]:
        try:
            return self.path_for(key).read_text()
        except (OSError, UnicodeDecodeError):
            return None

    def save_text(self, key: StudyKey, text: str) -> None:
        path = self.path_for(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp_name, path)
            except BaseException:
                os.unlink(tmp_name)
                raise
        except OSError:
            return


class SqliteStudyStore(StudyStore):
    """One WAL-mode SQLite database, one row per study key.

    WAL lets any number of readers proceed while a writer commits;
    writers serialize on the database write lock with a 30 s busy
    timeout, so a fleet of runner workers can share one store without
    the per-file open/replace races of a directory layout.  Saves are
    idempotent upserts — the deterministic pipeline means two workers
    racing on one key write identical payloads.
    """

    kind = "sqlite"
    DB_NAME = f"studies-v{SCHEMA_VERSION}.sqlite"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._conn: Optional[sqlite3.Connection] = None

    @property
    def db_path(self) -> Path:
        return self.root / self.DB_NAME

    def _connect(self) -> Optional[sqlite3.Connection]:
        if self._conn is not None:
            return self._conn
        conn = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(str(self.db_path), timeout=30.0)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            with conn:
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS studies ("
                    "skey TEXT PRIMARY KEY, payload TEXT NOT NULL)"
                )
        except (sqlite3.Error, OSError):
            if conn is not None:
                conn.close()
            return None
        self._conn = conn
        return conn

    def load_text(self, key: StudyKey) -> Optional[str]:
        conn = self._connect()
        if conn is None:
            return None
        try:
            row = conn.execute(
                "SELECT payload FROM studies WHERE skey = ?", (key.slug,)
            ).fetchone()
        except sqlite3.Error:
            return None
        return None if row is None else row[0]

    def save_text(self, key: StudyKey, text: str) -> None:
        conn = self._connect()
        if conn is None:
            return
        try:
            with conn:
                conn.execute(
                    "INSERT INTO studies (skey, payload) VALUES (?, ?) "
                    "ON CONFLICT(skey) DO UPDATE SET payload = excluded.payload",
                    (key.slug, text),
                )
        except sqlite3.Error:
            return

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None


#: kind → factory over the store target (a directory path, or
#: ``host:port`` for the remote backend).
_STORE_FACTORIES: Dict[str, Callable[[Union[str, Path]], StudyStore]] = {}

#: Kinds whose factory registers on first use, so importing the cache
#: layer never drags in the module that provides them.
_LAZY_STORE_MODULES = {"remote": "repro.service.remote"}


def register_store_kind(
    kind: str, factory: Callable[[Union[str, Path]], StudyStore]
) -> None:
    """Register a store backend factory under a kind name."""
    _STORE_FACTORIES[kind] = factory


register_store_kind("json", lambda target: JsonDirectoryStore(Path(target)))
register_store_kind("sqlite", lambda target: SqliteStudyStore(Path(target)))


def make_store(kind: str, cache_dir: Union[str, Path]) -> StudyStore:
    """Instantiate a store backend by name over its target.

    The target is a cache directory for the local kinds and a
    ``host:port`` address for ``remote``.
    """
    if kind not in _STORE_FACTORIES and kind in _LAZY_STORE_MODULES:
        importlib.import_module(_LAZY_STORE_MODULES[kind])
    factory = _STORE_FACTORIES.get(kind)
    if factory is None:
        raise ValueError(
            f"unknown store kind {kind!r}; known: {'/'.join(STORE_KINDS)}"
        )
    return factory(cache_dir)


def store_from_env() -> Optional[StudyStore]:
    """The store selected by ``REPRO_CACHE_DIR``/``REPRO_CACHE_STORE``.

    None when no cache directory is configured; raises ``ValueError``
    on an invalid store kind (the benchmark conftest turns that into a
    usage error before any pipeline runs).
    """
    cache_dir = cache_dir_from_env()
    if cache_dir is None:
        return None
    return make_store(store_kind_from_env(), cache_dir)
