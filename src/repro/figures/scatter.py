"""Shared implementation of the anomaly scatter figures (6 and 9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.figures.common import FigureConfig, study_for


@dataclass(frozen=True)
class ScatterData:
    expression: str
    threshold: float
    n_samples: int
    abundance: float
    time_scores: Tuple[float, ...]
    flop_scores: Tuple[float, ...]
    instances: Tuple[Tuple[int, ...], ...]


def generate_scatter(config: FigureConfig, expression_name: str) -> ScatterData:
    study = study_for(config, expression_name)
    search = study.search
    return ScatterData(
        expression=search.expression,
        threshold=search.threshold,
        n_samples=search.n_samples,
        abundance=search.abundance,
        time_scores=search.time_scores,
        flop_scores=search.flop_scores,
        instances=tuple(a.instance for a in search.anomalies),
    )


def render_scatter(data: ScatterData, title: str) -> str:
    lines = [
        title,
        (
            f"  {len(data.time_scores)} anomalies in {data.n_samples} "
            f"samples (abundance {data.abundance:.2%}, threshold "
            f"{data.threshold:.0%})"
        ),
        f"  {'instance':>28} {'flop score':>11} {'time score':>11}",
    ]
    rows = sorted(
        zip(data.instances, data.flop_scores, data.time_scores),
        key=lambda r: -r[2],
    )
    for instance, flop_score, time_score in rows[:20]:
        lines.append(
            f"  {str(instance):>28} {flop_score:>11.1%} {time_score:>11.1%}"
        )
    if len(rows) > 20:
        lines.append(f"  ... {len(rows) - 20} more")
    return "\n".join(lines)
