"""Anomaly abundance vs search volume (ROADMAP follow-on figure).

The paper reports abundance inside its fixed [20, 1200] box; this
artefact asks how the rate changes as the exploration volume grows
(``NAMED_BOXES``: ``paper_box`` → ``wide_box`` → ``huge_box``).  The
anomalous regions live at small dims, so widening the box dilutes
them: abundance falls roughly with the volume ratio — a compiler that
trusts FLOPs is wrong *less often* on big random sizes, but exactly as
wrong in the small-dim corner every real workload lives in.

Each (expression, box) point is the Experiment-1 search of the
corresponding study, shared through :func:`repro.figures.common.study_for`
and its :class:`~repro.figures.cache.StudyStore` layer — warming the
matrix with ``python -m repro.runner --abundance`` makes this figure a
pure store read.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Tuple

from repro.core.searchspace import NAMED_BOXES
from repro.experiments.random_search import SearchResult
from repro.expressions.registry import get_expression, known_expressions
from repro.figures.common import FigureConfig, study_for

#: Box order: increasing per-dim span, hence increasing volume.
BOX_ORDER: Tuple[str, ...] = ("paper_box", "wide_box", "huge_box")


@dataclass(frozen=True)
class AbundancePoint:
    """One expression searched inside one named box."""

    expression: str
    box: str
    span: int
    n_dims: int
    n_samples: int
    n_anomalies: int
    abundance: float

    @property
    def log10_volume(self) -> float:
        """log₁₀ of the box volume (span^n_dims) — the x axis."""
        import math

        return self.n_dims * math.log10(self.span)


@dataclass(frozen=True)
class AbundanceData:
    scale: str
    seed: int
    threshold: float
    boxes: Tuple[str, ...]
    points: Tuple[AbundancePoint, ...]

    def for_expression(self, name: str) -> Tuple[AbundancePoint, ...]:
        return tuple(p for p in self.points if p.expression == name)


def point_from_search(
    expression_name: str, box_name: str, search: SearchResult
) -> AbundancePoint:
    low, high = NAMED_BOXES[box_name]
    return AbundancePoint(
        expression=expression_name,
        box=box_name,
        span=high - low + 1,
        n_dims=get_expression(expression_name).n_dims,
        n_samples=search.n_samples,
        n_anomalies=len(search.anomalies),
        abundance=search.abundance,
    )


def data_from_searches(
    config: FigureConfig,
    load_search: Callable[[str, str], SearchResult],
    expressions: Optional[Sequence[str]] = None,
    boxes: Sequence[str] = BOX_ORDER,
) -> AbundanceData:
    """Build the figure from any per-(expression, box) search loader.

    The figure path passes a :func:`study_for`-backed loader; the
    runner CLI passes one reading its own store, so both surfaces share
    the same shaping and rendering code.
    """
    from repro.figures.common import SEARCH_THRESHOLD

    if expressions is None:
        expressions = known_expressions()
    points = tuple(
        point_from_search(name, box, load_search(name, box))
        for name in expressions
        for box in boxes
    )
    return AbundanceData(
        scale=config.scale,
        seed=config.seed,
        threshold=SEARCH_THRESHOLD,
        boxes=tuple(boxes),
        points=points,
    )


def generate(
    config: FigureConfig,
    expressions: Optional[Sequence[str]] = None,
    boxes: Sequence[str] = BOX_ORDER,
) -> AbundanceData:
    """Abundance points for every (expression, box), via the study cache."""

    def load_search(name: str, box: str) -> SearchResult:
        return study_for(replace(config, box=box), name).search

    return data_from_searches(config, load_search, expressions, boxes)


def render(data: AbundanceData) -> str:
    """ASCII rendering: one abundance bar per (expression, box)."""
    lines = [
        "Anomaly abundance vs search volume "
        f"(threshold {data.threshold:.0%}, scale {data.scale}, "
        f"seed {data.seed})",
        f"  {'expression':<10} {'box':<10} {'log10(vol)':>10} "
        f"{'anomalies':>9} {'samples':>8} {'abundance':>9}",
    ]
    peak = max((p.abundance for p in data.points), default=0.0) or 1.0
    expressions = []
    for point in data.points:
        if point.expression not in expressions:
            expressions.append(point.expression)
    for name in expressions:
        for point in data.for_expression(name):
            bar = "#" * max(
                1 if point.n_anomalies else 0,
                round(24 * point.abundance / peak),
            )
            lines.append(
                f"  {point.expression:<10} {point.box:<10} "
                f"{point.log10_volume:>10.1f} {point.n_anomalies:>9} "
                f"{point.n_samples:>8} {point.abundance:>9.2%} {bar}"
            )
        lines.append("")
    lines.append(
        "anomalous regions sit at small dims: growing the sampled "
        "volume dilutes them, it does not remove them"
    )
    return "\n".join(lines)
