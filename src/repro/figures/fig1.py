"""Figure 1: GEMM/SYRK/SYMM efficiency at square sizes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.backends.simulated import SimulatedBackend
from repro.figures.common import FigureConfig
from repro.kernels.flops import kernel_flops
from repro.kernels.types import KERNEL_ARITY, KernelName
from repro.machine.presets import paper_machine


@dataclass(frozen=True)
class Fig1Data:
    series: Dict[KernelName, List[Tuple[int, float]]]

    def efficiency_at(self, kernel: KernelName, size: int) -> float:
        """Efficiency at the sampled size closest to ``size``."""
        points = self.series[kernel]
        return min(points, key=lambda p: abs(p[0] - size))[1]


def generate(config: FigureConfig) -> Fig1Data:
    backend = SimulatedBackend(paper_machine(seed=config.seed))
    sizes = config.fig1_sizes()
    peak = backend.peak_flops
    series: Dict[KernelName, List[Tuple[int, float]]] = {}
    for kernel in (KernelName.GEMM, KernelName.SYRK, KernelName.SYMM):
        dims_list = [(size,) * KERNEL_ARITY[kernel] for size in sizes]
        seconds = backend.time_kernels(kernel, dims_list)
        series[kernel] = [
            (size, float(kernel_flops(kernel, dims)) / (s * peak))
            for size, dims, s in zip(sizes, dims_list, seconds.tolist())
        ]
    return Fig1Data(series=series)


def render(data: Fig1Data, width: int = 50) -> str:
    lines = ["Figure 1: kernel efficiency vs square size"]
    for kernel, points in data.series.items():
        lines.append(f"  {kernel.value}")
        for size, efficiency in points:
            bar = "#" * int(round(efficiency * width))
            lines.append(f"  {size:>6} |{bar:<{width}}| {efficiency:.3f}")
    return "\n".join(lines)
