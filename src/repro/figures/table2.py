"""Table 2: confusion matrix for benchmark-predicted ``A Aᵀ B`` anomalies."""

from __future__ import annotations

from repro.analysis.confusion import ConfusionMatrix
from repro.figures.common import FigureConfig, study_for


def generate(config: FigureConfig) -> ConfusionMatrix:
    return study_for(config, "aatb").confusion


def render(matrix: ConfusionMatrix) -> str:
    return matrix.format_table(
        "Table 2: A·Aᵀ·B anomalies predicted from kernel benchmarks"
    )
