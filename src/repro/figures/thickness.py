"""Shared implementation of the region-thickness figures (7 and 10)."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Tuple

from repro.figures.common import FigureConfig, study_for


@dataclass(frozen=True)
class ThicknessDistribution:
    dim: int
    thicknesses: Tuple[int, ...]

    @property
    def median(self) -> float:
        return statistics.median(self.thicknesses) if self.thicknesses else 0.0

    @property
    def max(self) -> int:
        return max(self.thicknesses) if self.thicknesses else 0


@dataclass(frozen=True)
class RegionFigureData:
    expression: str
    threshold: float
    n_dims: int
    distributions: Tuple[ThicknessDistribution, ...]


def generate_thickness(
    config: FigureConfig, expression_name: str
) -> RegionFigureData:
    study = study_for(config, expression_name)
    regions = study.regions
    distributions: List[ThicknessDistribution] = []
    for dim in range(regions.n_dims):
        distributions.append(
            ThicknessDistribution(
                dim=dim,
                thicknesses=tuple(regions.thicknesses(dim)),
            )
        )
    return RegionFigureData(
        expression=regions.expression,
        threshold=regions.threshold,
        n_dims=regions.n_dims,
        distributions=tuple(distributions),
    )


def render_thickness(data: RegionFigureData, title: str) -> str:
    lines = [
        title,
        (
            f"  region thickness per dimension "
            f"(threshold {data.threshold:.0%})"
        ),
    ]
    for dist in data.distributions:
        values = " ".join(str(t) for t in sorted(dist.thicknesses))
        lines.append(
            f"  d{dist.dim}: median {dist.median:>6.0f}  max {dist.max:>5}  "
            f"[{values}]"
        )
    return "\n".join(lines)
