"""Figures layer: regenerators for the paper's artefacts.

One module per artefact: ``fig1``, ``fig6`` … ``fig11``, ``table1``,
``table2``, plus the post-paper ``abundance`` figure (anomaly rate vs
search volume across the named boxes).  Each exposes
``generate(config) -> data`` and ``render(data) -> str`` (ASCII
rendering — artefacts print in any terminal/CI log).  Experiment
pipelines are shared through
:func:`repro.figures.common.study_for`'s process-level cache.
"""

from repro.figures.common import FigureConfig, study_for

__all__ = ["FigureConfig", "study_for"]
