"""Figure 11: ``A Aᵀ B`` efficiencies along one line per dimension."""

from __future__ import annotations

from repro.figures.common import FigureConfig
from repro.figures.traces_fig import (
    TraceFigureData,
    generate_aatb_lines,
    render_traces,
)


def generate(config: FigureConfig) -> TraceFigureData:
    return generate_aatb_lines(config)


def render(data: TraceFigureData) -> str:
    return render_traces(
        data, "Figure 11: A·Aᵀ·B efficiencies along lines through a region"
    )
