"""Analytic machine model: kernel efficiency and execution time.

The model composes four effects, each traceable to a mechanism the
paper discusses:

1. **Efficiency ramps** — each kernel approaches its plateau as
   ``d / (d + ramp_d)`` per dimension, limited by its *worst*
   dimension.  GEMM tolerates one small extent (rank-k updates);
   SYRK/SYMM degrade sharply when their symmetric extent is small.
   This asymmetry is what makes the FLOP-cheapest ``A Aᵀ B``
   algorithms slow at small ``d0`` (the paper's anomalous regions),
   and it is *gradual* — the paper's second transition type.

2. **Variant dispatch** — below an internal blocking boundary a
   kernel runs a different variant at lower efficiency, producing
   *abrupt* efficiency jumps (§4.3).  Disabled in
   :func:`repro.machine.presets.no_variants_machine`.

3. **Thread balance** — work splits across ``cores`` chunks along the
   kernel's parallel dimension; the last partial chunk idles cores,
   a staircase that matters below ~20 chunks.

4. **Inter-kernel cache effects** — inside a multi-kernel algorithm a
   consumer kernel streams over data the producer left cache-resident
   in an unfavourable layout; the resulting conflict misses are
   invisible to isolated (flushed-cache) kernel benchmarks.  This is
   the paper's explanation for Experiment 3's false negatives.
   Disabled in :func:`repro.machine.presets.no_cache_machine`.

Measured times add stateless multiplicative noise (median of
``reps`` repetitions, the paper's protocol).
"""

from __future__ import annotations

import math
import statistics
from typing import Optional, Sequence

from repro.kernels.flops import kernel_flops
from repro.kernels.types import KernelCall, KernelName
from repro.machine.noise import NoiseModel
from repro.machine.spec import MachineSpec

#: Relative cost of the conflict misses a *producer* kernel's cache
#: residue inflicts on its consumer.  SYRK leaves a packed triangle
#: behind — the consumer re-reads it as a symmetric matrix through a
#: layout the producer never streamed, the worst case; a GEMM producer
#: leaves a contiguously written full matrix, the best case.
_INTERFERENCE = {
    KernelName.SYRK: 0.15,
    KernelName.SYMM: 0.06,
    KernelName.GEMM: 0.02,
}


class MachineModel:
    """Deterministic timing model for one machine configuration."""

    def __init__(
        self,
        spec: MachineSpec,
        noise: Optional[NoiseModel] = None,
        reps: int = 5,
        variant_dispatch: bool = True,
        cache_effects: bool = True,
    ) -> None:
        if reps < 1:
            raise ValueError("reps must be >= 1")
        self.spec = spec
        self.noise = noise if noise is not None else NoiseModel()
        self.reps = reps
        self.variant_dispatch = variant_dispatch
        self.cache_effects = cache_effects

    @property
    def peak_flops(self) -> float:
        return self.spec.peak_flops

    # ------------------------------------------------------------------
    # Noise-free analytic quantities
    # ------------------------------------------------------------------

    def efficiency(self, kernel: KernelName, dims: Sequence[int]) -> float:
        """Fraction of machine peak this kernel call sustains."""
        perf = self.spec.kernel_perf[kernel]
        if len(dims) != len(perf.ramps):
            raise ValueError(
                f"{kernel.value} expects {len(perf.ramps)} dims, "
                f"got {tuple(dims)!r}"
            )
        if any(d < 1 for d in dims):
            raise ValueError(f"dims must be positive, got {tuple(dims)!r}")
        eff = perf.plateau
        factors = [
            (d / (d + ramp)) ** exponent
            for d, ramp, exponent in zip(dims, perf.ramps, perf.exponents)
        ]
        if perf.ramp_mode == "product":
            for factor in factors:
                eff *= factor
        else:
            eff *= min(factors)
        if self.variant_dispatch:
            for dim, boundary, below_factor in perf.variant_boundaries:
                if dims[dim] < boundary:
                    eff *= below_factor
        # Thread balance along the parallel dimension.
        d_par = dims[perf.parallel_dim]
        cores = self.spec.cores
        eff *= d_par / (math.ceil(d_par / cores) * cores)
        return eff

    def kernel_seconds(self, kernel: KernelName, dims: Sequence[int]) -> float:
        """Noise-free execution time of one isolated kernel call."""
        flops = float(kernel_flops(kernel, dims))
        return flops / (self.efficiency(kernel, dims) * self.peak_flops)

    def interference_penalty(self, producer: KernelCall, consumer: KernelCall) -> float:
        """Relative slowdown of ``consumer`` from the producer's cache residue.

        Scales with how much of the private cache the consumer's
        working set plus the producer's just-written residue occupy —
        so two schedules of the same plan whose final product consumes
        differently-sized residues are genuinely (not just noise-)
        distinct.
        """
        if not self.cache_effects:
            return 0.0
        ws_bytes = 8 * int(consumer.operand_elements())
        residue_bytes = 8 * int(producer.output_elements())
        occupancy = min(
            1.0, (ws_bytes + residue_bytes) / self.spec.l2_bytes
        )
        return _INTERFERENCE[producer.kernel] * occupancy

    # ------------------------------------------------------------------
    # Measurements (noise + median-of-reps)
    # ------------------------------------------------------------------

    def _measure(self, base_seconds: float, key: str) -> float:
        samples = [
            base_seconds * self.noise.factor(key, rep)
            for rep in range(self.reps)
        ]
        return statistics.median(samples)

    def measure_kernel(self, kernel: KernelName, dims: Sequence[int]) -> float:
        """Median measured time of one isolated (flushed-cache) call."""
        base = self.kernel_seconds(kernel, dims)
        key = f"{kernel.value}|{tuple(dims)}"
        return self._measure(base, key)

    def measure_algorithm(
        self, calls: Sequence[KernelCall], context: str = ""
    ) -> float:
        """Median measured time of a whole multi-kernel algorithm run.

        ``context`` (typically the algorithm name) decorrelates the
        noise of this run from every other measurement: two algorithms
        sharing an identical kernel call still time it independently,
        as they would on real hardware.
        """
        total = 0.0
        previous: Optional[KernelCall] = None
        for index, call in enumerate(calls):
            base = self.kernel_seconds(call.kernel, call.dims)
            if previous is not None and call.reads_previous:
                base *= 1.0 + self.interference_penalty(previous, call)
            key = f"{context}|{index}|{call.kernel.value}|{tuple(call.dims)}"
            total += self._measure(base, key)
            previous = call
        return total

    def predict_algorithm(
        self, calls: Sequence[KernelCall], context: str = ""
    ) -> float:
        """Sum of per-kernel times (Experiment 3's benchmark predictor).

        Uses the same noise stream as :meth:`measure_algorithm` so the
        prediction error isolates exactly what isolated benchmarks
        cannot see — the inter-kernel cache effects.
        """
        total = 0.0
        for index, call in enumerate(calls):
            base = self.kernel_seconds(call.kernel, call.dims)
            key = f"{context}|{index}|{call.kernel.value}|{tuple(call.dims)}"
            total += self._measure(base, key)
        return total
