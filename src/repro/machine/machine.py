"""Analytic machine model: kernel efficiency and execution time.

The model composes four effects, each traceable to a mechanism the
paper discusses:

1. **Efficiency ramps** — each kernel approaches its plateau as
   ``d / (d + ramp_d)`` per dimension, limited by its *worst*
   dimension.  GEMM tolerates one small extent (rank-k updates);
   SYRK/SYMM degrade sharply when their symmetric extent is small.
   This asymmetry is what makes the FLOP-cheapest ``A Aᵀ B``
   algorithms slow at small ``d0`` (the paper's anomalous regions),
   and it is *gradual* — the paper's second transition type.

2. **Variant dispatch** — below an internal blocking boundary a
   kernel runs a different variant at lower efficiency, producing
   *abrupt* efficiency jumps (§4.3).  Disabled in
   :func:`repro.machine.presets.no_variants_machine`.

3. **Thread balance** — work splits across ``cores`` chunks along the
   kernel's parallel dimension; the last partial chunk idles cores,
   a staircase that matters below ~20 chunks.

4. **Inter-kernel cache effects** — inside a multi-kernel algorithm a
   consumer kernel streams over data the producer left cache-resident
   in an unfavourable layout; the resulting conflict misses are
   invisible to isolated (flushed-cache) kernel benchmarks.  This is
   the paper's explanation for Experiment 3's false negatives.
   Disabled in :func:`repro.machine.presets.no_cache_machine`.

Measured times add stateless multiplicative noise (median of
``reps`` repetitions, the paper's protocol).

Every quantity is computed **batch-first** over ``(n, arity)`` dims
matrices (the ``*_batch`` methods); the scalar methods run the batch
path on one-element arrays.  NumPy selects its ufunc inner loops by
dtype and machine, never by array length, so grouping measurements
into batches cannot change a single bit of any result — the
equivalence suite in ``tests/test_batch_equivalence.py`` pins this.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.envknobs import scheduler_enabled
from repro.kernels.flops import kernel_flops_batch
from repro.kernels.types import (
    KERNEL_ARITY,
    KernelCall,
    KernelCallBatch,
    KernelName,
    batch_kernel_calls,
)
from repro.machine.noise import NoiseModel, fold
from repro.machine.spec import MachineSpec

#: Known step-schedule policies (the machine presets' ``schedule``
#: knob, threaded through study keys and the runner's ``--schedule``).
#: ``default`` keeps each plan's compiled step order; the other two
#: let :func:`repro.expressions.scheduler.schedule_order` pick the
#: dependency-respecting permutation this model's cache-interference
#: term scores fastest/slowest.  Reordering changes which step pairs
#: are producer/consumer adjacent — and therefore the measured times —
#: so non-default schedules are a distinct study scenario, never a
#: cache-compatible variation of the default one.
SCHEDULES = ("default", "min-interference", "max-interference")

#: Relative cost of the conflict misses a *producer* kernel's cache
#: residue inflicts on its consumer.  SYRK leaves a packed triangle
#: behind — the consumer re-reads it as a symmetric matrix through a
#: layout the producer never streamed, the worst case; a GEMM producer
#: leaves a contiguously written full matrix, the best case.
_INTERFERENCE = {
    KernelName.SYRK: 0.15,
    KernelName.SYMM: 0.06,
    KernelName.GEMM: 0.02,
    # ADD streams its output contiguously, like GEMM's best case.
    KernelName.ADD: 0.02,
    # TRSM overwrites B in place column by column — better than a
    # packed triangle, worse than one contiguous output sweep.
    KernelName.TRSM: 0.05,
}

#: Integer tokens folded into measurement ids (stable across runs).
_KERNEL_TOKEN = {
    KernelName.GEMM: 1,
    KernelName.SYRK: 2,
    KernelName.SYMM: 3,
    KernelName.ADD: 4,
    KernelName.TRSM: 5,
}

#: Noise-stream context for isolated kernel benchmarks — separate
#: from every algorithm's stream, like a standalone benchmark run.
_BENCH_CONTEXT = "kernel-benchmark"

#: Byte budget of the noise-free base-seconds cache (keys + values).
#: Within one evaluation batch, equivalent plans revisit the same
#: ``(kernel, dims-column)`` slots; the analytic base time is
#: noise-free and context-free, so it is the one quantity that *can*
#: be shared across plans.  Bounded by bytes (not entries) because
#: both the key and the value scale with the batch length.
_BASE_CACHE_MAX_BYTES = 32 * 1024 * 1024


def _as_dims_matrix(kernel: KernelName, dims) -> np.ndarray:
    arr = np.asarray(dims, dtype=np.int64)
    arity = KERNEL_ARITY[kernel]
    if arr.ndim != 2 or arr.shape[1] != arity:
        raise ValueError(
            f"{kernel.value} batch expects (n, {arity}) dims, "
            f"got shape {arr.shape!r}"
        )
    return arr


class MachineModel:
    """Deterministic timing model for one machine configuration."""

    def __init__(
        self,
        spec: MachineSpec,
        noise: Optional[NoiseModel] = None,
        reps: int = 5,
        variant_dispatch: bool = True,
        cache_effects: bool = True,
        schedule: str = "default",
    ) -> None:
        if reps < 1:
            raise ValueError("reps must be >= 1")
        if schedule not in SCHEDULES:
            raise ValueError(
                f"schedule must be one of {SCHEDULES}, got {schedule!r}"
            )
        self.spec = spec
        self.noise = noise if noise is not None else NoiseModel()
        self.reps = reps
        self.variant_dispatch = variant_dispatch
        self.cache_effects = cache_effects
        self.schedule = schedule
        #: Per-plan step orders chosen by the scheduler for this
        #: machine's ``schedule`` (owned by
        #: :func:`repro.expressions.scheduler.schedule_order`).
        self.schedule_cache: dict = {}
        self._stream_base_cache: dict = {}
        # Noise-free base seconds keyed by (kernel, dims-matrix bytes);
        # shared across algorithm contexts (see _BASE_CACHE_MAX_BYTES).
        self._base_seconds_cache: dict = {}
        self._base_cache_bytes = 0
        self.base_seconds_cache_hits = 0

    @property
    def peak_flops(self) -> float:
        return self.spec.peak_flops

    # ------------------------------------------------------------------
    # Noise-free analytic quantities
    # ------------------------------------------------------------------

    def efficiency_batch(self, kernel: KernelName, dims) -> np.ndarray:
        """Fraction of machine peak each call of a batch sustains."""
        dims = _as_dims_matrix(kernel, dims)
        perf = self.spec.kernel_perf[kernel]
        if np.any(dims < 1):
            raise ValueError("dims must be positive")
        d = dims.astype(np.float64)
        factors = [
            np.power(d[:, j] / (d[:, j] + ramp), exponent)
            for j, (ramp, exponent) in enumerate(
                zip(perf.ramps, perf.exponents)
            )
        ]
        eff = np.full(dims.shape[0], perf.plateau)
        if perf.ramp_mode == "product":
            for factor in factors:
                eff = eff * factor
        else:
            worst = factors[0]
            for factor in factors[1:]:
                worst = np.minimum(worst, factor)
            eff = eff * worst
        if self.variant_dispatch:
            for dim, boundary, below_factor in perf.variant_boundaries:
                eff = np.where(
                    dims[:, dim] < boundary, eff * below_factor, eff
                )
        # Thread balance along the parallel dimension.
        d_par = d[:, perf.parallel_dim]
        cores = self.spec.cores
        eff = eff * (d_par / (np.ceil(d_par / cores) * cores))
        return eff

    def efficiency(self, kernel: KernelName, dims: Sequence[int]) -> float:
        """Fraction of machine peak this kernel call sustains."""
        perf = self.spec.kernel_perf[kernel]
        if len(dims) != len(perf.ramps):
            raise ValueError(
                f"{kernel.value} expects {len(perf.ramps)} dims, "
                f"got {tuple(dims)!r}"
            )
        if any(d < 1 for d in dims):
            raise ValueError(f"dims must be positive, got {tuple(dims)!r}")
        return float(self.efficiency_batch(kernel, [tuple(dims)])[0])

    def kernel_seconds_batch(self, kernel: KernelName, dims) -> np.ndarray:
        """Noise-free times of a batch of isolated kernel calls."""
        dims = _as_dims_matrix(kernel, dims)
        flops = kernel_flops_batch(kernel, dims).astype(np.float64)
        return flops / (self.efficiency_batch(kernel, dims) * self.peak_flops)

    def kernel_seconds(self, kernel: KernelName, dims: Sequence[int]) -> float:
        """Noise-free execution time of one isolated kernel call."""
        return float(self.kernel_seconds_batch(kernel, [tuple(dims)])[0])

    def interference_penalty_batch(
        self, producer: KernelCallBatch, consumer: KernelCallBatch
    ) -> np.ndarray:
        """Per-instance consumer slowdown from the producer's residue."""
        if not self.cache_effects:
            return np.zeros(consumer.n)
        ws_bytes = 8 * consumer.operand_elements()
        residue_bytes = 8 * producer.output_elements()
        occupancy = np.minimum(
            1.0, (ws_bytes + residue_bytes) / self.spec.l2_bytes
        )
        return _INTERFERENCE[producer.kernel] * occupancy

    def interference_penalty(
        self, producer: KernelCall, consumer: KernelCall
    ) -> float:
        """Relative slowdown of ``consumer`` from the producer's cache residue.

        Scales with how much of the private cache the consumer's
        working set plus the producer's just-written residue occupy —
        so two schedules of the same plan whose final product consumes
        differently-sized residues are genuinely (not just noise-)
        distinct.
        """
        if not self.cache_effects:
            return 0.0
        ws_bytes = 8 * int(consumer.operand_elements())
        residue_bytes = 8 * int(producer.output_elements())
        occupancy = min(
            1.0, (ws_bytes + residue_bytes) / self.spec.l2_bytes
        )
        return _INTERFERENCE[producer.kernel] * occupancy

    # ------------------------------------------------------------------
    # Measurements (noise + median-of-reps)
    # ------------------------------------------------------------------

    def _stream_base(self, context: str) -> int:
        base = self._stream_base_cache.get(context)
        if base is None:
            base = self.noise.stream_base(context)
            self._stream_base_cache[context] = base
        return base

    def _measurement_ids(
        self,
        context_base: int,
        index: Optional[int],
        kernel: KernelName,
        dims: np.ndarray,
    ) -> np.ndarray:
        """Fold the measurement coordinates into per-instance noise ids."""
        ids = np.full(dims.shape[0], context_base, dtype=np.uint64)
        if index is not None:
            ids = fold(ids, index)
        ids = fold(ids, _KERNEL_TOKEN[kernel])
        for j in range(dims.shape[1]):
            ids = fold(ids, dims[:, j])
        return ids

    def _measure_batch(
        self, base_seconds: np.ndarray, ids: np.ndarray
    ) -> np.ndarray:
        factors = self.noise.factors_from_ids(ids, self.reps)
        return np.median(base_seconds[:, None] * factors, axis=1)

    def measure_kernel_batch(self, kernel: KernelName, dims) -> np.ndarray:
        """Median measured times of isolated (flushed-cache) calls."""
        dims = _as_dims_matrix(kernel, dims)
        base = self.kernel_seconds_batch(kernel, dims)
        ids = self._measurement_ids(
            self._stream_base(_BENCH_CONTEXT), None, kernel, dims
        )
        return self._measure_batch(base, ids)

    def measure_kernel(self, kernel: KernelName, dims: Sequence[int]) -> float:
        """Median measured time of one isolated (flushed-cache) call."""
        return float(self.measure_kernel_batch(kernel, [tuple(dims)])[0])

    def _base_seconds_memo(
        self, kernel: KernelName, dims: np.ndarray
    ) -> np.ndarray:
        """Noise-free base seconds, memoised across algorithm contexts.

        Equivalent plans evaluated over the same instance batch issue
        largely overlapping ``(kernel, dims-column)`` calls; the base
        time depends only on those coordinates (no context, no noise),
        so it is computed once per distinct column per batch.  Callers
        must not mutate the returned array (the interference multiply
        in :meth:`_algorithm_batch` rebinds, never writes in place).
        """
        key = (kernel, np.ascontiguousarray(dims).tobytes())
        base = self._base_seconds_cache.get(key)
        if base is None:
            base = self.kernel_seconds_batch(kernel, dims)
            size = len(key[1]) + base.nbytes
            if self._base_cache_bytes + size > _BASE_CACHE_MAX_BYTES:
                self._base_seconds_cache.clear()
                self._base_cache_bytes = 0
            self._base_seconds_cache[key] = base
            self._base_cache_bytes += size
        else:
            self.base_seconds_cache_hits += 1
        return base

    def _algorithm_batch(
        self,
        calls: Sequence[KernelCallBatch],
        context: str,
        with_interference: bool,
    ) -> np.ndarray:
        if not calls:
            raise ValueError("algorithm batch needs at least one call")
        context_base = self._stream_base(context)
        if len(calls) > 1 and scheduler_enabled():
            return self._algorithm_batch_fused(
                calls, context_base, with_interference
            )
        total = np.zeros(calls[0].n)
        previous: Optional[KernelCallBatch] = None
        for index, call in enumerate(calls):
            base = self._base_seconds_memo(call.kernel, call.dims)
            if (
                with_interference
                and previous is not None
                and call.reads_previous
            ):
                base = base * (
                    1.0 + self.interference_penalty_batch(previous, call)
                )
            ids = self._measurement_ids(
                context_base, index, call.kernel, call.dims
            )
            total = total + self._measure_batch(base, ids)
            previous = call
        return total

    def _algorithm_batch_fused(
        self,
        calls: Sequence[KernelCallBatch],
        context_base: int,
        with_interference: bool,
    ) -> np.ndarray:
        """One noise/median pass over a whole multi-kernel region.

        Bit-equal to the per-call loop by construction: measurement ids
        and base seconds are built per call exactly as before, then the
        noise factors and the median-of-reps run once over the stacked
        ``(k*n, reps)`` block — :meth:`NoiseModel.factors_from_ids` is
        elementwise per id and ``np.median`` sorts each row
        independently, so row ``index*n + j`` matches what call
        ``index`` alone would have produced for instance ``j``.  The
        final summation replays the sequential per-call order (never a
        pairwise ``np.sum`` reduction, which would reorder the float
        additions for k >= 8).  This amortizes the per-call NumPy
        dispatch of the study hot loop's innermost layer — the win the
        scheduler's fused regions hand to every backend at once.
        """
        n = calls[0].n
        bases: list = []
        ids: list = []
        previous: Optional[KernelCallBatch] = None
        for index, call in enumerate(calls):
            base = self._base_seconds_memo(call.kernel, call.dims)
            if (
                with_interference
                and previous is not None
                and call.reads_previous
            ):
                base = base * (
                    1.0 + self.interference_penalty_batch(previous, call)
                )
            bases.append(np.broadcast_to(base, (n,)))
            ids.append(
                self._measurement_ids(
                    context_base, index, call.kernel, call.dims
                )
            )
            previous = call
        factors = self.noise.factors_from_ids(np.concatenate(ids), self.reps)
        measured = np.median(
            np.concatenate(bases)[:, None] * factors, axis=1
        )
        total = np.zeros(n)
        for index in range(len(calls)):
            total = total + measured[index * n:(index + 1) * n]
        return total

    def measure_algorithm_batch(
        self, calls: Sequence[KernelCallBatch], context: str = ""
    ) -> np.ndarray:
        """Median measured times of whole multi-kernel algorithm runs.

        ``context`` (typically the algorithm name) decorrelates the
        noise of these runs from every other measurement: two
        algorithms sharing an identical kernel call still time it
        independently, as they would on real hardware.
        """
        return self._algorithm_batch(calls, context, with_interference=True)

    def predict_algorithm_batch(
        self, calls: Sequence[KernelCallBatch], context: str = ""
    ) -> np.ndarray:
        """Sums of per-kernel times (Experiment 3's benchmark predictor).

        Uses the same noise stream as :meth:`measure_algorithm_batch`
        so the prediction error isolates exactly what isolated
        benchmarks cannot see — the inter-kernel cache effects.
        """
        return self._algorithm_batch(calls, context, with_interference=False)

    def measure_algorithm(
        self, calls: Sequence[KernelCall], context: str = ""
    ) -> float:
        """Median measured time of a whole multi-kernel algorithm run."""
        if not calls:
            return 0.0
        return float(
            self.measure_algorithm_batch(batch_kernel_calls(calls, 1), context)[0]
        )

    def predict_algorithm(
        self, calls: Sequence[KernelCall], context: str = ""
    ) -> float:
        """Sum of per-kernel times for one instance (see batch variant)."""
        if not calls:
            return 0.0
        return float(
            self.predict_algorithm_batch(batch_kernel_calls(calls, 1), context)[0]
        )
