"""Canonical machine configurations used across the repository.

``paper_machine``        the default: every mechanism enabled, noise
                         levels matching a pinned-but-real host.
``no_cache_machine``     ablation: inter-kernel cache effects off —
                         isolated kernel benchmarks become exact
                         predictors (Experiment 3's counterfactual).
``no_variants_machine``  ablation: internal variant dispatch off —
                         kernel efficiency scans lose their abrupt
                         jumps and keep only the gradual ramps.

Every preset takes a ``schedule`` knob (one of
:data:`repro.machine.machine.SCHEDULES`, default ``"default"``): a
non-default schedule lets the plan scheduler reorder each algorithm's
steps by the model's cache-interference term, which is a distinct
study scenario — see ``FigureConfig.schedule`` and the runner's
``--schedule``.
"""

from __future__ import annotations

from repro.machine.machine import MachineModel
from repro.machine.noise import NoiseModel
from repro.machine.spec import xeon_silver_4210_like

#: Calibrated default noise: ~1% log-normal jitter and a 2% chance of
#: an external-event spike per repetition; median-of-5 suppresses both.
_SIGMA = 0.012
_SPIKE = 0.02
_REPS = 5


def paper_machine(seed: int = 0, schedule: str = "default") -> MachineModel:
    """The machine every figure and table is regenerated on."""
    return MachineModel(
        xeon_silver_4210_like(),
        noise=NoiseModel(sigma=_SIGMA, spike_probability=_SPIKE, seed=seed),
        reps=_REPS,
        schedule=schedule,
    )


def no_cache_machine(seed: int = 0, schedule: str = "default") -> MachineModel:
    """Paper machine with inter-kernel cache effects disabled."""
    return MachineModel(
        xeon_silver_4210_like(),
        noise=NoiseModel(sigma=_SIGMA, spike_probability=_SPIKE, seed=seed),
        reps=_REPS,
        cache_effects=False,
        schedule=schedule,
    )


def no_variants_machine(
    seed: int = 0, schedule: str = "default"
) -> MachineModel:
    """Paper machine with internal kernel-variant dispatch disabled."""
    return MachineModel(
        xeon_silver_4210_like(),
        noise=NoiseModel(sigma=_SIGMA, spike_probability=_SPIKE, seed=seed),
        reps=_REPS,
        variant_dispatch=False,
        schedule=schedule,
    )
