"""Hardware specification for the simulated machine.

The paper's experiments ran on an Intel Xeon Silver 4210 (Cascade
Lake) with 10 cores pinned.  The spec below is "*-like*": constants
are calibrated so the *shape* of the paper's results reproduces
(efficiency ramps, kernel plateaus, anomalous regions), not to match
absolute wall times of the original host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.kernels.types import KernelName


@dataclass(frozen=True)
class KernelPerf:
    """Per-kernel analytic efficiency parameters.

    Each dimension contributes a ramp factor
    ``(d / (d + ramp))**exponent``; the factors combine by
    ``ramp_mode``:

    * ``"product"`` — every dimension must be large for full speed,
      but one small dimension only costs its own factor (GEMM: large-k
      rank updates with small m, n stay reasonably efficient).
    * ``"min"`` — the worst dimension alone gates performance (SYRK /
      SYMM: a small symmetric extent ruins blocking regardless of the
      other extent).  A quadratic exponent on the symmetric extent
      reproduces the sharp small-``n`` collapse BLAS SYRK/SYMM show in
      the paper's Figure 1 measurements.

    ``variant_boundaries``: internal blocked-variant dispatch — at each
    ``(dim, position, below_factor)`` boundary, sizes below run a
    variant with that relative efficiency (the paper's *abrupt*
    transitions).
    """

    plateau: float
    ramps: Tuple[float, ...]
    exponents: Tuple[float, ...]
    ramp_mode: str = "min"
    variant_boundaries: Tuple[Tuple[int, int, float], ...] = ()
    parallel_dim: int = 0


@dataclass(frozen=True)
class MachineSpec:
    name: str
    cores: int
    frequency_hz: float
    flops_per_cycle: int
    l2_bytes: int
    l3_bytes: int
    kernel_perf: Dict[KernelName, KernelPerf] = field(hash=False)

    @property
    def peak_flops(self) -> float:
        return self.cores * self.frequency_hz * self.flops_per_cycle


def xeon_silver_4210_like() -> MachineSpec:
    """10-core Cascade Lake-ish machine calibrated to the paper's shapes.

    Calibration targets (exercised by benchmarks/):

    * Figure 1: all kernels ramp from <0.2 at size 20 to >0.7 at
      size 1200 on square problems, GEMM on top at moderate sizes.
    * GEMM tolerates one small dimension; SYRK/SYMM collapse when
      their symmetric extent is small — the asymmetry behind the
      ``A Aᵀ B`` anomalous regions at small ``d0`` (~10% abundance
      over the paper box at the 10% threshold).
    * One mid-range variant boundary per kernel produces the abrupt
      efficiency jumps of §4.3 (>0.08 against a 10-unit scan).
    """
    kernel_perf = {
        KernelName.GEMM: KernelPerf(
            plateau=0.955,
            ramps=(40.0, 40.0, 100.0),
            exponents=(1.0, 1.0, 1.0),
            ramp_mode="product",
            variant_boundaries=((0, 420, 0.82),),
            parallel_dim=0,
        ),
        KernelName.SYRK: KernelPerf(
            plateau=0.905,
            ramps=(135.0, 70.0),
            exponents=(2.0, 1.0),
            ramp_mode="min",
            variant_boundaries=((0, 448, 0.82),),
            parallel_dim=0,
        ),
        KernelName.SYMM: KernelPerf(
            plateau=0.885,
            ramps=(120.0, 75.0),
            exponents=(1.2, 1.0),
            ramp_mode="min",
            variant_boundaries=((0, 640, 0.84),),
            parallel_dim=0,
        ),
        # ADD is memory-bound: one FLOP per three streamed elements
        # caps it at a few percent of the FLOP peak, with bandwidth
        # saturating at small sizes already (short ramps, no blocked
        # variants).  The tiny plateau is what makes an ADD call's
        # *time* non-negligible despite its negligible FLOP count.
        KernelName.ADD: KernelPerf(
            plateau=0.035,
            ramps=(25.0, 25.0),
            exponents=(1.0, 1.0),
            ramp_mode="product",
            variant_boundaries=(),
            parallel_dim=0,
        ),
        # TRSM parallelises over the columns of B (dim 1) and runs a
        # sequential substitution along the triangular extent, so a
        # small right-hand-side count collapses efficiency the way a
        # small symmetric extent collapses SYRK/SYMM (quadratic
        # exponent, like SYRK).  Below ~110 columns the collapse is
        # superlinear — a 25-column solve takes *longer* than a
        # 100-column one — which is what makes the FLOP-cheapest
        # solve<k> plans (they solve at the narrowest chain boundary)
        # anomaly-prone, ~2% quick-scale abundance.
        KernelName.TRSM: KernelPerf(
            plateau=0.82,
            ramps=(140.0, 110.0),
            exponents=(1.0, 2.0),
            ramp_mode="min",
            variant_boundaries=((0, 512, 0.85),),
            parallel_dim=1,
        ),
    }
    return MachineSpec(
        name="xeon-silver-4210-like",
        cores=10,
        frequency_hz=2.2e9,
        flops_per_cycle=16,
        l2_bytes=1 << 20,
        l3_bytes=14_080 * 1024,
        kernel_perf=kernel_perf,
    )
