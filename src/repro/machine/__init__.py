"""Machine layer: hardware spec, noise model, machine model, presets."""

from repro.machine.machine import MachineModel
from repro.machine.noise import NoiseModel
from repro.machine.spec import MachineSpec, xeon_silver_4210_like

__all__ = ["MachineModel", "MachineSpec", "NoiseModel", "xeon_silver_4210_like"]
