"""Measurement-noise model for the simulated machine.

Real timings fluctuate (DVFS, co-scheduled daemons, page faults); the
paper counters this with pinned cores, cache flushing and median-of-k
repetitions, plus the §3.4.2 hole-tolerance rule when traversing
regions.  The simulated counterpart is *stateless*: the noise factor
for a measurement is a pure function of ``(seed, key, rep)``, so a
measurement repeated anywhere in a pipeline reproduces exactly —
order-independent determinism, which the experiment code relies on.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass
from typing import Tuple


def _unit_from_hash(payload: bytes) -> Tuple[float, float]:
    """Two deterministic U(0,1) samples from one hashed payload."""
    digest = hashlib.blake2b(payload, digest_size=16).digest()
    a, b = struct.unpack("<QQ", digest)
    scale = 2.0**64
    # Offset by half an ulp so neither sample is ever exactly 0.
    return (a + 0.5) / scale, (b + 0.5) / scale


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative log-normal jitter plus occasional spikes.

    ``sigma``              log-std of the per-measurement factor.
    ``spike_probability``  chance a measurement is hit by an external
                           event, multiplying time by up to 3x (spikes
                           only slow down — they never speed up).
    ``seed``               stream selector; two models with different
                           seeds are independent.
    """

    sigma: float = 0.0
    spike_probability: float = 0.0
    seed: int = 0

    def factor(self, key: str, rep: int) -> float:
        """Deterministic noise factor (>= ~0) for one measurement."""
        if self.sigma == 0.0 and self.spike_probability == 0.0:
            return 1.0
        u, v = _unit_from_hash(f"{self.seed}|{key}|{rep}".encode())
        # Box-Muller from the two uniforms.
        gauss = math.sqrt(-2.0 * math.log(u)) * math.cos(2.0 * math.pi * v)
        value = math.exp(self.sigma * gauss)
        if self.spike_probability > 0.0:
            s, m = _unit_from_hash(f"spike|{self.seed}|{key}|{rep}".encode())
            if s < self.spike_probability:
                value *= 1.0 + 2.0 * m
        return value
