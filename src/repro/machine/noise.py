"""Measurement-noise model for the simulated machine.

Real timings fluctuate (DVFS, co-scheduled daemons, page faults); the
paper counters this with pinned cores, cache flushing and median-of-k
repetitions, plus the §3.4.2 hole-tolerance rule when traversing
regions.  The simulated counterpart is *stateless*: the noise factor
for a measurement is a pure function of ``(seed, measurement id,
rep)``, so a measurement repeated anywhere in a pipeline reproduces
exactly — order-independent determinism, which the experiment code
relies on.

The model is batch-first.  A *measurement id* is a 64-bit integer
built by hashing the stream context once (:meth:`NoiseModel.stream_base`)
and then :func:`fold`-ing the discrete measurement coordinates (call
index, kernel, dims) into it with a SplitMix64-style mixer — pure
``uint64`` arithmetic that NumPy evaluates elementwise over whole
arrays of measurements at once.  Per-repetition uniforms come from the
same mixer, so the scalar path (:meth:`NoiseModel.factor`) is exactly
the batch path run on a one-element array: integer mixing is exact and
the float pipeline uses the same NumPy ufunc loops regardless of batch
size, which makes scalar and batched noise bit-for-bit identical.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

import numpy as np

#: SplitMix64 increment and finalizer multipliers (Steele et al.).
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

#: Stream-separation constants (hex digits of pi): one independent
#: uniform stream per role a measurement needs.
_STREAM_U = np.uint64(0x243F6A8885A308D3)  # log-normal, first uniform
_STREAM_V = np.uint64(0x13198A2E03707344)  # log-normal, second uniform
_STREAM_S = np.uint64(0xA4093822299F31D0)  # spike occurrence
_STREAM_M = np.uint64(0x082EFA98EC4E6C89)  # spike magnitude

_SHIFT_30 = np.uint64(30)
_SHIFT_27 = np.uint64(27)
_SHIFT_31 = np.uint64(31)
_SHIFT_11 = np.uint64(11)
_TWO_POW_MINUS_53 = 2.0**-53


def mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer, elementwise over ``uint64`` arrays."""
    x = (x ^ (x >> _SHIFT_30)) * _MIX1
    x = (x ^ (x >> _SHIFT_27)) * _MIX2
    return x ^ (x >> _SHIFT_31)


def fold(h: np.ndarray, value) -> np.ndarray:
    """Absorb one integer field into a measurement id (elementwise).

    ``value`` may be a Python int, a NumPy scalar, or an array
    broadcastable against ``h``; it is reduced mod 2**64.
    """
    value = np.asarray(value)
    if value.dtype != np.uint64:
        value = value.astype(np.int64).view(np.uint64)
    return mix64((h + _GAMMA) ^ value)


def _unit(bits: np.ndarray) -> np.ndarray:
    """Map ``uint64`` bits to U(0, 1) floats, never exactly 0 or 1."""
    return ((bits >> _SHIFT_11).astype(np.float64) + 0.5) * _TWO_POW_MINUS_53


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative log-normal jitter plus occasional spikes.

    ``sigma``              log-std of the per-measurement factor.
    ``spike_probability``  chance a measurement is hit by an external
                           event, multiplying time by up to 3x (spikes
                           only slow down — they never speed up).
    ``seed``               stream selector; two models with different
                           seeds are independent.
    """

    sigma: float = 0.0
    spike_probability: float = 0.0
    seed: int = 0

    @property
    def silent(self) -> bool:
        """True when every factor is exactly 1.0."""
        return self.sigma == 0.0 and self.spike_probability == 0.0

    def stream_base(self, context: str) -> int:
        """Root measurement id of one noise stream (seed + context)."""
        digest = hashlib.blake2b(
            f"{self.seed}|{context}".encode(), digest_size=8
        ).digest()
        return struct.unpack("<Q", digest)[0]

    def factors_from_ids(self, ids, reps: int) -> np.ndarray:
        """Noise factors for ``reps`` repetitions of each measurement.

        ``ids`` is a ``(n,)`` array-like of ``uint64`` measurement ids;
        the result has shape ``(n, reps)``.
        """
        ids = np.asarray(ids, dtype=np.uint64).reshape(-1)
        if self.silent:
            return np.ones((ids.shape[0], reps))
        rep_ids = fold(ids[:, None], np.arange(reps, dtype=np.int64)[None, :])
        u = _unit(mix64(rep_ids ^ _STREAM_U))
        v = _unit(mix64(rep_ids ^ _STREAM_V))
        # Box-Muller from the two uniforms.
        gauss = np.sqrt(-2.0 * np.log(u)) * np.cos(2.0 * np.pi * v)
        value = np.exp(self.sigma * gauss)
        if self.spike_probability > 0.0:
            s = _unit(mix64(rep_ids ^ _STREAM_S))
            m = _unit(mix64(rep_ids ^ _STREAM_M))
            value = np.where(
                s < self.spike_probability, value * (1.0 + 2.0 * m), value
            )
        return value

    def factors(self, key: str, reps: int) -> np.ndarray:
        """All ``reps`` factors of one string-keyed measurement."""
        ids = np.array([self.stream_base(key)], dtype=np.uint64)
        return self.factors_from_ids(ids, reps)[0]

    def factor(self, key: str, rep: int) -> float:
        """Deterministic noise factor (> 0) for one measurement."""
        if self.silent:
            return 1.0
        return float(self.factors(key, rep + 1)[rep])
