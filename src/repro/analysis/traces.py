"""Per-algorithm efficiency traces along a line (Figures 8 and 11).

A line pierces an anomalous region along one dimension.  At each
position every algorithm is measured; each trace point records the
algorithm's *total efficiency* (its FLOPs over time x machine peak —
in [0, 1] by construction) and whether it is FLOP-cheapest and/or
measured-fastest there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.backends.base import Backend
from repro.core.classify import classify_batch, evaluate_instances
from repro.core.searchspace import Box
from repro.expressions.base import Expression


@dataclass(frozen=True)
class TracePoint:
    position: int
    total_efficiency: float
    seconds: float
    flops: int
    is_cheapest: bool
    is_fastest: bool

    @property
    def status(self) -> str:
        if self.is_cheapest and self.is_fastest:
            return "both"
        if self.is_cheapest:
            return "cheapest"
        if self.is_fastest:
            return "fastest"
        return ""


@dataclass(frozen=True)
class AlgorithmTrace:
    algorithm_name: str
    points: Tuple[TracePoint, ...]


@dataclass(frozen=True)
class LineTraces:
    expression: str
    origin: Tuple[int, ...]
    dim: int
    threshold: float
    positions: Tuple[int, ...]
    anomalous_positions: FrozenSet[int]
    traces: Tuple[AlgorithmTrace, ...]


def trace_line(
    backend: Backend,
    expression: Expression,
    origin: Sequence[int],
    dim: int,
    box: Box,
    half_points: int = 12,
    threshold: float = 0.05,
    step: Optional[int] = None,
) -> LineTraces:
    """Trace all algorithms along ``dim`` through ``origin``."""
    origin = tuple(int(v) for v in origin)
    if not 0 <= dim < expression.n_dims:
        raise ValueError(f"dim {dim} out of range")
    if not box.contains(origin):
        raise ValueError(f"origin {origin} outside box")
    if step is None:
        step = max(4, box.span(dim) // (2 * half_points))
    positions = sorted(
        {
            min(max(origin[dim] + k * step, box.lows[dim]), box.highs[dim])
            for k in range(-half_points, half_points + 1)
        }
    )
    algorithms = expression.algorithms()
    anomalous: set = set()
    per_algorithm: List[List[TracePoint]] = [[] for _ in algorithms]
    instances = [
        tuple(position if i == dim else v for i, v in enumerate(origin))
        for position in positions
    ]
    batch = evaluate_instances(backend, algorithms, instances)
    verdicts = classify_batch(batch, threshold=threshold)
    peak = backend.peak_flops
    for row, (position, verdict) in enumerate(zip(positions, verdicts)):
        if verdict.is_anomaly:
            anomalous.add(position)
        evaluation = batch.evaluation(row)
        cheapest = set(evaluation.cheapest_indices())
        fastest = set(evaluation.fastest_indices())
        for i in range(len(algorithms)):
            seconds = evaluation.seconds[i]
            flops = evaluation.flops[i]
            per_algorithm[i].append(
                TracePoint(
                    position=position,
                    total_efficiency=flops / (seconds * peak),
                    seconds=seconds,
                    flops=flops,
                    is_cheapest=i in cheapest,
                    is_fastest=i in fastest,
                )
            )
    return LineTraces(
        expression=expression.name,
        origin=origin,
        dim=dim,
        threshold=threshold,
        positions=tuple(positions),
        anomalous_positions=frozenset(anomalous),
        traces=tuple(
            AlgorithmTrace(algorithm_name=a.name, points=tuple(pts))
            for a, pts in zip(algorithms, per_algorithm)
        ),
    )
