"""Analysis layer: turning experiment output into paper artefacts."""

from repro.analysis.confusion import ConfusionMatrix, confusion_from_prediction
from repro.analysis.selection import SelectionQuality, selection_quality
from repro.analysis.traces import LineTraces, trace_line

__all__ = [
    "ConfusionMatrix",
    "LineTraces",
    "SelectionQuality",
    "confusion_from_prediction",
    "selection_quality",
    "trace_line",
]
