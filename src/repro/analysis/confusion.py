"""Confusion matrices for anomaly prediction (Tables 1 and 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.prediction import Prediction


@dataclass(frozen=True)
class ConfusionMatrix:
    true_positive: int
    false_positive: int
    false_negative: int
    true_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.false_negative
            + self.true_negative
        )

    @property
    def actual_yes(self) -> int:
        return self.true_positive + self.false_negative

    @property
    def actual_no(self) -> int:
        return self.false_positive + self.true_negative

    @property
    def predicted_yes(self) -> int:
        return self.true_positive + self.false_positive

    @property
    def predicted_no(self) -> int:
        return self.false_negative + self.true_negative

    @property
    def recall(self) -> float:
        """Fraction of actual anomalies predicted (1.0 when none exist)."""
        return (
            self.true_positive / self.actual_yes if self.actual_yes else 1.0
        )

    @property
    def precision(self) -> float:
        """Fraction of predicted anomalies that are real (1.0 when none)."""
        return (
            self.true_positive / self.predicted_yes
            if self.predicted_yes
            else 1.0
        )

    def format_table(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        lines += [
            f"{'':>14} {'pred yes':>9} {'pred no':>9} {'total':>7}",
            (
                f"{'actual yes':>14} {self.true_positive:>9} "
                f"{self.false_negative:>9} {self.actual_yes:>7}"
            ),
            (
                f"{'actual no':>14} {self.false_positive:>9} "
                f"{self.true_negative:>9} {self.actual_no:>7}"
            ),
            (
                f"{'total':>14} {self.predicted_yes:>9} "
                f"{self.predicted_no:>9} {self.total:>7}"
            ),
            (
                f"recall {self.recall:.1%}   precision {self.precision:.1%}"
            ),
        ]
        return "\n".join(lines)


def confusion_from_prediction(prediction: Prediction) -> ConfusionMatrix:
    tp = fp = fn = tn = 0
    for record in prediction.records:
        if record.actual_anomaly and record.predicted_anomaly:
            tp += 1
        elif record.actual_anomaly:
            fn += 1
        elif record.predicted_anomaly:
            fp += 1
        else:
            tn += 1
    return ConfusionMatrix(
        true_positive=tp,
        false_positive=fp,
        false_negative=fn,
        true_negative=tn,
    )
