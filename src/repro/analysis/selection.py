"""Selection quality: how good is a discriminant on random instances?

For each sampled instance the discriminant picks an algorithm without
per-instance algorithm measurements; the pick is then scored against
the measured-fastest oracle.  ``miss_rate`` applies the paper's
anomaly rule to the *choice*: a miss is a pick more than ``threshold``
slower than the fastest (time score of the chosen algorithm).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.core.classify import evaluate_instances
from repro.core.discriminants import Discriminant
from repro.core.searchspace import Box
from repro.expressions.base import Expression


@dataclass(frozen=True)
class SelectionQuality:
    discriminant: str
    expression: str
    n_instances: int
    threshold: float
    miss_rate: float
    mean_regret: float
    worst_regret: float
    worst_instance: Optional[Tuple[int, ...]]

    def summary(self) -> str:
        worst = (
            f" (worst {self.worst_regret:.1%} at {self.worst_instance})"
            if self.worst_instance is not None
            else ""
        )
        return (
            f"{self.discriminant:<28} miss rate {self.miss_rate:>6.1%}   "
            f"mean regret {self.mean_regret:>6.2%}{worst}"
        )


def selection_quality(
    discriminant: Discriminant,
    backend: Backend,
    expression: Expression,
    box: Box,
    n_instances: int = 300,
    threshold: float = 0.10,
    seed: int = 0,
) -> SelectionQuality:
    if n_instances < 1:
        raise ValueError("n_instances must be positive")
    rng = random.Random(seed)
    algorithms = expression.algorithms()
    misses = 0
    total_regret = 0.0
    worst_regret = -1.0
    worst_instance: Optional[Tuple[int, ...]] = None
    instances = [box.sample(rng) for _ in range(n_instances)]
    choices = discriminant.select_batch(algorithms, instances)
    batch = evaluate_instances(backend, algorithms, instances)
    t_chosen_all = batch.seconds[np.arange(len(instances)), choices]
    t_min_all = batch.seconds.min(axis=1)
    for instance, t_chosen, t_min in zip(
        instances, t_chosen_all.tolist(), t_min_all.tolist()
    ):
        regret = t_chosen / t_min - 1.0
        total_regret += regret
        if regret > worst_regret:
            worst_regret = regret
            worst_instance = instance
        if 1.0 - t_min / t_chosen > threshold:
            misses += 1
    return SelectionQuality(
        discriminant=discriminant.name,
        expression=expression.name,
        n_instances=n_instances,
        threshold=threshold,
        miss_rate=misses / n_instances,
        mean_regret=total_regret / n_instances,
        worst_regret=worst_regret,
        worst_instance=worst_instance,
    )
