"""``python -m repro.ablation`` — see :mod:`repro.ablation.cli`."""

import sys

from repro.ablation.cli import main

if __name__ == "__main__":
    sys.exit(main())
