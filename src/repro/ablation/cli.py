"""CLI for the ablation harness.

Run the quick-scale baseline-plus-one-off matrix and print the ranked
importance report::

    PYTHONPATH=src python -m repro.ablation \
        --jobs 4 --cache-dir .study-cache --report-dir reports

Studies land in the same :class:`~repro.figures.cache.StudyStore` the
runner and the benchmark suite use, so a warm store makes re-ablation
near-free.  ``--report-dir`` additionally writes the canonical JSON
and markdown artefacts (what CI archives); without it the markdown is
only printed.

Component names, expression names, scales, boxes and store kinds are
validated *up front*: a typo is an argparse usage error (exit 2)
listing the valid names, never a KeyError traceback from the middle of
a study run.  ``--list-components`` prints the registry and exits.

The exit code is the machine check: ``1`` when any inert
(bit-preserving-by-contract) component moved abundance, recall or
precision — or when a study failed — ``0`` otherwise.

``python -m repro.runner --ablation`` drives the same code path with
the runner's store/jobs flags.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.ablation.components import (
    COMPONENTS,
    component_names,
)
from repro.ablation.harness import (
    DEFAULT_EXPRESSIONS,
    AblationConfig,
    AblationError,
    run_ablation,
)
from repro.ablation.report import report_markdown, write_report
from repro.core.searchspace import NAMED_BOXES
from repro.figures.cache import CACHE_DIR_ENV, STORE_KINDS

_SCALES = ("quick", "full")


def validated_component(name: str) -> str:
    """One component name, or an argparse usage error listing them all."""
    normalized = name.strip()
    if normalized not in COMPONENTS:
        raise argparse.ArgumentTypeError(
            f"unknown component {name!r}; known: "
            f"{', '.join(component_names())}"
        )
    return normalized


def parse_components(raw: str) -> Tuple[str, ...]:
    """Comma-separated component names, each validated up front."""
    names = tuple(
        validated_component(part)
        for part in raw.split(",")
        if part.strip()
    )
    if not names:
        raise argparse.ArgumentTypeError(
            f"needs at least one component name, got {raw!r}"
        )
    return names


def _validated_expression(name: str) -> str:
    from repro.expressions.registry import (
        expression_name_help,
        is_known_expression,
    )

    normalized = name.strip()
    if not is_known_expression(normalized):
        raise argparse.ArgumentTypeError(
            f"unknown expression {name!r}; {expression_name_help()}"
        )
    return normalized


def parse_expressions(raw: str) -> Tuple[str, ...]:
    names = tuple(
        _validated_expression(part)
        for part in raw.split(",")
        if part.strip()
    )
    if not names:
        raise argparse.ArgumentTypeError(
            f"needs at least one expression name, got {raw!r}"
        )
    return names


def _validated_store(kind: str) -> str:
    normalized = kind.strip().lower()
    if normalized not in STORE_KINDS:
        raise argparse.ArgumentTypeError(
            f"unknown store {kind!r}; known: {'/'.join(STORE_KINDS)}"
        )
    return normalized


def _positive_int(flag: str):
    def parse(raw: str) -> int:
        try:
            value = int(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag} takes a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise argparse.ArgumentTypeError(
                f"{flag} must be >= 1, got {value}"
            )
        return value

    return parse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ablation",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scale",
        choices=_SCALES,
        default="quick",
        help="study scale (default: quick)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="machine/experiment seed (default: 0)",
    )
    parser.add_argument(
        "--box",
        default="paper_box",
        choices=tuple(sorted(NAMED_BOXES)),
        help="named exploration box (default: paper_box)",
    )
    parser.add_argument(
        "--expressions",
        type=parse_expressions,
        default=DEFAULT_EXPRESSIONS,
        metavar="NAME[,NAME...]",
        help="comma-separated expression families "
        f"(default: {','.join(DEFAULT_EXPRESSIONS)})",
    )
    parser.add_argument(
        "--components",
        type=parse_components,
        default=None,
        metavar="NAME[,NAME...]",
        help="comma-separated component names to ablate "
        "(default: the whole registry; see --list-components)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int("--jobs"),
        default=1,
        help="worker processes for the study matrix (default: 1)",
    )
    parser.add_argument(
        "--store",
        type=_validated_store,
        default=STORE_KINDS[0],
        metavar="{" + ",".join(STORE_KINDS) + "}",
        help="study-store backend (default: json)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"store directory, or host:port with --store remote "
        f"(default: ${CACHE_DIR_ENV})",
    )
    parser.add_argument(
        "--retries",
        type=_positive_int("--retries"),
        default=2,
        metavar="N",
        help="in-process attempts per key when salvaging a broken "
        "worker pool (default: 2)",
    )
    parser.add_argument(
        "--report-dir",
        default=None,
        metavar="DIR",
        help="also write ablation-report.json + ablation-report.md "
        "into DIR (created if missing)",
    )
    parser.add_argument(
        "--list-components",
        action="store_true",
        help="print the component registry and exit without running",
    )
    return parser


def list_components_text() -> str:
    lines = []
    for component in COMPONENTS.values():
        marker = " [inert]" if component.inert else ""
        lines.append(
            f"{component.name:38s} {component.kind:9s}{marker}"
            f"  {component.description}"
        )
    return "\n".join(lines)


def execute(
    scale: str,
    seed: int,
    box: str,
    expressions: Sequence[str],
    components: Optional[Sequence[str]],
    cache_dir: str,
    store: str = "json",
    jobs: int = 1,
    retries: int = 2,
    report_dir: Optional[str] = None,
) -> int:
    """Run one ablation and render it; the shared CLI body.

    Returns the process exit code: 0 on a clean run, 1 when a study
    failed or an inert component moved the science.
    """
    config_kwargs = dict(
        scale=scale,
        seed=seed,
        box=box,
        expressions=tuple(expressions),
    )
    if components is not None:
        config_kwargs["components"] = tuple(components)
    config = AblationConfig(**config_kwargs)
    try:
        report = run_ablation(
            config,
            cache_dir=cache_dir,
            store=store,
            jobs=jobs,
            retries=retries,
        )
    except AblationError as exc:
        print(f"error: {exc}")
        return 1
    print(report.run_report.summary())
    print()
    print(report_markdown(report))
    if report_dir is not None:
        json_path, markdown_path = write_report(report, Path(report_dir))
        print(f"wrote {json_path} and {markdown_path}")
    if report.inert_violations:
        print(
            f"error: {len(report.inert_violations)} inert-component "
            "violation(s) — bit-preserving layers moved the science "
            "(see the report's inert check)"
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    import os
    import sys

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_components:
        print(list_components_text())
        return 0
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        print(
            f"error: no store directory; pass --cache-dir or set "
            f"{CACHE_DIR_ENV}",
            file=sys.stderr,
        )
        return 2
    return execute(
        scale=args.scale,
        seed=args.seed,
        box=args.box,
        expressions=args.expressions,
        components=args.components,
        cache_dir=cache_dir,
        store=args.store,
        jobs=args.jobs,
        retries=args.retries,
        report_dir=args.report_dir,
    )
