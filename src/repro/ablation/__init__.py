"""Automated ablation: machine-checked science regression.

The harness answers "which load-bearing component moves the paper's
numbers, and by how much?" by enumerating baseline-plus-one-off study
configurations (:mod:`repro.ablation.components`), running them
through the parallel runner and the shared
:class:`~repro.figures.cache.StudyStore`
(:mod:`repro.ablation.harness`), and ranking components by the deltas
they induce on anomaly abundance and detection recall/precision per
expression family (:mod:`repro.ablation.report`).

Run it with ``python -m repro.ablation`` or
``python -m repro.runner --ablation``.

Only :mod:`~repro.ablation.components` is imported here: it sits below
the figures layer (``FigureConfig`` validates its ``variant`` against
this registry), so this package's ``__init__`` must never drag in the
harness's figures/runner imports.
"""

from repro.ablation.components import (
    COMPONENTS,
    DETECTORS,
    STUDY_VARIANTS,
    Component,
    StudyVariant,
    ablation_stats,
    component_names,
    get_component,
    get_variant,
    is_known_variant,
)

__all__ = [
    "COMPONENTS",
    "DETECTORS",
    "STUDY_VARIANTS",
    "Component",
    "StudyVariant",
    "ablation_stats",
    "component_names",
    "get_component",
    "get_variant",
    "is_known_variant",
]
