"""Deterministic renderings of an :class:`AblationReport`.

Two artefacts, both byte-stable for a given
``(scale, seed, box, expressions, components)``:

* **JSON** (``ablation-report.json``) — the machine-readable payload
  CI archives and diffs.  Canonical form: fixed key order, compact
  separators, ``repr``-round-tripping floats, no timestamps, no wall
  times.  Two runs of the same config — same process or not, warm
  store or cold — serialize identically.
* **Markdown** (``ablation-report.md``) — the human-readable
  importance ranking, rendered from the same data.

The volatile run summary (wall seconds, job count) is deliberately
*not* part of either artefact; callers that want it read
``report.run_report`` directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple, Union

from repro.ablation.harness import (
    METRIC_NAMES,
    AblationReport,
    ComponentResult,
)
from repro.ablation.components import DETECTORS

#: Bumped whenever the JSON payload shape changes.
REPORT_SCHEMA = 1

JSON_NAME = "ablation-report.json"
MARKDOWN_NAME = "ablation-report.md"


def report_payload(report: AblationReport) -> dict:
    """The report as a plain-JSON-serializable dict."""
    components = []
    for rank, result in enumerate(report.results, start=1):
        component = result.component
        components.append(
            {
                "rank": rank,
                "name": component.name,
                "kind": component.kind,
                "inert": component.inert,
                "description": component.description,
                "importance": result.importance,
                "metrics": {
                    expression: result.metrics[expression].to_payload()
                    for expression in report.expressions
                },
                "deltas": {
                    expression: {
                        metric: result.deltas[expression][metric]
                        for metric in METRIC_NAMES
                    }
                    for expression in report.expressions
                },
            }
        )
    return {
        "schema": REPORT_SCHEMA,
        "kind": "ablation-report",
        "scale": report.scale,
        "seed": report.seed,
        "box": report.box,
        "expressions": list(report.expressions),
        "detectors": list(DETECTORS),
        "baseline": {
            expression: report.baseline[expression].to_payload()
            for expression in report.expressions
        },
        "components": components,
        "inert_violations": [
            {
                "component": violation.component,
                "expression": violation.expression,
                "metric": violation.metric,
                "delta": violation.delta,
            }
            for violation in report.inert_violations
        ],
    }


def report_json(report: AblationReport) -> str:
    """Canonical JSON text (byte-identical across same-config runs)."""
    return (
        json.dumps(
            report_payload(report),
            separators=(",", ":"),
            sort_keys=False,
            allow_nan=False,
        )
        + "\n"
    )


def _metric_row(result: ComponentResult, expression: str) -> str:
    deltas = result.deltas[expression]
    return " | ".join(f"{deltas[metric]:+.6f}" for metric in METRIC_NAMES)


def report_markdown(report: AblationReport) -> str:
    """The importance ranking as a markdown document."""
    lines: List[str] = []
    lines.append(
        f"# Ablation report — {report.scale} scale, seed {report.seed}, "
        f"{report.box}"
    )
    lines.append("")
    lines.append(
        f"{len(report.results)} components ablated over "
        f"{len(report.expressions)} expression families "
        f"({', '.join(report.expressions)}); detector ensemble: "
        f"{', '.join(DETECTORS)}."
    )
    lines.append("")

    lines.append("## Baseline")
    lines.append("")
    lines.append(
        "| expression | samples | anomalies | abundance | cells | "
        "tp | fp | fn | tn | recall | precision |"
    )
    lines.append("|---|---|---|---|---|---|---|---|---|---|---|")
    for expression in report.expressions:
        m = report.baseline[expression]
        lines.append(
            f"| {expression} | {m.n_samples} | {m.n_anomalies} | "
            f"{m.abundance:.6f} | {m.n_cells} | {m.true_positive} | "
            f"{m.false_positive} | {m.false_negative} | "
            f"{m.true_negative} | {m.recall:.6f} | {m.precision:.6f} |"
        )
    lines.append("")

    lines.append("## Component importance")
    lines.append("")
    lines.append(
        "Importance is the largest absolute delta a component induces "
        "on any (expression, metric); inert components must stay at "
        "exactly zero."
    )
    lines.append("")
    lines.append("| rank | component | kind | inert | importance |")
    lines.append("|---|---|---|---|---|")
    for rank, result in enumerate(report.results, start=1):
        component = result.component
        lines.append(
            f"| {rank} | {component.name} | {component.kind} | "
            f"{'yes' if component.inert else 'no'} | "
            f"{result.importance:.6f} |"
        )
    lines.append("")

    lines.append("## Per-component deltas")
    lines.append("")
    for result in report.results:
        component = result.component
        lines.append(f"### {component.name}")
        lines.append("")
        lines.append(component.description)
        lines.append("")
        lines.append(
            "| expression | Δabundance | Δrecall | Δprecision |"
        )
        lines.append("|---|---|---|---|")
        for expression in report.expressions:
            lines.append(
                f"| {expression} | {_metric_row(result, expression)} |"
            )
        lines.append("")

    lines.append("## Inert check")
    lines.append("")
    if report.inert_violations:
        lines.append(
            "**FAILED** — bit-preserving components moved the science:"
        )
        lines.append("")
        for violation in report.inert_violations:
            lines.append(
                f"- `{violation.component}` moved {violation.metric} on "
                f"{violation.expression} by {violation.delta:+.9g}"
            )
    else:
        lines.append(
            "Passed: every inert component's deltas are exactly zero."
        )
    lines.append("")
    return "\n".join(lines)


def write_report(
    report: AblationReport, directory: Union[str, Path]
) -> Tuple[Path, Path]:
    """Write both renderings; returns ``(json_path, markdown_path)``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / JSON_NAME
    markdown_path = directory / MARKDOWN_NAME
    json_path.write_text(report_json(report), encoding="utf-8")
    markdown_path.write_text(report_markdown(report), encoding="utf-8")
    return json_path, markdown_path
