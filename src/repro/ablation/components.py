"""The registry of ablatable components and their study variants.

Every load-bearing mechanism of the stack is registered here as a
:class:`Component` — one switch the ablation harness can flip while
holding everything else at the baseline.  A component describes two
things:

* **How the study changes.**  Most components map to a
  :class:`StudyVariant` — a named, deterministic modification of the
  study pipeline (a different machine construction, an environment
  knob applied around the pipeline, a recompilation under a tighter
  pruning budget) — or to a non-default machine *schedule*.  Variants
  participate in the :class:`~repro.figures.cache.StudyKey`, so
  variant studies ride the same parallel runner and
  :class:`~repro.figures.cache.StudyStore` cache as baseline ones and
  never collide with them.
* **How anomaly *detection* changes.**  The ``drop-detector-*``
  components leave the study untouched and instead remove one member
  from the harness's detector ensemble (the paper's §5 discriminants
  voting "this instance is anomalous"); see
  :mod:`repro.ablation.harness`.

Components marked ``inert=True`` are performance layers that are
*bit-preserving by contract* (the scheduler's default-schedule
transforms, plan codegen): flipping them off must not move abundance,
recall or precision at all.  The harness turns that contract into a
machine check — a non-zero delta on an inert component fails the run,
which is exactly the regression CI wants to catch.

This module sits low on purpose: it imports machine presets,
expression construction and the compiler's :class:`PruneConfig`, but
never the figures/runner layers — so :mod:`repro.figures.common`
can validate a config's ``variant`` against :data:`STUDY_VARIANTS`
without an import cycle.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.expressions.compiler import CompiledExpression, PruneConfig
from repro.expressions.registry import get_expression
from repro.expressions.base import Expression
from repro.machine.machine import MachineModel
from repro.machine.noise import NoiseModel
from repro.machine.presets import (
    no_cache_machine,
    no_variants_machine,
    paper_machine,
)
from repro.machine.spec import xeon_silver_4210_like

#: The default variant every pre-existing study key carries.
DEFAULT_VARIANT = "default"

#: Detector-ensemble member names (see :mod:`repro.ablation.harness`).
DETECTORS = ("benchmark-sum", "profiled-time", "flops-profile-hybrid")


def _silent_noise_machine(seed: int, schedule: str) -> MachineModel:
    """The paper machine with measurement noise forced silent."""
    return MachineModel(
        xeon_silver_4210_like(),
        noise=NoiseModel(sigma=0.0, spike_probability=0.0, seed=seed),
        reps=1,
        schedule=schedule,
    )


#: machine-construction key → factory(seed, schedule).
_MACHINES = {
    "paper": lambda seed, schedule: paper_machine(seed, schedule),
    "no-noise": _silent_noise_machine,
    "no-cache": lambda seed, schedule: no_cache_machine(seed, schedule),
    "no-variants": lambda seed, schedule: no_variants_machine(
        seed, schedule
    ),
}


@dataclass(frozen=True)
class StudyVariant:
    """One named, deterministic modification of the study pipeline.

    ``machine``       which preset builds the study machine.
    ``env``           environment overrides applied around the whole
                      pipeline (and the harness's detection pass) —
                      the lazily-probed hot-loop knobs
                      (``REPRO_NO_SCHEDULER``/``REPRO_NO_CODEGEN``).
    ``prune_budget``  when set, every expression is recompiled under
                      ``PruneConfig(budget=...)`` — the compiler keeps
                      only the cost-ranked cheapest parenthesisation
                      trees, so the algorithm set itself shrinks.
    """

    name: str
    description: str
    machine: str = "paper"
    env: Tuple[Tuple[str, str], ...] = ()
    prune_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.machine not in _MACHINES:
            raise ValueError(
                f"unknown machine preset {self.machine!r}; "
                f"known: {'/'.join(sorted(_MACHINES))}"
            )
        if self.prune_budget is not None and self.prune_budget < 1:
            raise ValueError("prune_budget must be >= 1")

    def build_machine(self, seed: int, schedule: str) -> MachineModel:
        return _MACHINES[self.machine](seed, schedule)

    def expression_for(self, name: str) -> Expression:
        """The expression this variant studies.

        With a pruning-budget override the registered expression is
        recompiled (never re-registered) under the tighter budget;
        otherwise it is exactly the registry's instance.
        """
        expression = get_expression(name)
        if self.prune_budget is None:
            return expression
        if not isinstance(expression, CompiledExpression):
            raise ValueError(
                f"expression {name!r} is not compiler-generated; "
                "it cannot be recompiled under a pruning budget"
            )
        return expression.with_prune(PruneConfig(budget=self.prune_budget))

    @contextmanager
    def applied_env(self) -> Iterator[None]:
        """Apply the variant's env overrides, restoring on exit."""
        saved = {key: os.environ.get(key) for key, _value in self.env}
        try:
            for key, value in self.env:
                os.environ[key] = value
            yield
        finally:
            for key, previous in saved.items():
                if previous is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = previous


#: name → StudyVariant; ``default`` is the identity.
STUDY_VARIANTS: Dict[str, StudyVariant] = {
    variant.name: variant
    for variant in (
        StudyVariant(
            name=DEFAULT_VARIANT,
            description="the baseline pipeline, untouched",
        ),
        StudyVariant(
            name="no-noise",
            description="measurement noise silent (sigma=0, no spikes, "
            "single repetition)",
            machine="no-noise",
        ),
        StudyVariant(
            name="no-interference",
            description="inter-kernel cache interference off "
            "(isolated benchmarks become exact predictors)",
            machine="no-cache",
        ),
        StudyVariant(
            name="no-variant-dispatch",
            description="internal kernel-variant dispatch off "
            "(no abrupt efficiency jumps)",
            machine="no-variants",
        ),
        StudyVariant(
            name="no-scheduler",
            description="plan scheduler off (REPRO_NO_SCHEDULER=1); "
            "bit-preserving by contract",
            env=(("REPRO_NO_SCHEDULER", "1"),),
        ),
        StudyVariant(
            name="no-codegen",
            description="generated plan evaluators off "
            "(REPRO_NO_CODEGEN=1); bit-preserving by contract",
            env=(("REPRO_NO_CODEGEN", "1"),),
        ),
        StudyVariant(
            name="prune-budget-1",
            description="parenthesisation pruning budget forced to 1 "
            "tree (only the centroid-cheapest association survives)",
            prune_budget=1,
        ),
        StudyVariant(
            name="prune-budget-2",
            description="parenthesisation pruning budget forced to 2 "
            "trees",
            prune_budget=2,
        ),
    )
}


def get_variant(name: str) -> StudyVariant:
    variant = STUDY_VARIANTS.get(name)
    if variant is None:
        raise ValueError(
            f"unknown study variant {name!r}; "
            f"known: {'/'.join(sorted(STUDY_VARIANTS))}"
        )
    return variant


def is_known_variant(name: str) -> bool:
    return name in STUDY_VARIANTS


@dataclass(frozen=True)
class Component:
    """One ablatable component: baseline plus exactly this one change."""

    name: str
    description: str
    #: "machine" | "env" | "pruning" | "schedule" | "detector"
    kind: str
    #: Study variant the component maps to (``default`` when the
    #: component changes the schedule or the detector ensemble).
    variant: str = DEFAULT_VARIANT
    #: Machine step-schedule override (``default`` = baseline's).
    schedule: str = "default"
    #: Detector dropped from the ensemble (detector components only).
    dropped_detector: Optional[str] = None
    #: Bit-preserving layers whose deltas must be exactly zero.
    inert: bool = False

    def __post_init__(self) -> None:
        if self.variant not in STUDY_VARIANTS:
            raise ValueError(f"unknown variant {self.variant!r}")
        if (
            self.dropped_detector is not None
            and self.dropped_detector not in DETECTORS
        ):
            raise ValueError(
                f"unknown detector {self.dropped_detector!r}; "
                f"known: {'/'.join(DETECTORS)}"
            )

    @property
    def needs_own_study(self) -> bool:
        """Whether the component's study key differs from baseline's."""
        return self.variant != DEFAULT_VARIANT or self.schedule != "default"


#: Every ablatable component, in registry (presentation) order.
COMPONENTS: Dict[str, Component] = {
    component.name: component
    for component in (
        Component(
            name="no-noise",
            kind="machine",
            variant="no-noise",
            description="measurement-noise model (log-normal jitter + "
            "spikes, median-of-reps)",
        ),
        Component(
            name="no-interference",
            kind="machine",
            variant="no-interference",
            description="producer-keyed inter-kernel cache "
            "interference term",
        ),
        Component(
            name="no-variant-dispatch",
            kind="machine",
            variant="no-variant-dispatch",
            description="internal kernel-variant dispatch (abrupt "
            "efficiency jumps)",
        ),
        Component(
            name="prune-budget-1",
            kind="pruning",
            variant="prune-budget-1",
            description="cost-guided tree pruning swept to budget 1",
        ),
        Component(
            name="prune-budget-2",
            kind="pruning",
            variant="prune-budget-2",
            description="cost-guided tree pruning swept to budget 2",
        ),
        Component(
            name="no-scheduler",
            kind="env",
            variant="no-scheduler",
            inert=True,
            description="plan scheduler (buffer reuse, fusion, "
            "default-schedule transforms are bit-preserving)",
        ),
        Component(
            name="no-codegen",
            kind="env",
            variant="no-codegen",
            inert=True,
            description="generated plan evaluators (bit-equal to the "
            "interpreter by contract)",
        ),
        Component(
            name="schedule-min-interference",
            kind="schedule",
            schedule="min-interference",
            description="interference-minimizing step reordering",
        ),
        Component(
            name="schedule-max-interference",
            kind="schedule",
            schedule="max-interference",
            description="interference-maximizing step reordering "
            "(adversarial schedule)",
        ),
        Component(
            name="drop-detector-benchmark-sum",
            kind="detector",
            dropped_detector="benchmark-sum",
            description="benchmark-sum discriminant removed from the "
            "anomaly-detection ensemble",
        ),
        Component(
            name="drop-detector-profiled-time",
            kind="detector",
            dropped_detector="profiled-time",
            description="profiled-time discriminant removed from the "
            "anomaly-detection ensemble",
        ),
        Component(
            name="drop-detector-flops-profile-hybrid",
            kind="detector",
            dropped_detector="flops-profile-hybrid",
            description="FLOPs+profile hybrid discriminant removed "
            "from the anomaly-detection ensemble",
        ),
    )
}


def component_names() -> Tuple[str, ...]:
    """All component names, registry order (the report's tie-break)."""
    return tuple(COMPONENTS)


def get_component(name: str) -> Component:
    component = COMPONENTS.get(name)
    if component is None:
        raise KeyError(
            f"unknown component {name!r}; known: "
            f"{', '.join(component_names())}"
        )
    return component


def ablation_stats() -> dict:
    """Registry + env-knob snapshot for ``GET /stats``."""
    from repro.envknobs import scheduler_enabled
    from repro.expressions.codegen import codegen_enabled

    return {
        "components": len(COMPONENTS),
        "component_names": list(component_names()),
        "inert_components": [
            c.name for c in COMPONENTS.values() if c.inert
        ],
        "study_variants": sorted(STUDY_VARIANTS),
        "detectors": list(DETECTORS),
        "scheduler_enabled": scheduler_enabled(),
        "codegen_enabled": codegen_enabled(),
    }
