"""Baseline-plus-one-off ablation studies over the study matrix.

For every requested :class:`~repro.ablation.components.Component` the
harness runs the full study pipeline with *exactly one* thing changed
from the baseline — a machine mechanism off, an env knob flipped, a
pruning budget tightened, a schedule forced, or one detector removed
from the anomaly-detection ensemble — and measures the paper's
headline statistics per expression family:

* **abundance** — Experiment 1's anomaly rate inside the search box;
* **recall / precision** — of the *detector ensemble*: a region cell
  (ground truth from Experiment 2's traversal) is predicted anomalous
  when any enabled §5 discriminant picks a different algorithm than
  the FLOP-minimal one.  With all three detectors enabled this is the
  harness's baseline; ``drop-detector-*`` components remove one
  member, every other component re-runs the same ensemble on its own
  study under its own machine.

Studies flow through the existing :class:`~repro.runner.StudyRunner`
and :class:`~repro.figures.cache.StudyStore` — variant studies are
ordinary store entries under variant-suffixed keys, so a re-run (or
the overnight full-scale workflow) finds them warm.  Every quantity is
deterministic in ``(scale, seed, box, expressions, components)``; the
rendered reports are byte-identical across re-runs, which is what lets
CI diff them.

Components marked *inert* (scheduler, codegen) are bit-preserving
performance layers: the harness fails the run when any of their deltas
is non-zero — the "did this PR change the science?" machine check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.ablation.components import (
    DETECTORS,
    Component,
    component_names,
    get_component,
    get_variant,
)
from repro.analysis.confusion import ConfusionMatrix
from repro.backends.simulated import SimulatedBackend
from repro.core.discriminants import (
    BenchmarkDiscriminant,
    Discriminant,
    FlopsProfileHybrid,
    MinFlopsDiscriminant,
    ProfiledTimeDiscriminant,
)
from repro.experiments.regions import Regions
from repro.expressions.base import Expression
from repro.figures.cache import StudyKey, make_store
from repro.figures.common import FigureConfig
from repro.profiles.benchmark import standard_profiles
from repro.runner.runner import RunReport, StudyRunner

#: FLOP-margin of the ensemble's hybrid member (the service default).
HYBRID_MARGIN = 0.5

#: Default expression families (the golden trio pinned by
#: ``tests/test_golden_metrics.py``): the paper's two plus the
#: compiler-generated gram family.
DEFAULT_EXPRESSIONS: Tuple[str, ...] = ("aatb", "chain4", "gram3")

#: The three science metrics the report ranks deltas on.
METRIC_NAMES: Tuple[str, ...] = ("abundance", "recall", "precision")


class AblationError(RuntimeError):
    """A study the harness needs failed to compute or load."""


@dataclass(frozen=True)
class ScienceMetrics:
    """The paper's headline statistics for one (config, expression)."""

    n_samples: int
    n_anomalies: int
    abundance: float
    n_cells: int
    true_positive: int
    false_positive: int
    false_negative: int
    true_negative: int
    recall: float
    precision: float

    def value(self, metric: str) -> float:
        if metric not in METRIC_NAMES:
            raise KeyError(f"unknown metric {metric!r}")
        return getattr(self, metric)

    def to_payload(self) -> dict:
        return {
            "n_samples": self.n_samples,
            "n_anomalies": self.n_anomalies,
            "abundance": self.abundance,
            "n_cells": self.n_cells,
            "tp": self.true_positive,
            "fp": self.false_positive,
            "fn": self.false_negative,
            "tn": self.true_negative,
            "recall": self.recall,
            "precision": self.precision,
        }


def metric_deltas(
    baseline: ScienceMetrics, variant: ScienceMetrics
) -> Dict[str, float]:
    """Per-metric ``variant - baseline`` (the report's delta rule)."""
    return {
        metric: variant.value(metric) - baseline.value(metric)
        for metric in METRIC_NAMES
    }


def importance_of(deltas: Dict[str, Dict[str, float]]) -> float:
    """One component's importance: its largest absolute delta."""
    return max(
        (
            abs(value)
            for per_metric in deltas.values()
            for value in per_metric.values()
        ),
        default=0.0,
    )


@dataclass(frozen=True)
class ComponentResult:
    """One ablated component: its metrics and deltas vs baseline."""

    component: Component
    metrics: Dict[str, ScienceMetrics]
    deltas: Dict[str, Dict[str, float]]
    importance: float


@dataclass(frozen=True)
class InertViolation:
    """An inert component that moved a science metric."""

    component: str
    expression: str
    metric: str
    delta: float


@dataclass(frozen=True)
class AblationReport:
    """Everything the rendered JSON/markdown reports carry."""

    scale: str
    seed: int
    box: str
    expressions: Tuple[str, ...]
    baseline: Dict[str, ScienceMetrics]
    #: Ranked: descending importance, name ascending on ties.
    results: Tuple[ComponentResult, ...]
    inert_violations: Tuple[InertViolation, ...]
    run_report: Optional[RunReport] = None

    @property
    def ok(self) -> bool:
        return not self.inert_violations


@dataclass(frozen=True)
class AblationConfig:
    """What to ablate: the grid one harness run covers."""

    scale: str = "quick"
    seed: int = 0
    box: str = "paper_box"
    expressions: Tuple[str, ...] = DEFAULT_EXPRESSIONS
    components: Tuple[str, ...] = field(default_factory=component_names)

    def __post_init__(self) -> None:
        if not self.expressions:
            raise ValueError("ablation needs at least one expression")
        if not self.components:
            raise ValueError("ablation needs at least one component")
        for name in self.components:
            get_component(name)  # KeyError lists valid names

    def baseline_config(self) -> FigureConfig:
        return FigureConfig(scale=self.scale, seed=self.seed, box=self.box)

    def config_for(self, component: Component) -> FigureConfig:
        """The one-off study config: baseline plus this component.

        Detector components study the baseline key — only the
        detection pass changes — so their config *is* the baseline's.
        """
        return FigureConfig(
            scale=self.scale,
            seed=self.seed,
            box=self.box,
            schedule=component.schedule,
            variant=component.variant,
        )

    def enumerate_configs(
        self,
    ) -> List[Tuple[Optional[Component], FigureConfig]]:
        """Baseline first, then exactly one entry per component."""
        entries: List[Tuple[Optional[Component], FigureConfig]] = [
            (None, self.baseline_config())
        ]
        for name in self.components:
            component = get_component(name)
            entries.append((component, self.config_for(component)))
        return entries

    def study_keys(self) -> Tuple[StudyKey, ...]:
        """Unique study keys the run needs, baseline keys first."""
        keys: List[StudyKey] = []
        seen = set()
        for _component, config in self.enumerate_configs():
            for expression in self.expressions:
                key = config.study_key(expression)
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
        return tuple(keys)


# ----------------------------------------------------------------------
# Detection: the §5 discriminant ensemble as an anomaly predictor
# ----------------------------------------------------------------------


class _DetectionContext:
    """Per-config machinery the ensemble needs: backend + profiles.

    Built lazily per (variant, schedule) and cached across expressions
    — profile benchmarking is the expensive part and depends only on
    the machine.
    """

    def __init__(self, config: FigureConfig) -> None:
        self.config = config
        self.variant = get_variant(config.variant)
        self.backend = config.build_backend()
        with self.variant.applied_env():
            self.profiles = standard_profiles(self.backend)

    def expression(self, name: str) -> Expression:
        return self.variant.expression_for(name)

    def detector(self, name: str) -> Discriminant:
        if name == "benchmark-sum":
            return BenchmarkDiscriminant(self.backend)
        if name == "profiled-time":
            return ProfiledTimeDiscriminant(self.profiles)
        if name == "flops-profile-hybrid":
            return FlopsProfileHybrid(self.profiles, margin=HYBRID_MARGIN)
        raise KeyError(
            f"unknown detector {name!r}; known: {'/'.join(DETECTORS)}"
        )

    def detect(
        self,
        expression_name: str,
        regions: Regions,
        enabled: Sequence[str],
    ) -> ConfusionMatrix:
        """Ensemble detection over the study's region cells.

        A cell is *predicted anomalous* when any enabled detector's
        pick differs from the FLOP-minimal pick — the selector
        believes the FLOP-cheapest algorithm is not the fastest there,
        which is exactly the paper's anomaly condition applied to a
        selection instead of a measurement.  Ground truth is the
        cell's measured classification.
        """
        cells = regions.cells
        if not cells:
            return ConfusionMatrix(0, 0, 0, 0)
        expression = self.expression(expression_name)
        algorithms = expression.algorithms()
        instances = [cell.instance for cell in cells]
        with self.variant.applied_env():
            base_picks = MinFlopsDiscriminant().select_batch(
                algorithms, instances
            )
            flagged = [False] * len(cells)
            for name in enabled:
                picks = self.detector(name).select_batch(
                    algorithms, instances
                )
                flagged = [
                    flag or pick != base
                    for flag, pick, base in zip(flagged, picks, base_picks)
                ]
        tp = fp = fn = tn = 0
        for cell, predicted in zip(cells, flagged):
            if cell.is_anomaly and predicted:
                tp += 1
            elif cell.is_anomaly:
                fn += 1
            elif predicted:
                fp += 1
            else:
                tn += 1
        return ConfusionMatrix(
            true_positive=tp,
            false_positive=fp,
            false_negative=fn,
            true_negative=tn,
        )


def metrics_from_study(
    study: dict,
    context: _DetectionContext,
    expression_name: str,
    enabled_detectors: Sequence[str],
) -> ScienceMetrics:
    """The science metrics of one loaded study under one ensemble."""
    search = study["search"]
    regions = study["regions"]
    confusion = context.detect(expression_name, regions, enabled_detectors)
    return ScienceMetrics(
        n_samples=search.n_samples,
        n_anomalies=len(search.anomalies),
        abundance=search.abundance,
        n_cells=len(regions.cells),
        true_positive=confusion.true_positive,
        false_positive=confusion.false_positive,
        false_negative=confusion.false_negative,
        true_negative=confusion.true_negative,
        recall=confusion.recall,
        precision=confusion.precision,
    )


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------


def compute_deltas(
    baseline: Dict[str, ScienceMetrics],
    components: Sequence[Component],
    metrics_by_component: Dict[str, Dict[str, ScienceMetrics]],
) -> Tuple[ComponentResult, ...]:
    """Delta math + ranking, separated for fixture-level testing.

    Ranked by descending importance (largest absolute delta over all
    expressions and metrics); ties break to the component name, so the
    order — and the rendered report — is deterministic.
    """
    results = []
    for component in components:
        metrics = metrics_by_component[component.name]
        deltas = {
            expression: metric_deltas(baseline[expression], metrics[expression])
            for expression in baseline
        }
        results.append(
            ComponentResult(
                component=component,
                metrics=metrics,
                deltas=deltas,
                importance=importance_of(deltas),
            )
        )
    return tuple(
        sorted(results, key=lambda r: (-r.importance, r.component.name))
    )


def find_inert_violations(
    results: Sequence[ComponentResult],
) -> Tuple[InertViolation, ...]:
    violations = []
    for result in results:
        if not result.component.inert:
            continue
        for expression in sorted(result.deltas):
            for metric in METRIC_NAMES:
                delta = result.deltas[expression][metric]
                if delta != 0.0:
                    violations.append(
                        InertViolation(
                            component=result.component.name,
                            expression=expression,
                            metric=metric,
                            delta=delta,
                        )
                    )
    return tuple(violations)


def run_ablation(
    config: AblationConfig,
    cache_dir: Union[str, Path],
    store: str = "json",
    jobs: int = 1,
    retries: int = 2,
) -> AblationReport:
    """Run the full baseline-plus-one-off matrix and build the report.

    Studies go through :class:`StudyRunner` (parallel when ``jobs > 1``)
    into the shared store, then each is loaded back and measured.  A
    study that failed to compute *or* to load raises
    :class:`AblationError` — an incomplete report must never rank
    components on partial data.
    """
    keys = config.study_keys()
    runner = StudyRunner(
        cache_dir=Path(cache_dir), store=store, jobs=jobs, retries=retries
    )
    run_report = runner.run(keys)
    failed = [o for o in run_report.outcomes if o.status == "failed"]
    if failed:
        details = "; ".join(
            f"{o.key.slug}: {o.error}" for o in failed[:5]
        )
        raise AblationError(
            f"{len(failed)} ablation studies failed ({details})"
        )

    studies: Dict[StudyKey, dict] = {}
    with make_store(store, cache_dir) as reader:
        for key in keys:
            study = reader.load(key)
            if study is None:
                raise AblationError(
                    f"study {key.slug} missing from the store after the run"
                )
            studies[key] = study

    contexts: Dict[Tuple[str, str], _DetectionContext] = {}

    def context_for(figure_config: FigureConfig) -> _DetectionContext:
        ctx_key = (figure_config.variant, figure_config.schedule)
        if ctx_key not in contexts:
            contexts[ctx_key] = _DetectionContext(figure_config)
        return contexts[ctx_key]

    def metrics_for(
        figure_config: FigureConfig, enabled: Sequence[str]
    ) -> Dict[str, ScienceMetrics]:
        context = context_for(figure_config)
        return {
            expression: metrics_from_study(
                studies[figure_config.study_key(expression)],
                context,
                expression,
                enabled,
            )
            for expression in config.expressions
        }

    baseline = metrics_for(config.baseline_config(), DETECTORS)
    components = [get_component(name) for name in config.components]
    metrics_by_component: Dict[str, Dict[str, ScienceMetrics]] = {}
    for component in components:
        enabled = tuple(
            d for d in DETECTORS if d != component.dropped_detector
        )
        metrics_by_component[component.name] = metrics_for(
            config.config_for(component), enabled
        )

    results = compute_deltas(baseline, components, metrics_by_component)
    return AblationReport(
        scale=config.scale,
        seed=config.seed,
        box=config.box,
        expressions=tuple(config.expressions),
        baseline=baseline,
        results=results,
        inert_violations=find_inert_violations(results),
        run_report=run_report,
    )
