"""Kernel layer: the three BLAS kernels the paper's algorithms use."""

from repro.kernels.flops import kernel_flops
from repro.kernels.types import KernelCall, KernelName

__all__ = ["KernelCall", "KernelName", "kernel_flops"]
