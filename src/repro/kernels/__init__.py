"""Kernel layer: the three BLAS kernels the paper's algorithms use."""

from repro.kernels.flops import kernel_flops, kernel_flops_batch
from repro.kernels.types import (
    KernelCall,
    KernelCallBatch,
    KernelName,
    batch_kernel_calls,
)

__all__ = [
    "KernelCall",
    "KernelCallBatch",
    "KernelName",
    "batch_kernel_calls",
    "kernel_flops",
    "kernel_flops_batch",
]
