"""Kernel layer: the BLAS-style kernels the algorithms decompose into.

The paper's expressions use GEMM/SYRK/SYMM; the compiler's wider IR
coverage adds ADD (elementwise sums) and TRSM (triangular solves).
"""

from repro.kernels.flops import kernel_flops, kernel_flops_batch
from repro.kernels.types import (
    KernelCall,
    KernelCallBatch,
    KernelName,
    batch_kernel_calls,
)

__all__ = [
    "KernelCall",
    "KernelCallBatch",
    "KernelName",
    "batch_kernel_calls",
    "kernel_flops",
    "kernel_flops_batch",
]
