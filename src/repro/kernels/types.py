"""Kernel names and call descriptors.

The paper's two expressions decompose into exactly three BLAS-3
kernels: GEMM (general matrix product), SYRK (symmetric rank-k
update) and SYMM (symmetric matrix product).  The compiler's wider IR
coverage adds two more: ADD (GEADD/AXPY-style elementwise matrix add,
the lowering target of sum factors) and TRSM (triangular solve, the
lowering target of triangular-inverse leaves).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Sequence, Tuple

import numpy as np


class KernelName(enum.Enum):
    """BLAS-style kernels used by the algorithm variants."""

    GEMM = "gemm"
    SYRK = "syrk"
    SYMM = "symm"
    ADD = "add"
    TRSM = "trsm"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Number of size dimensions each kernel takes:
#: GEMM(m, n, k): C[m,n] += A[m,k] B[k,n]
#: SYRK(n, k):    C[n,n] += A[n,k] A[n,k]^T   (triangular result)
#: SYMM(m, n):    C[m,n] += S[m,m] B[m,n]     (S symmetric)
#: ADD(m, n):     C[m,n] = A[m,n] + B[m,n]    (elementwise, memory-bound)
#: TRSM(m, n):    X[m,n] = L[m,m]^-1 B[m,n]   (L lower triangular)
KERNEL_ARITY = {
    KernelName.GEMM: 3,
    KernelName.SYRK: 2,
    KernelName.SYMM: 2,
    KernelName.ADD: 2,
    KernelName.TRSM: 2,
}


@dataclass(frozen=True)
class KernelCall:
    """One kernel invocation inside an algorithm.

    ``dims`` follows the per-kernel convention above.  Entries may be
    plain integers or symbolic values (see :mod:`repro.core.symbolic`);
    all derived quantities are polynomial in the dims so both work.

    ``reads_previous`` marks that this call consumes the output of the
    preceding call in the same algorithm — the hook for the simulated
    machine's inter-kernel cache effects.
    """

    kernel: KernelName
    dims: Tuple[Any, ...]
    reads_previous: bool = False
    note: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        expected = KERNEL_ARITY[self.kernel]
        if len(self.dims) != expected:
            raise ValueError(
                f"{self.kernel.value} takes {expected} dims, "
                f"got {self.dims!r}"
            )

    @property
    def flops(self) -> Any:
        from repro.kernels.flops import kernel_flops

        return kernel_flops(self.kernel, self.dims)

    def operand_elements(self) -> Any:
        """Total matrix elements touched (inputs + output)."""
        d = self.dims
        if self.kernel is KernelName.GEMM:
            m, n, k = d
            return m * k + k * n + m * n
        if self.kernel is KernelName.SYRK:
            n, k = d
            return n * k + n * n
        if self.kernel is KernelName.ADD:
            m, n = d
            return m * n + m * n + m * n
        if self.kernel is KernelName.TRSM:
            m, n = d
            return m * m + m * n + m * n
        m, n = d  # SYMM
        return m * m + m * n + m * n

    def output_elements(self) -> Any:
        """Elements of the matrix this call writes (its cache residue)."""
        d = self.dims
        if self.kernel is KernelName.GEMM:
            return d[0] * d[1]
        if self.kernel is KernelName.SYRK:
            return d[0] * d[0]
        return d[0] * d[1]  # SYMM / ADD / TRSM


def _dims_column(value: Any, n: int) -> np.ndarray:
    """One dim of a call batch as an ``(n,)`` int64 column.

    Accepts the per-instance arrays a calls builder produces when fed
    whole instance columns, or a plain int a builder hard-codes.
    """
    column = np.asarray(value, dtype=np.int64)
    if column.ndim == 0:
        return np.full(n, column, dtype=np.int64)
    if column.shape != (n,):
        raise ValueError(
            f"dim column has shape {column.shape}, expected ({n},)"
        )
    return column


@dataclass(frozen=True)
class KernelCallBatch:
    """One kernel-call slot evaluated at ``n`` instances at once.

    ``dims`` is an ``(n, arity)`` int64 matrix: row ``i`` holds the
    dims the slot's :class:`KernelCall` would take at instance ``i``.
    All derived quantities are the scalar polynomials applied
    columnwise, so they agree exactly with the per-instance values.
    """

    kernel: KernelName
    dims: np.ndarray
    reads_previous: bool = False

    def __post_init__(self) -> None:
        expected = KERNEL_ARITY[self.kernel]
        if self.dims.ndim != 2 or self.dims.shape[1] != expected:
            raise ValueError(
                f"{self.kernel.value} batch takes (n, {expected}) dims, "
                f"got shape {self.dims.shape!r}"
            )

    @property
    def n(self) -> int:
        return self.dims.shape[0]

    @classmethod
    def from_call(cls, call: KernelCall, n: int) -> "KernelCallBatch":
        """Stack a call whose dims are columns (or ints) into a batch."""
        return cls(
            kernel=call.kernel,
            dims=np.stack(
                [_dims_column(d, n) for d in call.dims], axis=1
            ),
            reads_previous=call.reads_previous,
        )

    @property
    def flops(self) -> np.ndarray:
        from repro.kernels.flops import kernel_flops_batch

        return kernel_flops_batch(self.kernel, self.dims)

    def operand_elements(self) -> np.ndarray:
        """Per-instance matrix elements touched (inputs + output)."""
        d = self.dims
        if self.kernel is KernelName.GEMM:
            m, n, k = d[:, 0], d[:, 1], d[:, 2]
            return m * k + k * n + m * n
        if self.kernel is KernelName.SYRK:
            n, k = d[:, 0], d[:, 1]
            return n * k + n * n
        if self.kernel is KernelName.ADD:
            m, n = d[:, 0], d[:, 1]
            return m * n + m * n + m * n
        m, n = d[:, 0], d[:, 1]  # SYMM / TRSM
        return m * m + m * n + m * n

    def output_elements(self) -> np.ndarray:
        """Per-instance elements of the matrix this slot writes."""
        d = self.dims
        if self.kernel is KernelName.SYRK:
            return d[:, 0] * d[:, 0]
        return d[:, 0] * d[:, 1]  # GEMM / SYMM / ADD / TRSM


def batch_kernel_calls(
    calls: Sequence[KernelCall], n: int
) -> Tuple[KernelCallBatch, ...]:
    """Batch a call sequence built from whole instance columns."""
    return tuple(KernelCallBatch.from_call(call, n) for call in calls)
