"""Kernel names and call descriptors.

The paper's two expressions decompose into exactly three BLAS-3
kernels: GEMM (general matrix product), SYRK (symmetric rank-k
update) and SYMM (symmetric matrix product).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Tuple


class KernelName(enum.Enum):
    """BLAS-3 kernels used by the paper's algorithm variants."""

    GEMM = "gemm"
    SYRK = "syrk"
    SYMM = "symm"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Number of size dimensions each kernel takes:
#: GEMM(m, n, k): C[m,n] += A[m,k] B[k,n]
#: SYRK(n, k):    C[n,n] += A[n,k] A[n,k]^T   (triangular result)
#: SYMM(m, n):    C[m,n] += S[m,m] B[m,n]     (S symmetric)
KERNEL_ARITY = {KernelName.GEMM: 3, KernelName.SYRK: 2, KernelName.SYMM: 2}


@dataclass(frozen=True)
class KernelCall:
    """One kernel invocation inside an algorithm.

    ``dims`` follows the per-kernel convention above.  Entries may be
    plain integers or symbolic values (see :mod:`repro.core.symbolic`);
    all derived quantities are polynomial in the dims so both work.

    ``reads_previous`` marks that this call consumes the output of the
    preceding call in the same algorithm — the hook for the simulated
    machine's inter-kernel cache effects.
    """

    kernel: KernelName
    dims: Tuple[Any, ...]
    reads_previous: bool = False
    note: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        expected = KERNEL_ARITY[self.kernel]
        if len(self.dims) != expected:
            raise ValueError(
                f"{self.kernel.value} takes {expected} dims, "
                f"got {self.dims!r}"
            )

    @property
    def flops(self) -> Any:
        from repro.kernels.flops import kernel_flops

        return kernel_flops(self.kernel, self.dims)

    def operand_elements(self) -> Any:
        """Total matrix elements touched (inputs + output)."""
        d = self.dims
        if self.kernel is KernelName.GEMM:
            m, n, k = d
            return m * k + k * n + m * n
        if self.kernel is KernelName.SYRK:
            n, k = d
            return n * k + n * n
        m, n = d  # SYMM
        return m * m + m * n + m * n

    def output_elements(self) -> Any:
        """Elements of the matrix this call writes (its cache residue)."""
        d = self.dims
        if self.kernel is KernelName.GEMM:
            return d[0] * d[1]
        if self.kernel is KernelName.SYRK:
            return d[0] * d[0]
        return d[0] * d[1]  # SYMM
