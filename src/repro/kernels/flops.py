"""Exact FLOP formulas for the five kernels.

These are the counts a FLOP-minimising selector (Linnea, Armadillo,
Julia) uses — the paper's discriminant under study.  They are valid
for symbolic dims too (the formulas are polynomials).

Conventions (double precision, multiply+add counted separately):

* ``GEMM(m, n, k)``: ``C = A B`` with ``A in R^{m x k}``,
  ``B in R^{k x n}`` — ``2 m n k`` FLOPs.
* ``SYRK(n, k)``: ``C = A A^T`` with ``A in R^{n x k}``, only the
  lower triangle computed — ``n (n + 1) k`` FLOPs (half of GEMM's
  ``2 n^2 k`` up to the diagonal term).
* ``SYMM(m, n)``: ``C = S B`` with symmetric ``S in R^{m x m}``,
  ``B in R^{m x n}`` — ``2 m^2 n`` FLOPs (symmetry saves memory, not
  FLOPs).
* ``ADD(m, n)``: ``C = A + B`` elementwise — ``m n`` FLOPs.  The
  count is tiny; what makes ADD interesting to the machine model is
  that it is memory-bound, so its *time* per FLOP is large.
* ``TRSM(m, n)``: ``X = L^-1 B`` with lower-triangular
  ``L in R^{m x m}``, ``B in R^{m x n}`` — ``m^2 n`` FLOPs (each of
  the ``n`` columns costs one ``m x m`` triangular substitution).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.kernels.types import KERNEL_ARITY, KernelName


def gemm_flops(m: Any, n: Any, k: Any) -> Any:
    return 2 * m * n * k


def syrk_flops(n: Any, k: Any) -> Any:
    return n * (n + 1) * k


def symm_flops(m: Any, n: Any) -> Any:
    return 2 * m * m * n


def add_flops(m: Any, n: Any) -> Any:
    return m * n


def trsm_flops(m: Any, n: Any) -> Any:
    return m * m * n


_FORMULAS = {
    KernelName.GEMM: gemm_flops,
    KernelName.SYRK: syrk_flops,
    KernelName.SYMM: symm_flops,
    KernelName.ADD: add_flops,
    KernelName.TRSM: trsm_flops,
}


def kernel_flops(kernel: KernelName, dims: Sequence[Any]) -> Any:
    """FLOP count of one kernel call; polynomial in ``dims``."""
    return _FORMULAS[kernel](*dims)


def kernel_flops_batch(kernel: KernelName, dims) -> np.ndarray:
    """FLOP counts over an ``(n, arity)`` integer dims matrix.

    Exact int64 arithmetic: the counts stay below 2**53 for any dims
    the paper box (and far beyond) can produce, so converting to
    float64 downstream is lossless and matches the scalar path
    bit for bit.
    """
    dims = np.asarray(dims, dtype=np.int64)
    arity = KERNEL_ARITY[kernel]
    if dims.ndim != 2 or dims.shape[1] != arity:
        raise ValueError(
            f"{kernel.value} batch takes (n, {arity}) dims, "
            f"got shape {dims.shape!r}"
        )
    return _FORMULAS[kernel](*(dims[:, j] for j in range(arity)))
