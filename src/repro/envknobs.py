"""Hot-loop environment knobs, probed through CPython's raw environ.

``REPRO_NO_SCHEDULER`` gates the plan scheduler the same way
``REPRO_NO_CODEGEN`` gates generated evaluators (that probe lives in
:mod:`repro.expressions.codegen`, predating this module).  Both knobs
are read lazily on every use so flipping them at runtime takes effect
without rebuilding registries — which puts the probe on the study hot
loop.  ``os.environ.get`` costs ~0.8us through the Mapping machinery,
so read CPython's raw environ dict when it is exposed (keys/values are
fsencoded bytes on posix).  Mutations via ``os.environ[...]`` and
``monkeypatch.setenv`` update the same dict.

This module sits below every repro layer (it imports only ``os``), so
:mod:`repro.machine.machine` and :mod:`repro.expressions.scheduler`
can both consult the knob without a layering cycle.
"""

from __future__ import annotations

import os

_ENVIRON_DATA = getattr(os.environ, "_data", None)
_NO_SCHEDULER_KEY = (
    os.fsencode("REPRO_NO_SCHEDULER")
    if isinstance(next(iter(_ENVIRON_DATA), b""), bytes)
    else "REPRO_NO_SCHEDULER"
) if _ENVIRON_DATA is not None else None


def scheduler_enabled() -> bool:
    """Whether the plan scheduler is in use (checked lazily per call)."""
    if _ENVIRON_DATA is not None:
        raw = _ENVIRON_DATA.get(_NO_SCHEDULER_KEY)
        return raw is None or raw in (b"", b"0", "", "0")
    return os.environ.get("REPRO_NO_SCHEDULER", "") in ("", "0")
