"""Regenerates **Figure 11**: efficiencies of the five ``A Aᵀ B``
algorithms along three lines (one per dimension).

Paper expectation (shape): inside the regions, the SYRK-based
Algorithms 1/2 are the cheapest while a GEMM-based algorithm is
fastest; Algorithms 1/2 (and 3/4) tie in FLOPs.
"""

from repro.figures import fig11


def test_fig11_aatb_traces(run_once, fig_config):
    data = run_once(lambda: fig11.generate(fig_config))
    print()
    print(fig11.render(data))

    assert len(data.lines) == 3
    assert {line.dim for line in data.lines} == {0, 1, 2}
    for line in data.lines:
        assert len(line.traces) == 5
        by_name = {t.algorithm_name: t for t in line.traces}
        a1 = by_name["aatb-1:syrk+symm"]
        a2 = by_name["aatb-2:syrk+copy+gemm"]
        # Algorithms 1 and 2 have identical FLOP counts: their
        # "cheapest" flags agree everywhere.
        for p1, p2 in zip(a1.points, a2.points):
            assert p1.is_cheapest == p2.is_cheapest
        # At anomalous positions the cheapest set excludes the fastest.
        for i, pos in enumerate(line.positions):
            if pos in line.anomalous_positions:
                cheapest = {
                    t.algorithm_name for t in line.traces if t.points[i].is_cheapest
                }
                fastest = {
                    t.algorithm_name for t in line.traces if t.points[i].is_fastest
                }
                assert not (cheapest & fastest)
