"""Regenerates **Figure 8**: efficiencies of the six chain algorithms
along two lines through anomalous regions.

Paper expectation (shape): per-algorithm efficiency varies along the
line; inside the region the cheapest and fastest sets are disjoint;
transitions at boundaries are either abrupt or gradual.
"""

from repro.figures import fig8


def test_fig8_chain_traces(run_once, fig_config):
    data = run_once(lambda: fig8.generate(fig_config))
    print()
    print(fig8.render(data))

    assert len(data.lines) == 2
    for line in data.lines:
        assert len(line.traces) == 6
        # The originating anomaly position must be anomalous.
        assert line.anomalous_positions, "line must cross its region"
        for trace in line.traces:
            assert all(0 <= p.total_efficiency <= 1 for p in trace.points)
        # At anomalous positions, no algorithm is both cheapest and
        # fastest (the sets are disjoint by definition).
        for i, pos in enumerate(line.positions):
            if pos in line.anomalous_positions:
                assert not any(
                    t.points[i].status == "both" for t in line.traces
                )
