"""Plan scheduler vs the unscheduled paths on the measurement hot loop.

Two workloads, one aggregate gate:

* **Measurement fusion** — ``MachineModel.measure_algorithm_batch``
  over every algorithm of five registered families at small
  (25-instance) batches.  The scheduler's fused path
  (:meth:`repro.machine.machine.MachineModel._algorithm_batch_fused`)
  collapses the per-kernel noise/median passes of a multi-kernel
  algorithm into one stacked pass; ``REPRO_NO_SCHEDULER=1`` is the
  literal legacy per-call loop.  Results are bit-equal by construction
  and asserted so below.

* **Fused ADD execution** — an 8-leaf elementwise sum lowered by
  :func:`repro.expressions.compiler.compile_add_plans` and executed on
  real 600x500 operands.  The scheduled executor accumulates in place
  through dying buffers (one allocation for the whole chain) instead
  of allocating per ADD.

The gate is the *aggregate* speedup (summed unscheduled time over
summed scheduled time) at >= 1.3x; measured headroom is ~1.5x for the
measurement workload and ~1.9x for the ADD chain.
"""

import os
import random
import time

import numpy as np

from repro.core.searchspace import paper_box
from repro.expressions.compiler import compile_add_plans
from repro.expressions.codegen import compiled_plan
from repro.expressions.ir import AddExpr, Leaf
from repro.expressions.registry import get_expression
from repro.machine.presets import paper_machine

N_INSTANCES = 25
MIN_SPEEDUP = 1.3
#: Best-of-``REPEATS`` timing of ``LOOPS`` back-to-back runs, the same
#: estimator bench_codegen.py uses.
REPEATS = 7
LOOPS = 10

FAMILIES = ("aatb", "chain4", "gram3", "sum3", "solve3")

ADD_LEAVES = 8
ADD_SHAPE = (600, 500)


def _instances_matrix(expression, seed):
    rng = random.Random(seed)
    box = paper_box(expression.n_dims)
    return np.asarray(
        [box.sample(rng) for _ in range(N_INSTANCES)], dtype=np.int64
    )


def _measure_all(machine, cases):
    return [
        machine.measure_algorithm_batch(batches, context=name)
        for name, batches in cases
    ]


def _without_scheduler(fn, *args):
    """Run ``fn`` under ``REPRO_NO_SCHEDULER=1``, restoring the env."""
    saved = os.environ.get("REPRO_NO_SCHEDULER")
    os.environ["REPRO_NO_SCHEDULER"] = "1"
    try:
        return fn(*args)
    finally:
        if saved is None:
            del os.environ["REPRO_NO_SCHEDULER"]
        else:
            os.environ["REPRO_NO_SCHEDULER"] = saved


def _best_of(fn, *args):
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(LOOPS):
            result = fn(*args)
        best = min(best, (time.perf_counter() - t0) / LOOPS)
    return best, result


def _add_chain_case(seed):
    """An 8-leaf ADD chain plan plus real F-order operands."""
    leaves = tuple(
        Leaf(operand=i, rows=0, cols=1, label=f"M{i}")
        for i in range(ADD_LEAVES)
    )
    (plan,) = compile_add_plans("bench_addchain", AddExpr(leaves))
    rng = np.random.default_rng(seed)
    operands = [
        np.asfortranarray(rng.standard_normal(ADD_SHAPE))
        for _ in range(ADD_LEAVES)
    ]
    return plan, operands


def test_scheduler_measurement_and_fusion_speedup(run_once, fig_config):
    family_cases = []
    for family in FAMILIES:
        expression = get_expression(family)
        arr = _instances_matrix(expression, fig_config.seed + 47)
        cases = [
            (a.name, a.kernel_call_batches(arr))
            for a in expression.algorithms()
        ]
        family_cases.append((family, paper_machine(seed=fig_config.seed), cases))

    plan, operands = _add_chain_case(fig_config.seed + 48)
    scheduled_exec = compiled_plan(plan, scheduled=True).execute
    plain_exec = compiled_plan(plan, scheduled=False).execute

    # Warm both paths (codegen compiles lazily; noise tables fill on
    # first use) before any timing.
    for _, machine, cases in family_cases:
        _measure_all(machine, cases)
        _without_scheduler(_measure_all, machine, cases)
    scheduled_exec(operands)
    plain_exec(operands)

    def run_all_scheduled():
        return [
            _measure_all(machine, cases)
            for _, machine, cases in family_cases
        ] + [scheduled_exec(operands)]

    run_once(run_all_scheduled)

    print()
    total_legacy = total_scheduled = 0.0
    for family, machine, cases in family_cases:
        legacy_s, times_l = _best_of(
            _without_scheduler, _measure_all, machine, cases
        )
        scheduled_s, times_s = _best_of(_measure_all, machine, cases)
        total_legacy += legacy_s
        total_scheduled += scheduled_s
        print(
            f"{family:<10} legacy {legacy_s * 1e3:7.2f}ms   "
            f"fused {scheduled_s * 1e3:6.2f}ms   "
            f"speedup {legacy_s / scheduled_s:5.2f}x"
        )
        # The fused measurement pass is bit-equal to the per-call loop.
        for got, want in zip(times_s, times_l):
            assert np.array_equal(got, want)

    plain_s, result_plain = _best_of(plain_exec, operands)
    scheduled_s, result_sched = _best_of(scheduled_exec, operands)
    total_legacy += plain_s
    total_scheduled += scheduled_s
    print(
        f"{'addchain8':<10} legacy {plain_s * 1e3:7.2f}ms   "
        f"fused {scheduled_s * 1e3:6.2f}ms   "
        f"speedup {plain_s / scheduled_s:5.2f}x"
    )
    assert np.array_equal(result_sched, result_plain)

    total = total_legacy / total_scheduled
    print(
        f"{'TOTAL':<10} legacy {total_legacy * 1e3:7.2f}ms   "
        f"fused {total_scheduled * 1e3:6.2f}ms   speedup {total:5.2f}x"
    )
    assert total >= MIN_SPEEDUP
