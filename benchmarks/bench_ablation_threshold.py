"""Ablation: time-score threshold sweep.

The paper classifies anomalies above a threshold (10% in Experiment 1,
5% in Experiments 2–3) to exclude insignificant distinctions.  This
bench sweeps the threshold and reports the measured abundance curve —
abundance must be monotonically non-increasing in the threshold.
"""

import random

from repro.backends.simulated import SimulatedBackend
from repro.core.classify import classify_batch, evaluate_instances
from repro.core.searchspace import paper_box
from repro.expressions.registry import get_expression
from repro.machine.presets import paper_machine

THRESHOLDS = (0.0, 0.02, 0.05, 0.10, 0.20, 0.30)


def test_abundance_vs_threshold(run_once, fig_config):
    expression = get_expression("aatb")
    backend = SimulatedBackend(paper_machine(seed=fig_config.seed))
    box = paper_box(3)
    n = 300 if fig_config.scale == "quick" else 3000

    def run():
        rng = random.Random(fig_config.seed)
        algorithms = expression.algorithms()
        instances = [box.sample(rng) for _ in range(n)]
        verdicts = classify_batch(
            evaluate_instances(backend, algorithms, instances),
            threshold=0.0,
        )
        scores = [verdict.time_score for verdict in verdicts]
        return {
            thr: sum(1 for s in scores if s > thr) / len(scores)
            for thr in THRESHOLDS
        }

    curve = run_once(run)
    print()
    print("threshold  abundance")
    for thr, abundance in curve.items():
        print(f"{thr:>9.2f}  {abundance:.3%}")

    values = [curve[t] for t in THRESHOLDS]
    assert values == sorted(values, reverse=True), "must be non-increasing"
    # At the paper's Experiment-1 threshold the abundance is in the
    # calibrated band (~10%).
    assert 0.03 < curve[0.10] < 0.20
    # A 0% threshold counts every strict disjointness, which is common.
    assert curve[0.0] > curve[0.10]
