"""Regenerates **Table 1**: confusion matrix for predicting chain
anomalies from isolated kernel benchmarks (Experiment 3).

Paper values: recall ≈92%, precision ≈96%.  Shape requirement: most
anomalies predictable, predictions rarely false.
"""

from repro.figures import table1


def test_table1_chain_confusion(run_once, fig_config):
    matrix = run_once(lambda: table1.generate(fig_config))
    print()
    print(table1.render(matrix))

    assert matrix.total > 0
    assert matrix.recall > 0.80
    assert matrix.precision > 0.90
    # Consistency of the 2×2 table.
    assert matrix.actual_yes + matrix.actual_no == matrix.total
    assert matrix.predicted_yes + matrix.predicted_no == matrix.total
