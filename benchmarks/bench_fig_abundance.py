"""Regenerates the **anomaly abundance vs search volume** figure
(post-paper artefact) for one hand-coded and one compiler-generated
family, across every named exploration box.

Expectation (shape): both SYRK-rewrite families are abundant inside
the paper box (several percent) and the rate *falls* as the sampled
volume grows — the anomalous regions sit at small dims, so a larger
box dilutes them without removing them.

This bench doubles as the CI regression gate for compiler-generated
plans: ``gram3`` exists only through the expressions IR → compiler
pipeline, so a regression in plan generation breaks this artefact.
"""

from repro.figures import abundance

EXPRESSIONS = ("aatb", "gram3")


def test_fig_abundance_vs_volume(run_once, fig_config):
    data = run_once(
        lambda: abundance.generate(fig_config, expressions=EXPRESSIONS)
    )
    print()
    print(abundance.render(data))

    assert data.boxes == abundance.BOX_ORDER
    assert len(data.points) == len(EXPRESSIONS) * len(abundance.BOX_ORDER)
    for name in EXPRESSIONS:
        points = data.for_expression(name)
        # Abundant in the paper box (the SYRK small-dim collapse) ...
        assert points[0].abundance > 0.04
        # ... still present, but diluted, in the largest volume.
        assert points[-1].n_anomalies > 0
        assert points[-1].abundance < points[0].abundance
