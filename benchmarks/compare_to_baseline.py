#!/usr/bin/env python
"""Gate benchmark regressions against a committed baseline.

Compares a fresh pytest-benchmark JSON export against the baseline
checked into the repository (``BENCH_seed.json``) and fails when any
benchmark's mean regeneration time regressed by more than the allowed
ratio.  Benchmarks present only in the current run are reported but do
not fail the gate (new artefacts get a baseline on the next refresh);
benchmarks that disappeared from the current run fail it, so a stale
baseline cannot silently pass.

Usage::

    python benchmarks/compare_to_baseline.py current.json BENCH_seed.json \
        --max-ratio 2.0

Refresh the baseline by re-running the suite with ``--benchmark-json
BENCH_seed.json`` on a quiet machine and committing the result.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def load_means(path: str) -> Dict[str, float]:
    with open(path) as handle:
        data = json.load(handle)
    return {
        bench["fullname"]: float(bench["stats"]["mean"])
        for bench in data["benchmarks"]
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh --benchmark-json export")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when current mean exceeds baseline mean by this factor",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.25,
        help=(
            "ignore ratios when the current mean is below this — "
            "study-cache hits and sub-second regenerations are "
            "dominated by harness noise and runner-hardware variance, "
            "so only regressions that push a benchmark above this "
            "floor can fail the gate"
        ),
    )
    parser.add_argument(
        "--speedup-filter",
        default="discriminant",
        help=(
            "after the gate table, print a per-bench speedup summary "
            "(baseline/current) for benchmarks whose name contains "
            "this substring; default highlights the discriminant "
            "ablations (empty string disables the section)"
        ),
    )
    args = parser.parse_args(argv)

    current = load_means(args.current)
    baseline = load_means(args.baseline)

    regressions = []
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))

    print(f"{'benchmark':<60} {'base (s)':>10} {'now (s)':>10} {'ratio':>7}")
    for name in sorted(set(baseline) & set(current)):
        ratio = current[name] / baseline[name] if baseline[name] else float("inf")
        regressed = (
            current[name] > args.min_seconds and ratio > args.max_ratio
        )
        print(
            f"{name:<60} {baseline[name]:>10.4f} {current[name]:>10.4f} "
            f"{ratio:>6.2f}x{'  REGRESSED' if regressed else ''}"
        )
        if regressed:
            regressions.append((name, ratio))

    for name in new:
        print(f"{name:<60} {'—':>10} {current[name]:>10.4f}   (no baseline)")

    if args.speedup_filter:
        highlighted = sorted(
            name for name in current if args.speedup_filter in name
        )
        if highlighted:
            print(f"\nSpeedups for *{args.speedup_filter}* benchmarks:")
            for name in highlighted:
                if name in baseline and current[name]:
                    speedup = baseline[name] / current[name]
                    trend = "faster" if speedup >= 1.0 else "slower"
                    print(
                        f"  {name:<58} {speedup:>6.2f}x {trend} "
                        f"({baseline[name]:.4f}s -> {current[name]:.4f}s)"
                    )
                else:
                    print(
                        f"  {name:<58} {current[name]:>9.4f}s "
                        "(no baseline)"
                    )

    status = 0
    if missing:
        print(
            f"\nERROR: {len(missing)} baseline benchmark(s) missing from "
            "the current run (stale baseline?):"
        )
        for name in missing:
            print(f"  {name}")
        status = 1
    if regressions:
        print(
            f"\nERROR: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.max_ratio:.1f}x:"
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        status = 1
    if status == 0:
        print(
            f"\nOK: {len(current)} benchmark(s) within {args.max_ratio:.1f}x "
            "of baseline"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
