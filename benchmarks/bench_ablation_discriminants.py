"""Ablation: algorithm-selection discriminants head-to-head.

The paper's conclusion proposes combining FLOP counts with kernel
performance profiles (§5).  This bench compares, on identical random
instances:

* min-FLOPs (what Linnea/Armadillo/Julia do — the paper's subject),
* pure profiled-time selection,
* the FLOPs×profile hybrid (the paper's conjectured combination),
* benchmark-sum selection (Experiment 3's predictor as an oracle-ish
  upper bound).

Expected shape: the hybrid reduces the min-FLOPs miss rate on
``A Aᵀ B`` (where the paper found FLOPs undependable) without
requiring per-instance measurement.
"""

from repro.analysis.selection import selection_quality
from repro.backends.simulated import SimulatedBackend
from repro.core.discriminants import (
    BenchmarkDiscriminant,
    FlopsProfileHybrid,
    MinFlopsDiscriminant,
    ProfiledTimeDiscriminant,
)
from repro.core.searchspace import paper_box
from repro.expressions.registry import get_expression
from repro.kernels.types import KernelName
from repro.machine.presets import paper_machine
from repro.profiles.benchmark import build_all_profiles


def test_discriminant_selection_quality(run_once, fig_config):
    expression = get_expression("aatb")
    backend = SimulatedBackend(paper_machine(seed=fig_config.seed))
    box = paper_box(3)
    n = 120 if fig_config.scale == "quick" else 1000

    def run():
        axes2 = ((24, 64, 160, 400, 800, 1400),) * 2
        axes3 = ((24, 64, 160, 400, 800, 1400),) * 3
        profiles = build_all_profiles(
            backend,
            axes_by_kernel={
                KernelName.GEMM: axes3,
                KernelName.SYRK: axes2,
                KernelName.SYMM: axes2,
            },
        )
        discriminants = [
            MinFlopsDiscriminant(),
            ProfiledTimeDiscriminant(profiles),
            FlopsProfileHybrid(profiles, margin=0.5),
            BenchmarkDiscriminant(backend),
        ]
        return [
            selection_quality(
                d,
                backend,
                expression,
                box,
                n_instances=n,
                threshold=0.10,
                seed=fig_config.seed + 99,
            )
            for d in discriminants
        ]

    results = run_once(run)
    print()
    for quality in results:
        print(quality.summary())

    by_name = {q.discriminant: q for q in results}
    flops = by_name["min-flops"]
    hybrid = next(q for n_, q in by_name.items() if n_.startswith("flops+profile"))
    bench = by_name["benchmark-sum"]

    # min-FLOPs misses on aatb are the paper's headline (≈10%).
    assert flops.miss_rate > 0.03
    # The conjectured hybrid fixes most of them.
    assert hybrid.miss_rate < flops.miss_rate
    # The benchmark-sum selector is at least as good as the hybrid.
    assert bench.miss_rate <= hybrid.miss_rate + 0.02
