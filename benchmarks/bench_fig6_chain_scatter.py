"""Regenerates **Figure 6**: time score vs FLOP score scatter for
matrix-chain anomalies found by random search (Experiment 1).

Paper expectation (shape): anomalies rare (≈0.4% at full scale), most
below 10% FLOP score / 20% time score, a tail reaching ≈35% time score.
"""

from repro.figures import fig6


def test_fig6_chain_scatter(run_once, fig_config):
    data = run_once(lambda: fig6.generate(fig_config))
    print()
    print(fig6.render(data))

    assert data.expression == "chain4"
    # Chain anomalies must be rare.
    assert data.abundance < 0.02
    # Every reported anomaly clears the 10% time-score threshold.
    assert all(ts > 0.10 for ts in data.time_scores)
    assert all(0 <= fs < 1 for fs in data.flop_scores)
