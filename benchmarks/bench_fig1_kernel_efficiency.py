"""Regenerates **Figure 1**: GEMM/SYRK/SYMM efficiency at square sizes.

Paper expectation (shape): all kernels ramp from near zero to a high
plateau; GEMM sits on top at moderate sizes; differences are small but
noticeable at large sizes.
"""

from repro.figures import fig1
from repro.kernels.types import KernelName


def test_fig1_kernel_efficiency(run_once, fig_config):
    data = run_once(lambda: fig1.generate(fig_config))
    print()
    print(fig1.render(data))

    # Shape assertions mirroring the paper's Figure 1.
    for kernel in (KernelName.GEMM, KernelName.SYRK, KernelName.SYMM):
        series = data.series[kernel]
        assert series[-1][1] > 0.7, f"{kernel} should plateau high"
        assert series[0][1] < 0.2, f"{kernel} should start low"
    assert data.efficiency_at(KernelName.GEMM, 500) > data.efficiency_at(
        KernelName.SYRK, 500
    )
