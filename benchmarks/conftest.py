"""Benchmark harness configuration.

Every paper artefact (Figures 1, 6–11; Tables 1, 2) has one benchmark
that regenerates it and reports the wall time of the regeneration.
Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(``quick`` default, ``full`` for the paper's parameters — minutes) and
the seed by ``REPRO_BENCH_SEED`` (integer, default 0).  Invalid values
abort the run with a usage error instead of silently falling back or
surfacing a raw traceback.

Studies are shared through :func:`repro.figures.common.study_for`'s
process-level cache, so the suite runs each experiment pipeline once
per expression; set ``REPRO_CACHE_DIR`` to also share them *across*
benchmark processes through the on-disk store — warmed most cheaply by
the parallel runner (``python -m repro.runner``).  The store backend
comes from ``REPRO_CACHE_STORE`` (``json`` default, ``sqlite`` for the
shared-database layout); an invalid value aborts the run with a usage
error before any pipeline starts.
"""

from __future__ import annotations

import os

import pytest

from repro.figures.cache import store_kind_from_env
from repro.figures.common import FigureConfig

_SCALES = ("quick", "full")


def parse_bench_scale(raw: str) -> str:
    value = raw.strip().lower()
    if value not in _SCALES:
        raise pytest.UsageError(
            f"REPRO_BENCH_SCALE must be one of {'/'.join(_SCALES)}, "
            f"got {raw!r}"
        )
    return value


def parse_bench_seed(raw: str) -> int:
    try:
        return int(raw.strip())
    except ValueError:
        raise pytest.UsageError(
            f"REPRO_BENCH_SEED must be an integer, got {raw!r}"
        ) from None


def parse_cache_store() -> str:
    """Validate ``REPRO_CACHE_STORE`` before any study pipeline runs."""
    try:
        return store_kind_from_env()
    except ValueError as exc:
        raise pytest.UsageError(str(exc)) from None


def parse_no_scheduler() -> str:
    """Validate ``REPRO_NO_SCHEDULER`` before any study pipeline runs.

    The knob is tri-state by design (unset/``0`` = scheduler on,
    ``1`` = off); anything else — ``true``, ``yes``, a typo — would be
    silently treated as "on" by the lazy probe, which is exactly the
    wrong surprise during an ablation run.
    """
    raw = os.environ.get("REPRO_NO_SCHEDULER")
    if raw is None or raw in ("", "0", "1"):
        return raw or ""
    raise pytest.UsageError(
        f"REPRO_NO_SCHEDULER must be unset, '', '0' or '1', got {raw!r}"
    )


@pytest.fixture(scope="session")
def fig_config() -> FigureConfig:
    scale = parse_bench_scale(os.environ.get("REPRO_BENCH_SCALE", "quick"))
    seed = parse_bench_seed(os.environ.get("REPRO_BENCH_SEED", "0"))
    parse_cache_store()
    parse_no_scheduler()
    return FigureConfig(scale=scale, seed=seed)


@pytest.fixture
def run_once(benchmark):
    """Run a regeneration exactly once under pytest-benchmark timing.

    Artefact regenerations take seconds to minutes; statistical
    repetition belongs to the *measurements inside* the experiments
    (the paper's median-of-k), not to the harness.
    """

    def _run(fn):
        return benchmark.pedantic(fn, iterations=1, rounds=1, warmup_rounds=0)

    return _run
