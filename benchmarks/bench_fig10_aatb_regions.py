"""Regenerates **Figure 10**: region thickness per dimension for
``A Aᵀ B`` (Experiment 2).

Paper expectation (shape): regions significantly thinner in ``d0``
than in ``d1``/``d2``; some regions span (nearly) the whole explored
range in the thick dimensions.
"""

from repro.figures import fig10


def test_fig10_aatb_regions(run_once, fig_config):
    data = run_once(lambda: fig10.generate(fig_config))
    print()
    print(fig10.render(data))

    assert data.n_dims == 3
    d0, d1, d2 = data.distributions
    assert d0.thicknesses and d1.thicknesses and d2.thicknesses
    # The paper's headline asymmetry.
    assert d0.median < d1.median
    assert d0.median < d2.median
    # Thick dimensions approach the full span (1181 at full scale).
    assert max(d1.max, d2.max) > 600
