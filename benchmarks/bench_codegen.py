"""Plan codegen vs the interpreted batch paths on the study hot loop.

The study hot loop spends its non-machine time in two places: batch
FLOP evaluation (every ``evaluate_instances`` / ``batch_flops`` call)
and :class:`KernelCallBatch` construction (every backend batch
method).  The generated per-plan evaluators
(:mod:`repro.expressions.codegen`) replace both with ``compile()``d
closed-form column arithmetic — this bench pins the speedup at
≥ 3× aggregated over the registered families at 1000-instance
batches, and the contract that the generated results equal the
interpreted ones exactly.

The interpreter side below is the literal pre-codegen path: whole
instance columns through each algorithm's FLOP polynomial plus
``batch_kernel_calls`` over the interpreted call sequence — the same
code ``REPRO_NO_CODEGEN=1`` falls back to.
"""

import random
import time

import numpy as np

from repro.core.classify import batch_flops
from repro.core.searchspace import paper_box
from repro.expressions.registry import get_expression
from repro.kernels.types import batch_kernel_calls

N_INSTANCES = 1000
MIN_SPEEDUP = 3.0
#: Each measurement times ``LOOPS`` back-to-back evaluations (the
#: per-call cost is sub-millisecond, so a single call is dominated by
#: timer and allocator noise); the best of ``REPEATS`` measurements
#: is the per-call estimate.
REPEATS = 7
LOOPS = 10

FAMILIES = (
    "aatb", "chain4", "gram3", "tri4", "sum3", "addchain3", "solve3",
)


def _instances_matrix(expression, seed):
    rng = random.Random(seed)
    box = paper_box(expression.n_dims)
    return np.asarray(
        [box.sample(rng) for _ in range(N_INSTANCES)], dtype=np.int64
    )


def _interpreted(algorithms, arr):
    """The pre-codegen hot loop: polynomial columns + batched calls."""
    columns = tuple(arr[:, i] for i in range(arr.shape[1]))
    flops = np.stack(
        [np.asarray(a.flops(columns), dtype=np.int64) for a in algorithms],
        axis=1,
    )
    calls = [
        batch_kernel_calls(a.kernel_calls(columns), arr.shape[0])
        for a in algorithms
    ]
    return flops, calls


def _generated(algorithms, arr):
    """The codegen hot loop: shared flops fns + compiled call builders."""
    flops = batch_flops(algorithms, arr)
    calls = [a.kernel_call_batches(arr) for a in algorithms]
    return flops, calls


def _best_of(fn, *args):
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(LOOPS):
            result = fn(*args)
        best = min(best, (time.perf_counter() - t0) / LOOPS)
    return best, result


def test_codegen_batch_evaluators_speedup(run_once, fig_config):
    cases = []
    for family in FAMILIES:
        expression = get_expression(family)
        algorithms = expression.algorithms()
        arr = _instances_matrix(expression, fig_config.seed + 31)
        # Warm both paths (codegen compiles lazily on first use).
        _generated(algorithms, arr)
        _interpreted(algorithms, arr)
        cases.append((family, algorithms, arr))

    def run_all_generated():
        return [_generated(algorithms, arr) for _, algorithms, arr in cases]

    run_once(run_all_generated)

    print()
    total_interpreted = total_generated = 0.0
    for family, algorithms, arr in cases:
        interpreted_s, (flops_i, calls_i) = _best_of(
            _interpreted, algorithms, arr
        )
        generated_s, (flops_g, calls_g) = _best_of(
            _generated, algorithms, arr
        )
        total_interpreted += interpreted_s
        total_generated += generated_s
        speedup = interpreted_s / generated_s
        print(
            f"{family:<10} interpreted {interpreted_s * 1e3:7.2f}ms   "
            f"codegen {generated_s * 1e3:6.2f}ms   speedup {speedup:5.2f}x"
        )
        # Exact agreement: same FLOP matrix, same call batches.
        assert flops_g.tolist() == flops_i.tolist()
        for batches_g, batches_i in zip(calls_g, calls_i):
            for got, want in zip(batches_g, batches_i):
                assert got.kernel is want.kernel
                assert got.reads_previous == want.reads_previous
                assert np.array_equal(got.dims, want.dims)

    total = total_interpreted / total_generated
    print(
        f"{'TOTAL':<10} interpreted {total_interpreted * 1e3:7.2f}ms   "
        f"codegen {total_generated * 1e3:6.2f}ms   speedup {total:5.2f}x"
    )
    assert total >= MIN_SPEEDUP
