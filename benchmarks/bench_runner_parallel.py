"""The parallel multi-study runner vs a sequential run of the matrix.

Regenerates the cold-cache study matrix twice — ``--jobs 1`` and
``--jobs 4`` — and asserts the two stores hold **byte-identical**
payloads (the runner's core promise: process layout never leaks into
results).  On machines with ≥ 4 cores the parallel run must also be
≥ 2.5× faster wall-clock; on smaller machines the speedup is reported
but not enforced (there is nothing to parallelize onto).
"""

import os

from repro.figures.cache import JsonDirectoryStore, StudyKey
from repro.runner import StudyRunner, study_matrix

MIN_PARALLEL_SPEEDUP = 2.5
PARALLEL_JOBS = 4


def _matrix(fig_config):
    # Enough independent studies to keep 4 workers busy; full-scale
    # studies are minutes each, so the matrix shrinks with scale.
    n_seeds = 8 if fig_config.scale == "quick" else 2
    return study_matrix(
        scales=(fig_config.scale,),
        seeds=tuple(fig_config.seed + i for i in range(n_seeds)),
    )


def test_parallel_runner_matches_sequential_and_scales(
    run_once, fig_config, tmp_path
):
    keys = _matrix(fig_config)

    sequential = StudyRunner(
        cache_dir=tmp_path / "seq", store="json", jobs=1
    )
    seq_report = sequential.run(keys)
    assert seq_report.ok
    assert seq_report.count("computed") == len(keys)

    parallel = StudyRunner(
        cache_dir=tmp_path / "par", store="json", jobs=PARALLEL_JOBS
    )
    par_report = run_once(lambda: parallel.run(keys))
    assert par_report.ok
    assert par_report.count("computed") == len(keys)

    speedup = seq_report.wall_seconds / par_report.wall_seconds
    print()
    print(f"sequential: {seq_report.summary()}")
    print(f"parallel:   {par_report.summary()}")
    print(
        f"speedup {speedup:.2f}x over {len(keys)} studies "
        f"({os.cpu_count()} cpus)"
    )

    # Byte-identical payloads, whatever the partitioning.
    seq_store = JsonDirectoryStore(tmp_path / "seq")
    par_store = JsonDirectoryStore(tmp_path / "par")
    for key in keys:
        assert (
            seq_store.path_for(key).read_bytes()
            == par_store.path_for(key).read_bytes()
        )

    cpus = os.cpu_count() or 1
    if cpus >= PARALLEL_JOBS:
        assert speedup >= MIN_PARALLEL_SPEEDUP
