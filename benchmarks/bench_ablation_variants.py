"""Ablation: kernel variant dispatch on/off.

The paper identifies two boundary-transition types: abrupt (internal
kernel-variant changes) and gradual.  Removing variant dispatch from
the model must remove the abrupt jumps from kernel efficiency scans
while keeping the gradual ramps.
"""

from repro.backends.simulated import SimulatedBackend
from repro.kernels.types import KernelName
from repro.machine.presets import no_variants_machine, paper_machine
from repro.profiles.abrupt import find_abrupt_changes, scan_efficiency


def test_variants_create_abrupt_transitions(run_once, fig_config):
    # Start at 200: below that, the thread-balance staircase (a real,
    # dispatch-independent mechanism) produces jumps of its own.
    positions = range(200, 1100, 10)

    def run():
        default = SimulatedBackend(paper_machine(seed=fig_config.seed))
        smooth = SimulatedBackend(no_variants_machine(seed=fig_config.seed))
        results = {}
        for label, backend in (("default", default), ("no-variants", smooth)):
            changes = []
            for kernel, base in (
                (KernelName.SYRK, (0, 500)),
                (KernelName.GEMM, (0, 500, 500)),
                (KernelName.SYMM, (0, 500)),
            ):
                series = scan_efficiency(
                    backend, kernel, base, axis=0, positions=positions
                )
                changes += find_abrupt_changes(
                    series, kernel=kernel, axis=0, threshold=0.08
                )
            results[label] = changes
        return results

    results = run_once(run)
    print()
    for label, changes in results.items():
        print(f"{label}: {len(changes)} abrupt changes")
        for change in changes:
            print(
                f"  {change.kernel.value} axis {change.axis} at "
                f"{change.position}: {change.before:.3f} -> {change.after:.3f}"
            )

    assert len(results["default"]) >= 2, "dispatch must create abrupt jumps"
    assert len(results["no-variants"]) == 0, "no dispatch → only gradual"
