"""Regenerates **Figure 7**: region thickness distribution per
dimension for the matrix chain (Experiment 2).

Paper expectation (shape): anomalies cluster into contiguous regions;
thickness varies by dimension and can approach the full 20–1200 span.
"""

from repro.figures import fig7


def test_fig7_chain_regions(run_once, fig_config):
    data = run_once(lambda: fig7.generate(fig_config))
    print()
    print(fig7.render(data))

    assert data.n_dims == 5
    all_thicknesses = [
        t for dist in data.distributions for t in dist.thicknesses
    ]
    assert all_thicknesses, "region traversal must produce lines"
    assert all(t >= 0 for t in all_thicknesses)
    # Clustering: at least one region is thick (>100 units).
    assert max(all_thicknesses) > 100
