"""Regenerates **Table 2**: confusion matrix for predicting ``A Aᵀ B``
anomalies from isolated kernel benchmarks (Experiment 3).

Paper values: recall ≈75%, precision ≈98.5% — lower recall than the
chain (inter-kernel cache effects matter more), precision still near 1.
"""

from repro.figures import table1, table2


def test_table2_aatb_confusion(run_once, fig_config):
    matrix = run_once(lambda: table2.generate(fig_config))
    print()
    print(table2.render(matrix))

    assert matrix.total > 0
    assert matrix.recall > 0.60
    assert matrix.precision > 0.90
    # Paper ordering: aatb is harder to predict than the chain.
    chain_matrix = table1.generate(fig_config)
    assert matrix.recall <= chain_matrix.recall + 0.02
