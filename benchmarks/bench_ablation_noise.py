"""Ablation: measurement-noise level vs false anomaly rate.

The paper's hole-tolerance rule (§3.4.2) exists because noise can flip
borderline classifications.  This bench quantifies that: on a
noise-free machine the anomaly set at a given threshold is exact;
increasing the noise level perturbs classifications near the
threshold, measured as the symmetric difference against ground truth.
"""

import random

from repro.backends.simulated import SimulatedBackend
from repro.core.classify import classify_batch, evaluate_instances
from repro.core.searchspace import paper_box
from repro.expressions.registry import get_expression
from repro.machine.machine import MachineModel
from repro.machine.noise import NoiseModel
from repro.machine.spec import xeon_silver_4210_like

SIGMAS = (0.0, 0.01, 0.03, 0.08)


def _backend(sigma, seed):
    return SimulatedBackend(
        MachineModel(
            xeon_silver_4210_like(),
            noise=NoiseModel(sigma=sigma, spike_probability=0.0, seed=seed),
            reps=5,
        )
    )


def test_noise_flips_borderline_classifications(run_once, fig_config):
    expression = get_expression("aatb")
    box = paper_box(3)
    n = 200 if fig_config.scale == "quick" else 2000
    algorithms = expression.algorithms()

    def classify_all(backend, instances):
        return [
            verdict.is_anomaly
            for verdict in classify_batch(
                evaluate_instances(backend, algorithms, instances),
                threshold=0.10,
            )
        ]

    def run():
        rng = random.Random(fig_config.seed)
        instances = [box.sample(rng) for _ in range(n)]
        truth = classify_all(_backend(0.0, fig_config.seed), instances)
        flips = {}
        for sigma in SIGMAS:
            noisy = classify_all(_backend(sigma, fig_config.seed + 1), instances)
            flips[sigma] = sum(1 for a, b in zip(truth, noisy) if a != b) / n
        return flips

    flips = run_once(run)
    print()
    print("sigma  flip rate vs noise-free ground truth")
    for sigma, rate in flips.items():
        print(f"{sigma:>5.2f}  {rate:.2%}")

    assert flips[0.0] == 0.0, "noise-free must reproduce ground truth"
    # More noise cannot give fewer flips by an order of magnitude; the
    # largest sigma must flip the most (allowing small-sample jitter).
    assert flips[0.08] >= flips[0.01]
    assert flips[0.08] > 0.0
