"""Ablation: inter-kernel cache effects on/off.

The paper attributes the unpredicted anomalies (Experiment 3's false
negatives) to inter-kernel cache effects.  This bench verifies the
mechanism inside the model: with cache effects disabled, benchmark
prediction becomes near-perfect; enabling them introduces the misses.
"""

from repro.analysis.confusion import confusion_from_prediction
from repro.backends.simulated import SimulatedBackend
from repro.core.searchspace import paper_box
from repro.experiments.prediction import predict_from_benchmarks
from repro.experiments.random_search import random_search
from repro.experiments.regions import explore_regions
from repro.expressions.registry import get_expression
from repro.machine.presets import no_cache_machine, paper_machine


def _study(backend, expression, *, n_anomalies, seed):
    box = paper_box(expression.n_dims)
    search = random_search(
        backend,
        expression,
        box,
        threshold=0.10,
        target_anomalies=n_anomalies,
        max_samples=30_000,
        seed=seed,
    )
    regions = explore_regions(
        backend,
        expression,
        [a.instance for a in search.anomalies],
        box,
        threshold=0.05,
        dims=(0, 1),
    )
    prediction = predict_from_benchmarks(backend, expression, regions)
    return confusion_from_prediction(prediction)


def test_cache_effects_drive_prediction_misses(run_once, fig_config):
    expression = get_expression("aatb")
    n = 8 if fig_config.scale == "quick" else 100

    def run():
        with_cache = _study(
            SimulatedBackend(paper_machine(seed=fig_config.seed)),
            expression,
            n_anomalies=n,
            seed=fig_config.seed,
        )
        without_cache = _study(
            SimulatedBackend(no_cache_machine(seed=fig_config.seed)),
            expression,
            n_anomalies=n,
            seed=fig_config.seed,
        )
        return with_cache, without_cache

    with_cache, without_cache = run_once(run)
    print()
    print(with_cache.format_table("with inter-kernel cache effects"))
    print()
    print(without_cache.format_table("without inter-kernel cache effects"))

    # Disabling inter-kernel effects makes benchmark sums near-exact:
    # recall must improve (or already be perfect).
    assert without_cache.recall >= with_cache.recall
    assert without_cache.recall > 0.97
