"""Regenerates **Figure 9**: time score vs FLOP score scatter for
``A Aᵀ B`` anomalies (Experiment 1).

Paper expectation (shape): anomalies abundant (≈9.7% at full scale),
with a severe tail — up to ~45% more FLOPs buying ~40% less time.
"""

from repro.figures import fig9


def test_fig9_aatb_scatter(run_once, fig_config):
    data = run_once(lambda: fig9.generate(fig_config))
    print()
    print(fig9.render(data))

    assert data.expression == "aatb"
    # Abundant relative to the chain: several percent.
    assert data.abundance > 0.04
    assert all(ts > 0.10 for ts in data.time_scores)
    # A severe tail exists.
    assert max(data.time_scores) > 0.20
