"""Ablation: array-driven selection vs the scalar per-instance loop.

PR 2 left one scalar gap in the selection path: the profile-based
discriminants predicted each instance through ``Profile.predict``.
With ``Profile.predict_batch`` (vectorized log-log multilinear
interpolation) and the ``select_batch`` overrides, the discriminant
ablations are array-driven end to end.  This bench pins the speedup —
batched selection over ≥ 1000 instances must beat the scalar loop by
≥ 10× — and the contract that batched picks agree index-for-index
with scalar ``select``.
"""

import random
import time

from repro.backends.simulated import SimulatedBackend
from repro.core.discriminants import (
    FlopsProfileHybrid,
    ProfiledTimeDiscriminant,
)
from repro.core.searchspace import paper_box
from repro.expressions.registry import get_expression
from repro.kernels.types import KernelName
from repro.machine.presets import paper_machine
from repro.profiles.benchmark import build_all_profiles

N_INSTANCES = 1000
MIN_SPEEDUP = 10.0


def _profiled_discriminants(seed):
    backend = SimulatedBackend(paper_machine(seed=seed))
    grid = (24, 64, 160, 400, 800, 1400)
    profiles = build_all_profiles(
        backend,
        axes_by_kernel={
            KernelName.GEMM: (grid,) * 3,
            KernelName.SYRK: (grid,) * 2,
            KernelName.SYMM: (grid,) * 2,
        },
    )
    return [
        ProfiledTimeDiscriminant(profiles),
        FlopsProfileHybrid(profiles, margin=0.5),
    ]


def test_select_batch_discriminant_speedup(run_once, fig_config):
    expression = get_expression("aatb")
    algorithms = expression.algorithms()
    rng = random.Random(fig_config.seed + 77)
    box = paper_box(expression.n_dims)
    instances = [box.sample(rng) for _ in range(N_INSTANCES)]
    discriminants = _profiled_discriminants(fig_config.seed)

    def run_batched():
        return [d.select_batch(algorithms, instances) for d in discriminants]

    batched = run_once(run_batched)

    print()
    for discriminant, batch_choices in zip(discriminants, batched):
        # Time both paths outside the harness: the scalar loop is the
        # *baseline under test*, not an artefact we track release to
        # release.
        t0 = time.perf_counter()
        scalar_choices = [
            discriminant.select(algorithms, inst) for inst in instances
        ]
        scalar_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        discriminant.select_batch(algorithms, instances)
        batch_s = time.perf_counter() - t0
        speedup = scalar_s / batch_s
        print(
            f"{discriminant.name:<28} scalar {scalar_s * 1e3:8.1f}ms   "
            f"batch {batch_s * 1e3:7.1f}ms   speedup {speedup:7.1f}x"
        )
        # Index-for-index agreement over the full instance set.
        assert batch_choices == scalar_choices
        assert speedup >= MIN_SPEEDUP
