"""Selection-service load benchmark: throughput and tail latency.

Stands up a :class:`repro.service.SelectionService` in-process, drives
it with N concurrent keep-alive HTTP clients issuing ``POST /select``
requests over a seeded random dims stream, and reports throughput
(selections/sec) plus p50/p99 request latency.  Micro-batching is what
the load probes: concurrent requests coalesce into shared
``select_batch`` calls, so sustained rate under concurrency is several
times the sequential per-request rate.

Two entry points:

* ``pytest`` collects :func:`test_service_load_smoke` — a small load
  whose every response is checked against the engine's own answer
  (the batched-equals-per-request contract, end to end over HTTP).
* ``python benchmarks/bench_service_load.py`` is the CI gate: a larger
  load with hard ``--min-rate`` / ``--gate-p99-ms`` thresholds and a
  JSON latency report (``--report``) for the artifact upload.  The
  rate floor scales with the machine via ``--min-rate-per-core``
  (effective floor = ``max(min_rate, min_rate_per_core * cores)``).

The study store comes from ``REPRO_CACHE_DIR``/``REPRO_CACHE_STORE``
(the CI job warms it with the parallel runner first); without one the
engine computes its studies on startup, which skews only the setup
time, never the measured request loop.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import time
from typing import List, Optional, Sequence

from repro.service import SelectionEngine, SelectionService
from repro.service.engine import Selection

DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS_PER_CLIENT = 250
DEFAULT_EXPRESSION = "aatb"
DEFAULT_GATE_P99_MS = 50.0
DEFAULT_MIN_RATE = 1000.0

_DIMS_LO, _DIMS_HI = 10, 1400


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The q-quantile of pre-sorted values (nearest-rank)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def dims_stream(
    n_dims: int, count: int, seed: int
) -> List[List[int]]:
    rng = random.Random(seed)
    return [
        [rng.randrange(_DIMS_LO, _DIMS_HI) for _ in range(n_dims)]
        for _ in range(count)
    ]


async def _client(
    port: int,
    expression: str,
    dims_list: Sequence[Sequence[int]],
    latencies: List[float],
    responses: List[dict],
) -> None:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for dims in dims_list:
            body = json.dumps(
                {"expression": expression, "dims": list(dims)}
            ).encode()
            head = (
                f"POST /select HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            )
            started = time.perf_counter()
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            status_line = await reader.readline()
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n"):
                    break
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":")[1])
            payload = await reader.readexactly(length)
            latencies.append(time.perf_counter() - started)
            if b" 200 " not in status_line:
                raise AssertionError(
                    f"request failed: {status_line!r} {payload!r}"
                )
            responses.append(json.loads(payload))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass


async def _drive(
    service: SelectionService,
    expression: str,
    clients: int,
    requests_per_client: int,
    seed: int,
) -> dict:
    latencies: List[float] = []
    responses: List[dict] = []
    streams = [
        dims_stream(
            service.engine.expression_for(expression).n_dims,
            requests_per_client,
            seed + client_index,
        )
        for client_index in range(clients)
    ]
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _client(service.port, expression, stream, latencies, responses)
            for stream in streams
        )
    )
    wall = time.perf_counter() - started
    latencies.sort()
    total = clients * requests_per_client
    return {
        "expression": expression,
        "clients": clients,
        "requests": total,
        "wall_seconds": round(wall, 4),
        "rate_per_second": round(total / wall, 1),
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1e3, 3),
            "p90": round(percentile(latencies, 0.90) * 1e3, 3),
            "p99": round(percentile(latencies, 0.99) * 1e3, 3),
            "max": round(latencies[-1] * 1e3, 3),
        },
        "batch": service.batcher.stats(),
        "responses": responses,
    }


def run_load(
    engine: SelectionEngine,
    expression: str = DEFAULT_EXPRESSION,
    clients: int = DEFAULT_CLIENTS,
    requests_per_client: int = DEFAULT_REQUESTS_PER_CLIENT,
    seed: int = 0,
) -> dict:
    """One service lifecycle: start, drive the load, stop, report."""

    async def session() -> dict:
        service = SelectionService(engine, port=0)
        await service.start()
        try:
            return await _drive(
                service, expression, clients, requests_per_client, seed
            )
        finally:
            await service.stop()

    # Warm outside the measured window: the first request of an
    # expression computes or loads its study; the load measures the
    # serving path, not store latency.
    engine.warm([expression])
    return asyncio.run(session())


def _expected_selections(
    engine: SelectionEngine, report: dict
) -> List[Selection]:
    return engine.select_many(
        report["expression"],
        [response["dims"] for response in report["responses"]],
    )


# ----------------------------------------------------------------------
# pytest entry point (collected by the bench suite)
# ----------------------------------------------------------------------


def test_service_load_smoke(run_once, fig_config):
    from repro.figures.cache import store_from_env

    engine = SelectionEngine(
        scale=fig_config.scale, seed=fig_config.seed, store=store_from_env()
    )
    report = run_once(
        lambda: run_load(engine, clients=6, requests_per_client=50)
    )
    print()
    print(
        f"{report['requests']} requests, {report['rate_per_second']} sel/s, "
        f"p50 {report['latency_ms']['p50']}ms "
        f"p99 {report['latency_ms']['p99']}ms, "
        f"coalesced {report['batch']['coalesced']}"
    )
    assert len(report["responses"]) == report["requests"]
    # Every HTTP answer matches the engine's own (batched) answer —
    # the batched-equals-per-request contract, end to end.
    expected = _expected_selections(engine, report)
    assert [r["algorithm"]["index"] for r in report["responses"]] == [
        s.algorithm_index for s in expected
    ]
    # Concurrent clients actually coalesced.
    assert report["batch"]["max_batch"] > 1
    assert report["rate_per_second"] > 0


# ----------------------------------------------------------------------
# CLI entry point (the CI gate)
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_service_load.py",
        description="Load-benchmark the selection service and gate "
        "throughput/latency.",
    )
    parser.add_argument("--expression", default=DEFAULT_EXPRESSION)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS_PER_CLIENT,
        help="requests per client",
    )
    parser.add_argument("--scale", choices=("quick", "full"), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--report", default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--gate-p99-ms", type=float, default=DEFAULT_GATE_P99_MS,
        help=f"fail above this p99 latency (default: {DEFAULT_GATE_P99_MS})",
    )
    parser.add_argument(
        "--min-rate", type=float, default=DEFAULT_MIN_RATE,
        help="fail below this selections/sec floor "
        f"(default: {DEFAULT_MIN_RATE})",
    )
    parser.add_argument(
        "--min-rate-per-core", type=float, default=0.0,
        help="additional floor scaled to cpu count (default: off)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.figures.cache import store_from_env

    args = build_parser().parse_args(argv)
    engine = SelectionEngine(
        scale=args.scale, seed=args.seed, store=store_from_env()
    )
    report = run_load(
        engine,
        expression=args.expression,
        clients=args.clients,
        requests_per_client=args.requests,
        seed=args.seed,
    )
    expected = _expected_selections(engine, report)
    matches = [
        response["algorithm"]["index"] for response in report["responses"]
    ] == [selection.algorithm_index for selection in expected]
    report["batched_equals_per_request"] = matches
    del report["responses"]  # raw bodies are noise in the artifact

    cores = os.cpu_count() or 1
    floor = max(args.min_rate, args.min_rate_per_core * cores)
    report["gates"] = {
        "min_rate": floor,
        "gate_p99_ms": args.gate_p99_ms,
        "cores": cores,
    }
    print(json.dumps(report, indent=2))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    failures = []
    if not matches:
        failures.append("served selections diverge from engine selections")
    if report["rate_per_second"] < floor:
        failures.append(
            f"rate {report['rate_per_second']}/s below floor {floor}/s"
        )
    if report["latency_ms"]["p99"] > args.gate_p99_ms:
        failures.append(
            f"p99 {report['latency_ms']['p99']}ms above gate "
            f"{args.gate_p99_ms}ms"
        )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
