#!/usr/bin/env python3
"""Docs smoke: extract and run fenced code blocks so examples can't rot.

Scans README.md and docs/*.md for fenced code blocks and executes the
runnable ones:

* ``` ```python ``` blocks run through the current interpreter with
  ``PYTHONPATH=src`` and the repository root as the working directory;
* ``` ```bash ``` blocks run through ``bash -euo pipefail`` with the
  same environment.

Blocks tagged ``sh``, ``text`` or anything else are treated as
illustrative and skipped — use those tags for long-running or
environment-specific commands.  A block whose info string contains
``no-run`` (e.g. ``` ```python no-run ```) is skipped too.

Exit code 0 when every runnable block succeeds; 1 otherwise, with the
failing block's source and output echoed.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Languages that are executed, and how.
RUNNERS = {
    "python": lambda code: [sys.executable, "-c", code],
    "bash": lambda code: ["bash", "-euo", "pipefail", "-c", code],
}

_FENCE = re.compile(r"^```(.*?)\s*$")


def _tokens(language: str) -> List[str]:
    return [t for t in re.split(r"[,\s]+", language.strip()) if t]


@dataclass(frozen=True)
class Block:
    path: Path
    line: int  # 1-based line of the opening fence
    language: str
    code: str

    @property
    def location(self) -> str:
        try:
            shown = self.path.relative_to(REPO_ROOT)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}"


def extract_blocks(path: Path) -> List[Block]:
    """All fenced blocks of a markdown file, runnable or not.

    Raises ``ValueError`` on an unclosed fence: a stray ``` would flip
    the open/closed parity and silently swallow every later block —
    exactly the rot this tool exists to catch.
    """
    blocks: List[Block] = []
    language = None
    start = 0
    body: List[str] = []
    for number, raw in enumerate(path.read_text().splitlines(), 1):
        match = _FENCE.match(raw.strip())
        if language is None:
            if match:
                language = match.group(1)
                start = number
                body = []
        elif match and not match.group(1):
            blocks.append(
                Block(
                    path=path,
                    line=start,
                    language=language,
                    code="\n".join(body) + "\n",
                )
            )
            language = None
        else:
            body.append(raw)
    if language is not None:
        raise ValueError(
            f"{path}: fenced block opened at line {start} is never closed"
        )
    return blocks


def runnable(block: Block) -> bool:
    tokens = _tokens(block.language)
    return bool(tokens) and tokens[0] in RUNNERS and "no-run" not in tokens


def run_block(block: Block, timeout: float) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    command = RUNNERS[_tokens(block.language)[0]](block.code)
    return subprocess.run(
        command,
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def document_paths() -> List[Path]:
    paths = [REPO_ROOT / "README.md"]
    paths.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in paths if path.exists()]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-block timeout in seconds (default: 120)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the runnable blocks and exit without running",
    )
    args = parser.parse_args(argv)

    paths = [p.resolve() for p in args.paths] or document_paths()
    failures = 0
    ran = 0
    for path in paths:
        try:
            blocks = extract_blocks(path)
        except ValueError as exc:
            failures += 1
            print(f"FAILED  {exc}")
            continue
        for block in blocks:
            if not runnable(block):
                continue
            if args.list:
                print(f"{block.location} [{block.language}]")
                continue
            ran += 1
            try:
                result = run_block(block, args.timeout)
            except subprocess.TimeoutExpired:
                failures += 1
                print(f"TIMEOUT {block.location} [{block.language}]")
                continue
            if result.returncode == 0:
                print(f"ok      {block.location} [{block.language}]")
            else:
                failures += 1
                print(f"FAILED  {block.location} [{block.language}]")
                print("--- block ---")
                print(block.code, end="")
                print("--- stdout ---")
                print(result.stdout, end="")
                print("--- stderr ---")
                print(result.stderr, end="")
    if args.list:
        return 1 if failures else 0
    print(f"{ran} block(s) run, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
